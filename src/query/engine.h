#ifndef TVDP_QUERY_ENGINE_H_
#define TVDP_QUERY_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/context.h"
#include "common/json.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "geo/fov.h"
#include "index/inverted_index.h"
#include "index/lsh.h"
#include "index/oriented_rtree.h"
#include "index/rtree.h"
#include "index/temporal_index.h"
#include "index/visual_rtree.h"
#include "query/executor.h"
#include "query/plan.h"
#include "query/planner.h"
#include "query/query.h"
#include "query/snapshot.h"
#include "storage/catalog.h"
#include "storage/tvdp_schema.h"

namespace tvdp::platform {
class Tvdp;
}  // namespace tvdp::platform

namespace tvdp::query {

/// The access layer of TVDP: maintains the per-modality indexes over the
/// catalog (Sec. IV-C) and serves queries. The engine itself is a thin
/// facade: it owns the indexes and the reader-writer lock, assembles an
/// AccessPaths view, and delegates planning to the cost-based Planner and
/// evaluation to the Executor's operator pipeline (see DESIGN.md "Query
/// planning and EXPLAIN"). Index maintenance is explicit — call IndexImage
/// after inserting the corresponding rows — which mirrors the ingest
/// pipeline of the platform.
///
/// Thread safety — two modes (DESIGN.md "MVCC snapshots"):
///
///  * Managed (EnableManagedSnapshots(), the platform facade's mode):
///    reads are LOCK-FREE. Every commit publishes an immutable refcounted
///    EngineSnapshot via an atomic root swap; a query pins the current
///    snapshot (two relaxed atomic ops) and never touches `mutex()`, so
///    readers can neither block nor starve a writer. Writers still take
///    the writer side of `mutex()` exclusively — catalog mutation, index
///    update, and snapshot publication form one atomic write section.
///
///  * Legacy (standalone engine over an externally mutated catalog, e.g.
///    tests that insert rows behind the engine's back): reads take the
///    shared side of `mutex()` as before. This is the only shared-lock
///    acquisition left in src/query/ (enforced by scripts/lock_audit.sh).
///
/// Heavy read paths (hybrid candidate verification, LSH probing and
/// re-ranking, FOV refinement, spatial-kNN exact re-ranking) fan out
/// across `pool` when the work is large enough to amortize scheduling.
class QueryEngine {
 public:
  /// `catalog` must outlive the engine and contain the TVDP schema.
  /// `pool` (default: the process-shared pool) runs intra-query fan-out;
  /// pass a zero-worker pool to force sequential execution.
  explicit QueryEngine(storage::Catalog* catalog, ThreadPool* pool = nullptr);

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Registers image `image_id` in the spatial/temporal/textual indexes,
  /// reading its rows from the catalog. FOV and keywords are optional in
  /// the data, features are indexed separately via IndexFeature.
  Status IndexImage(storage::RowId image_id);

  /// Registers one visual feature vector of an image. The first vector of
  /// each kind fixes that kind's dimensionality.
  Status IndexFeature(storage::RowId image_id, const std::string& kind,
                      const ml::FeatureVector& feature);

  // --- Single-modality queries (Sec. IV-C's five families) ---
  //
  // Every query method accepts an optional RequestContext. A non-null
  // context is checked before the indexes are touched and again at every
  // parallel chunk boundary inside the heavy loops; an expired or
  // cancelled context surfaces as kDeadlineExceeded / kCancelled with
  // partial-progress metadata in the status message, and no partial
  // results escape.
  //
  // Degenerate arguments (k <= 0, empty feature vector, empty keyword,
  // inverted temporal range, empty box, invalid point) are
  // kInvalidArgument — the same guards the hybrid planner applies, so a
  // malformed predicate fails identically through every door.

  /// Spatial: images whose FOV (or camera point if no FOV) intersects box.
  /// Hits carry score 0 (boolean membership).
  Result<std::vector<QueryHit>> SpatialRange(
      const geo::BoundingBox& box, const RequestContext* ctx = nullptr) const;

  /// Spatial: k nearest camera locations, ordered by exact geodesic
  /// distance (candidates over-fetched by index distance, then re-ranked).
  /// Hits carry score = geodesic distance in meters.
  Result<std::vector<QueryHit>> SpatialKnn(const geo::GeoPoint& p, int k,
                                           const RequestContext* ctx =
                                               nullptr) const;

  /// Spatial: images whose FOV sees point p. Hits carry score 0.
  Result<std::vector<QueryHit>> VisibleAt(
      const geo::GeoPoint& p, const RequestContext* ctx = nullptr) const;

  /// Visual: approximate top-k similar images by feature kind. Each image
  /// appears at most once (the closest of its stored vectors). Hits carry
  /// score = L2 feature distance. `budget.lsh_probes` >= 0 substitutes the
  /// LSH multi-probe budget for this query (degraded plans).
  Result<std::vector<QueryHit>> VisualTopK(
      const std::string& kind, const ml::FeatureVector& feature, int k,
      const RequestContext* ctx = nullptr,
      const QueryBudget& budget = QueryBudget()) const;

  /// Visual: all images within a feature-distance threshold, deduplicated
  /// by image id (closest match per image). Hits carry score = L2 feature
  /// distance.
  Result<std::vector<QueryHit>> VisualThreshold(
      const std::string& kind, const ml::FeatureVector& feature,
      double threshold, const RequestContext* ctx = nullptr,
      const QueryBudget& budget = QueryBudget()) const;

  /// Categorical: images annotated with (classification, label). Score 0.
  Result<std::vector<QueryHit>> Categorical(
      const CategoricalPredicate& pred) const;

  /// Textual: keyword search over manual keywords. Score 0.
  Result<std::vector<QueryHit>> Textual(const TextualPredicate& pred) const;

  /// Temporal: capture-time range. Boundary semantics are inclusive on
  /// both ends — the result is every image with captured_at in
  /// [begin, end]. An inverted range (begin > end) is InvalidArgument.
  /// Score 0.
  Result<std::vector<QueryHit>> Temporal(Timestamp begin, Timestamp end) const;

  // --- Hybrid queries ---

  /// Evaluates a hybrid query through the cost-based planner: the most
  /// selective conjunct (by index cardinality estimates) seeds the
  /// candidate set, remaining conjuncts verify — set-valued ones through
  /// one materialized index probe, row-valued ones per candidate. Every
  /// returned image id is unique. `budget` tightens the plan under
  /// degraded serving (smaller LSH probe budget, capped candidate set,
  /// reduced over-fetch); the cap is recorded in the plan. When `plan_out`
  /// is non-null it receives the executed plan with actual cardinalities.
  /// `options.force_seed` overrides the cost-based seed choice (tests,
  /// benches).
  Result<std::vector<QueryHit>> Execute(
      const HybridQuery& q, const RequestContext* ctx = nullptr,
      const QueryBudget& budget = QueryBudget(), QueryPlan* plan_out = nullptr,
      const PlannerOptions& options = PlannerOptions()) const;

  /// Plans a hybrid query without executing it: validation, cardinality
  /// estimation, conjunct ordering, operator tree. Deterministic for a
  /// given query and corpus state; never touches `last_plan()`.
  Result<QueryPlan> Explain(const HybridQuery& q,
                            const QueryBudget& budget = QueryBudget(),
                            const PlannerOptions& options =
                                PlannerOptions()) const;

  /// Spatial-visual top-k through the hybrid VisualRTree (single index,
  /// blended alpha score) — the paper's hybrid-index fast path. Hits carry
  /// score = the alpha-blended spatial-visual score.
  Result<std::vector<QueryHit>> SpatialVisualTopK(
      const geo::GeoPoint& p, const std::string& kind,
      const ml::FeatureVector& feature, int k, double alpha) const;

  // --- Full-scan baselines (index ablation) ---

  /// SpatialRange evaluated by scanning all FOV rows.
  Result<std::vector<QueryHit>> SpatialRangeScan(
      const geo::BoundingBox& box) const;

  /// VisualTopK evaluated by exact exhaustive distance computation.
  Result<std::vector<QueryHit>> VisualTopKScan(const std::string& kind,
                                               const ml::FeatureVector& feature,
                                               int k) const;

  /// The plan chosen by the last Execute call, e.g.
  /// "seed=categorical(12) verify=[spatial temporal]". Returned by value:
  /// under concurrent Execute calls the string is only a point-in-time
  /// observation.
  std::string last_plan() const;

  size_t indexed_images() const {
    return indexed_images_.load(std::memory_order_relaxed);
  }

  /// The reader-writer lock guarding the indexes. Held exclusively by
  /// IndexImage/IndexFeature and by the platform facade around catalog-
  /// mutation + index-update + snapshot-publish sections; held shared only
  /// by legacy-mode reads.
  std::shared_mutex& mutex() const { return mutex_; }

  // --- MVCC snapshots ---

  /// Switches the engine into managed mode: publishes an initial snapshot
  /// and serves every subsequent read lock-free from the latest published
  /// version. Requires that all catalog mutations flow through a caller
  /// that republishes after each commit (the platform facade does); an
  /// engine whose catalog is mutated behind its back must stay legacy.
  void EnableManagedSnapshots();
  bool managed() const { return managed_; }

  /// Toggles lock-free snapshot reads at runtime (managed mode only).
  /// Off = reads fall back to the legacy shared-lock path against live
  /// state; used by the read-scaling bench to measure MVCC head-to-head.
  void set_snapshot_reads(bool on) {
    snapshot_reads_.store(on, std::memory_order_relaxed);
  }
  bool snapshot_reads() const {
    return snapshot_reads_.load(std::memory_order_relaxed);
  }

  /// Pins the latest published snapshot (null ref before the first
  /// publish). The pin is two atomic ops; the returned ref keeps every
  /// component of that version alive until released.
  SnapshotRef PinSnapshot() const {
    return SnapshotRef(snapshot_.load(), &pinned_readers_);
  }

  /// AccessPaths over a pinned snapshot: everything referenced is
  /// immutable, so the paths are valid (without any lock) for as long as
  /// the SnapshotRef lives.
  AccessPaths SnapshotPaths(const EngineSnapshot& snap) const;

  /// Publishes a new immutable snapshot from the current live state,
  /// copy-on-write: only components marked dirty since the last publish
  /// are cloned; everything else is shared with the previous version.
  /// No-op when nothing is dirty or the engine is not managed. Caller
  /// must hold mutex() exclusively.
  void PublishLocked();

  /// Marks a catalog table as touched by the current write section so the
  /// next PublishLocked() re-copies it. Caller must hold mutex()
  /// exclusively.
  void MarkTableDirtyLocked(const std::string& table);

  /// Appends one annotation to the columnar hot columns (mirrors the
  /// annotation-table insert). Caller must hold mutex() exclusively.
  void NoteAnnotationLocked(int64_t image_id, int64_t type_id,
                            double confidence, const std::string& source);

  /// Installs the classification registry published with the next
  /// snapshot. Caller must hold mutex() exclusively.
  void SetClassMapLocked(const ClassMap& m);

  /// MVCC observability for platform_stats: {version, pinned_snapshots,
  /// retired_versions, bytes_copied_last_commit, bytes_shared_last_commit}.
  Json MvccStatsJson() const;

 private:
  friend class tvdp::platform::Tvdp;

  /// The non-owning view of the indexes/catalog/pool that the planner and
  /// executor operate over. Caller must hold mutex() (shared suffices).
  AccessPaths PathsLocked() const;

  /// Pins the current snapshot when managed with snapshot reads on; an
  /// empty ref otherwise (caller falls back to the locked path).
  SnapshotRef PinIfSnapshotReads() const {
    if (managed_ && snapshot_reads_.load(std::memory_order_relaxed)) {
      return PinSnapshot();
    }
    return SnapshotRef();
  }

  /// The single shared-lock acquisition in src/query/ (pinned by
  /// scripts/lock_audit.sh): legacy-mode reads funnel through here so the
  /// lock-free claim is auditable by grep.
  template <typename Fn>
  auto WithReaderLock(Fn&& fn) const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return fn();
  }

  // --- Locked variants: caller must hold mutex() (exclusively for the
  // Index* pair, shared or exclusive for the query methods). ---
  Status IndexImageLocked(storage::RowId image_id);
  Status IndexFeatureLocked(storage::RowId image_id, const std::string& kind,
                            const ml::FeatureVector& feature);
  /// Drops every index back to empty (caller must hold mutex()
  /// exclusively). Used by the platform facade after a bulk row removal —
  /// the indexes have no per-record delete, so the facade resets and
  /// re-indexes the surviving rows.
  void ResetIndexesLocked();
  Result<std::vector<QueryHit>> SpatialRangeLocked(
      const geo::BoundingBox& box, const RequestContext* ctx = nullptr) const;
  Result<std::vector<QueryHit>> SpatialKnnLocked(
      const geo::GeoPoint& p, int k, const RequestContext* ctx = nullptr) const;
  Result<std::vector<QueryHit>> VisibleAtLocked(
      const geo::GeoPoint& p, const RequestContext* ctx = nullptr) const;
  Result<std::vector<QueryHit>> VisualTopKLocked(
      const std::string& kind, const ml::FeatureVector& feature, int k,
      const RequestContext* ctx = nullptr,
      const QueryBudget& budget = QueryBudget()) const;
  Result<std::vector<QueryHit>> VisualThresholdLocked(
      const std::string& kind, const ml::FeatureVector& feature,
      double threshold, const RequestContext* ctx = nullptr,
      const QueryBudget& budget = QueryBudget()) const;
  Result<std::vector<QueryHit>> CategoricalLocked(
      const CategoricalPredicate& pred) const;
  Result<std::vector<QueryHit>> TextualLocked(
      const TextualPredicate& pred) const;
  Result<std::vector<QueryHit>> TemporalLocked(Timestamp begin,
                                               Timestamp end) const;
  Result<std::vector<QueryHit>> ExecuteLocked(
      const HybridQuery& q, const RequestContext* ctx = nullptr,
      const QueryBudget& budget = QueryBudget(), QueryPlan* plan_out = nullptr,
      const PlannerOptions& options = PlannerOptions()) const;

  /// Shared body of Execute: plan + run over the given paths (a pinned
  /// snapshot or the locked live view).
  Result<std::vector<QueryHit>> ExecuteOnPaths(
      const AccessPaths& paths, const HybridQuery& q, const RequestContext* ctx,
      const QueryBudget& budget, QueryPlan* plan_out,
      const PlannerOptions& options) const;

  /// Shared bodies of the full-scan ablation baselines, parameterized on
  /// the table provenance (snapshot tables or live catalog).
  static Result<std::vector<QueryHit>> SpatialRangeScanOn(
      const storage::Table* images, const storage::Table* fov_table,
      const geo::BoundingBox& box);
  static Result<std::vector<QueryHit>> VisualTopKScanOn(
      const storage::Table* feats, const std::string& kind,
      const ml::FeatureVector& feature, int k);

  /// SpatialVisualTopK body over an explicit hybrid-index map.
  static Result<std::vector<QueryHit>> SpatialVisualTopKOn(
      const std::map<std::string, std::shared_ptr<index::VisualRTree>>& trees,
      const geo::GeoPoint& p, const std::string& kind,
      const ml::FeatureVector& feature, int k, double alpha);

  storage::Catalog* catalog_;
  ThreadPool* pool_;

  // --- Live mutable state (guarded by mutex_'s writer side) ---
  index::RTree points_;
  index::OrientedRTree fovs_;
  index::TemporalIndex temporal_;
  index::InvertedIndex keywords_;
  std::map<std::string, std::shared_ptr<index::LshIndex>> lsh_;
  std::map<std::string, std::shared_ptr<index::VisualRTree>> visual_rtree_;
  std::atomic<size_t> indexed_images_ = 0;

  /// Columnar builders mirroring the hot columns of the images and
  /// annotation tables; frozen (structurally shared) into every snapshot.
  storage::ColumnarImages col_images_;
  storage::ColumnarAnnotations col_annotations_;
  /// Classification registry published with the next snapshot.
  std::shared_ptr<const ClassMap> class_map_ =
      std::make_shared<const ClassMap>();

  // --- Dirty tracking since the last publish (writer-lock guarded) ---
  std::set<std::string> dirty_tables_;
  std::set<std::string> dirty_feature_kinds_;
  bool dirty_points_ = false;
  bool dirty_fovs_ = false;
  bool dirty_temporal_ = false;
  bool dirty_keywords_ = false;
  bool dirty_classes_ = false;
  bool all_dirty_ = false;

  // --- MVCC publication state ---
  bool managed_ = false;
  std::atomic<bool> snapshot_reads_{true};
  /// The published root. Readers load-acquire and pin; writers
  /// store-release a fresh version per commit. Retired versions reclaim
  /// via shared_ptr refcounting when the last pinned reader drains.
  AtomicSnapshotPtr snapshot_;
  /// Gauge of EngineSnapshot objects alive (latest + retired-but-pinned);
  /// shared with the snapshots themselves, which decrement on destruction.
  std::shared_ptr<std::atomic<int64_t>> live_snapshots_ =
      std::make_shared<std::atomic<int64_t>>(0);
  mutable std::atomic<int64_t> pinned_readers_{0};
  uint64_t next_version_ = 1;

  /// Reader-writer lock over every index and (through the facade) the
  /// catalog. Mutable: query methods are logically const readers.
  mutable std::shared_mutex mutex_;
  /// last_plan_ is written by concurrent readers, so it has its own tiny
  /// lock.
  mutable std::mutex plan_mutex_;
  mutable std::string last_plan_;
};

}  // namespace tvdp::query

#endif  // TVDP_QUERY_ENGINE_H_
