#ifndef TVDP_QUERY_ENGINE_H_
#define TVDP_QUERY_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "geo/fov.h"
#include "index/inverted_index.h"
#include "index/lsh.h"
#include "index/oriented_rtree.h"
#include "index/rtree.h"
#include "index/temporal_index.h"
#include "index/visual_rtree.h"
#include "query/query.h"
#include "storage/catalog.h"
#include "storage/tvdp_schema.h"

namespace tvdp::query {

/// The access layer of TVDP: maintains the per-modality indexes over the
/// catalog (Sec. IV-C) and evaluates single-modality and hybrid queries
/// with a selectivity-ordered plan. Index maintenance is explicit — call
/// IndexImage after inserting the corresponding rows — which mirrors the
/// ingest pipeline of the platform.
class QueryEngine {
 public:
  /// `catalog` must outlive the engine and contain the TVDP schema.
  explicit QueryEngine(storage::Catalog* catalog);

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Registers image `image_id` in the spatial/temporal/textual indexes,
  /// reading its rows from the catalog. FOV and keywords are optional in
  /// the data, features are indexed separately via IndexFeature.
  Status IndexImage(storage::RowId image_id);

  /// Registers one visual feature vector of an image. The first vector of
  /// each kind fixes that kind's dimensionality.
  Status IndexFeature(storage::RowId image_id, const std::string& kind,
                      const ml::FeatureVector& feature);

  // --- Single-modality queries (Sec. IV-C's five families) ---

  /// Spatial: images whose FOV (or camera point if no FOV) intersects box.
  Result<std::vector<QueryHit>> SpatialRange(const geo::BoundingBox& box) const;

  /// Spatial: k nearest camera locations.
  Result<std::vector<QueryHit>> SpatialKnn(const geo::GeoPoint& p, int k) const;

  /// Spatial: images whose FOV sees point p.
  Result<std::vector<QueryHit>> VisibleAt(const geo::GeoPoint& p) const;

  /// Visual: approximate top-k similar images by feature kind.
  Result<std::vector<QueryHit>> VisualTopK(const std::string& kind,
                                           const ml::FeatureVector& feature,
                                           int k) const;

  /// Visual: all images within a feature-distance threshold.
  Result<std::vector<QueryHit>> VisualThreshold(
      const std::string& kind, const ml::FeatureVector& feature,
      double threshold) const;

  /// Categorical: images annotated with (classification, label).
  Result<std::vector<QueryHit>> Categorical(
      const CategoricalPredicate& pred) const;

  /// Textual: keyword search over manual keywords.
  Result<std::vector<QueryHit>> Textual(const TextualPredicate& pred) const;

  /// Temporal: capture-time range.
  Result<std::vector<QueryHit>> Temporal(Timestamp begin, Timestamp end) const;

  // --- Hybrid queries ---

  /// Evaluates a hybrid query: the most selective indexed predicate seeds
  /// the candidate set, remaining predicates verify against the catalog.
  Result<std::vector<QueryHit>> Execute(const HybridQuery& q) const;

  /// Spatial-visual top-k through the hybrid VisualRTree (single index,
  /// blended alpha score) — the paper's hybrid-index fast path.
  Result<std::vector<QueryHit>> SpatialVisualTopK(
      const geo::GeoPoint& p, const std::string& kind,
      const ml::FeatureVector& feature, int k, double alpha) const;

  // --- Full-scan baselines (index ablation) ---

  /// SpatialRange evaluated by scanning all FOV rows.
  Result<std::vector<QueryHit>> SpatialRangeScan(
      const geo::BoundingBox& box) const;

  /// VisualTopK evaluated by exact exhaustive distance computation.
  Result<std::vector<QueryHit>> VisualTopKScan(const std::string& kind,
                                               const ml::FeatureVector& feature,
                                               int k) const;

  /// The plan chosen by the last Execute call, e.g.
  /// "seed=categorical(12) verify=[spatial temporal]".
  const std::string& last_plan() const { return last_plan_; }

  size_t indexed_images() const { return indexed_images_; }

 private:
  /// Estimated result cardinality of each predicate (lower = run first).
  double EstimateSelectivity(const HybridQuery& q,
                             const std::string& family) const;

  /// Verifies a candidate against every non-seed predicate.
  Result<bool> Verify(storage::RowId id, const HybridQuery& q,
                      const std::string& seed_family,
                      double* visual_distance) const;

  Result<int64_t> LookupTypeId(const CategoricalPredicate& pred) const;

  storage::Catalog* catalog_;
  index::RTree points_;
  index::OrientedRTree fovs_;
  index::TemporalIndex temporal_;
  index::InvertedIndex keywords_;
  std::map<std::string, std::unique_ptr<index::LshIndex>> lsh_;
  std::map<std::string, std::unique_ptr<index::VisualRTree>> visual_rtree_;
  size_t indexed_images_ = 0;
  mutable std::string last_plan_;
};

}  // namespace tvdp::query

#endif  // TVDP_QUERY_ENGINE_H_
