#ifndef TVDP_QUERY_LOCALIZE_H_
#define TVDP_QUERY_LOCALIZE_H_

#include <string>

#include "common/result.h"
#include "geo/geo_point.h"
#include "query/engine.h"

namespace tvdp::query {

/// Result of visually localizing an un-geo-tagged image.
struct Localization {
  geo::GeoPoint estimate;
  /// Similarity-weighted dispersion of the supporting matches, meters; a
  /// small radius means the matches agree about where this scene is.
  double spread_m = 0;
  /// Number of matches that contributed.
  int support = 0;
};

/// Data-centric image scene localization (after Alfarrarjeh et al.,
/// "A data-centric approach for image scene localization", Big Data 2018):
/// an image with no GPS tag is located by retrieving its visually nearest
/// geo-tagged neighbours and aggregating their camera locations with
/// similarity weighting. This is a translational service: it gets better
/// for free as collaborators contribute more tagged imagery.
class SceneLocalizer {
 public:
  /// Both pointers must outlive the localizer.
  SceneLocalizer(const QueryEngine* engine, const storage::Catalog* catalog)
      : engine_(engine), catalog_(catalog) {}

  /// Localizes from a visual feature of the given kind using the `k`
  /// nearest tagged images. NotFound when no feature index exists;
  /// FailedPrecondition when no neighbours are retrievable.
  Result<Localization> Localize(const std::string& feature_kind,
                                const ml::FeatureVector& feature,
                                int k = 8) const;

 private:
  const QueryEngine* engine_;
  const storage::Catalog* catalog_;
};

}  // namespace tvdp::query

#endif  // TVDP_QUERY_LOCALIZE_H_
