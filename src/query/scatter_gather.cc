#include "query/scatter_gather.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <thread>
#include <unordered_set>

#include "query/planner.h"

namespace tvdp::query {

namespace {

/// Outcome of one shard's probe task, produced on a pool thread and joined
/// by the coordinator.
struct ProbeOutcome {
  Status status = Status::OK();
  std::vector<QueryHit> hits;
  QueryPlan plan;
  double latency_ms = 0;
  int attempts = 0;
  /// Replica that produced the hits (-1 = the primary).
  int replica = -1;
  /// Whether the primary itself was probed (false for balanced replica
  /// reads that succeeded without touching it, and for breaker-open
  /// failover probes where the gate never admitted the primary).
  bool primary_probed = true;
};

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Probes one shard with hedged retries: each attempt gets an equal slice
/// of the shard's remaining budget, and a failed attempt is re-tried only
/// when IsRetryableStatus says the failure is transient (crash, straggler
/// timeout, transient IO) — semantic errors surface immediately.
/// One attempt against replica `r` of `shard`; fills `out` on success.
bool TryReplica(ShardTarget* shard, int r, const HybridQuery& q,
                const RequestContext& ctx, const QueryBudget& budget,
                ProbeOutcome& out) {
  ++out.attempts;
  QueryPlan plan;
  Result<std::vector<QueryHit>> probed =
      shard->ProbeReplica(r, q, ctx, budget, &plan);
  if (!probed.ok()) {
    if (out.status.ok()) out.status = probed.status();
    return false;
  }
  out.hits = std::move(probed).value();
  out.plan = std::move(plan);
  out.status = Status::OK();
  out.replica = r;
  return true;
}

/// Replica-only probe, used when the primary's breaker blocked it: the
/// replicas are tried in order and the primary is never touched.
ProbeOutcome ProbeReplicasOnly(ShardTarget* shard, const HybridQuery& q,
                               const RequestContext& shard_ctx,
                               const QueryBudget& budget) {
  ProbeOutcome out;
  out.primary_probed = false;
  out.status = Status::Unavailable("shard " + std::to_string(shard->id()) +
                                   " breaker open and no replica answered");
  const double started_ms = NowMs();
  const int replicas = shard->replica_count();
  for (int r = 0; r < replicas; ++r) {
    if (!shard_ctx.Check().ok()) break;
    ProbeOutcome attempt;
    if (TryReplica(shard, r, q, shard_ctx, budget, attempt)) {
      attempt.attempts += out.attempts;
      attempt.primary_probed = false;
      attempt.latency_ms = NowMs() - started_ms;
      return attempt;
    }
    out.attempts += attempt.attempts;
  }
  out.latency_ms = NowMs() - started_ms;
  return out;
}

ProbeOutcome ProbeWithHedging(ShardTarget* shard, const HybridQuery& q,
                              const RequestContext& shard_ctx,
                              const QueryBudget& budget,
                              const ScatterGatherOptions& options) {
  ProbeOutcome out;
  const double started_ms = NowMs();

  // Balanced replica read: one attempt at the preferred replica before the
  // primary. A success never touches the primary (its breaker state must
  // stay as-is); a failure falls through to the normal primary path.
  const int preferred = shard->preferred_replica();
  bool preferred_tried = false;
  if (preferred >= 0 && preferred < shard->replica_count() &&
      shard_ctx.Check().ok()) {
    preferred_tried = true;
    if (TryReplica(shard, preferred, q, shard_ctx, budget, out)) {
      out.primary_probed = false;
      out.latency_ms = NowMs() - started_ms;
      return out;
    }
    out.status = Status::OK();  // the primary attempts start clean
  }

  RetryPolicy policy = options.probe_retry;
  if (!options.hedging) policy.max_attempts = 1;
  if (policy.max_attempts < 1) policy.max_attempts = 1;
  RetryState retry(policy,
                   options.seed ^ (0x9e3779b97f4a7c15ULL *
                                   static_cast<uint64_t>(shard->id() + 1)));

  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    Status alive = shard_ctx.Check();
    if (!alive.ok()) {
      // Out of per-shard budget before this attempt could start: report
      // the context failure unless a previous attempt already produced a
      // more specific error.
      if (out.attempts == 0) out.status = alive;
      break;
    }

    // Equal share of whatever budget is left across the attempts still
    // available, so a fast first failure leaves the hedge a real budget.
    RequestContext attempt_ctx = shard_ctx;
    const int attempts_left = policy.max_attempts - attempt;
    if (shard_ctx.has_deadline() && attempts_left > 1) {
      attempt_ctx =
          shard_ctx.WithDeadlineIn(shard_ctx.remaining_ms() / attempts_left);
    }

    ++out.attempts;
    QueryPlan plan;
    Result<std::vector<QueryHit>> probed =
        shard->Probe(q, attempt_ctx, budget, &plan);
    if (probed.ok()) {
      out.hits = std::move(probed).value();
      out.plan = std::move(plan);
      out.status = Status::OK();
      break;
    }
    out.status = probed.status();
    const double elapsed = NowMs() - started_ms;
    if (!retry.ShouldRetry(out.status, elapsed)) break;
    const double backoff = retry.NextBackoffMs();
    if (backoff > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff));
    }
  }

  // Failover: every primary attempt failed — try the replicas in order.
  // The failed primary attempts stay counted (and reported, so breaker
  // bookkeeping still sees the primary failure even when a replica saves
  // the probe).
  if (!out.status.ok()) {
    const int replicas = shard->replica_count();
    for (int r = 0; r < replicas; ++r) {
      if (preferred_tried && r == preferred) continue;  // already failed
      if (!shard_ctx.Check().ok()) break;
      if (TryReplica(shard, r, q, shard_ctx, budget, out)) break;
    }
  }
  out.latency_ms = NowMs() - started_ms;
  return out;
}

/// True when the query's spatial predicate provably selects nothing inside
/// `region` (so the shard cannot contribute a hit). kKnn never prunes: the
/// nearest neighbours of a point can live in any cell.
bool RegionDisjoint(const HybridQuery& q, const geo::BoundingBox& region) {
  if (!q.spatial.has_value() || region.IsEmpty()) return false;
  switch (q.spatial->kind) {
    case SpatialPredicate::Kind::kRange:
      return !region.Intersects(q.spatial->range);
    case SpatialPredicate::Kind::kVisibleAt:
      return !region.Contains(q.spatial->point);
    case SpatialPredicate::Kind::kKnn:
      return false;
  }
  return false;
}

bool VisualRanked(const HybridQuery& q) { return q.visual.has_value(); }

/// Drops duplicate image ids, keeping the first (best-ranked) occurrence in
/// the already-sorted stream. During a cell migration both the source and
/// the target shard serve the moving rows, and the two copies carry the
/// same global id — the union deduped by id is exactly the unsharded
/// result. Outside a migration routing makes ids shard-unique, so this is
/// a no-op.
void DedupById(std::vector<QueryHit>& hits) {
  std::unordered_set<int64_t> seen;
  seen.reserve(hits.size());
  size_t w = 0;
  for (size_t i = 0; i < hits.size(); ++i) {
    if (!seen.insert(hits[i].image_id).second) continue;
    if (w != i) hits[w] = std::move(hits[i]);
    ++w;
  }
  hits.resize(w);
}

/// Merges per-shard streams into the global order the unsharded engine
/// would produce: visual distance (ties by id) when a visual predicate
/// participated, kNN score for spatial rankings, ascending image id for
/// pure filters. Top-k truncation is re-applied globally — each shard
/// already truncated locally, so the union's top k is the global top k.
std::vector<QueryHit> MergeHits(std::vector<QueryHit> hits,
                                const HybridQuery& q) {
  if (VisualRanked(q)) {
    std::sort(hits.begin(), hits.end(),
              [](const QueryHit& a, const QueryHit& b) {
                if (a.visual_distance != b.visual_distance)
                  return a.visual_distance < b.visual_distance;
                return a.image_id < b.image_id;
              });
    DedupById(hits);
    if (q.visual->kind == VisualPredicate::Kind::kTopK &&
        hits.size() > static_cast<size_t>(q.visual->k)) {
      hits.resize(static_cast<size_t>(q.visual->k));
    }
  } else if (q.spatial.has_value() &&
             q.spatial->kind == SpatialPredicate::Kind::kKnn) {
    std::sort(hits.begin(), hits.end(),
              [](const QueryHit& a, const QueryHit& b) {
                if (a.score != b.score) return a.score < b.score;
                return a.image_id < b.image_id;
              });
    DedupById(hits);
    if (hits.size() > static_cast<size_t>(q.spatial->k)) {
      hits.resize(static_cast<size_t>(q.spatial->k));
    }
  } else {
    std::sort(hits.begin(), hits.end(),
              [](const QueryHit& a, const QueryHit& b) {
                return a.image_id < b.image_id;
              });
    DedupById(hits);
  }
  if (q.limit > 0 && hits.size() > static_cast<size_t>(q.limit)) {
    hits.resize(static_cast<size_t>(q.limit));
  }
  return hits;
}

Json IntArray(const std::vector<int>& v) {
  Json arr = Json::MakeArray();
  for (int i : v) arr.Append(Json(i));
  return arr;
}

}  // namespace

std::string ShardOutcomeName(ShardOutcome o) {
  switch (o) {
    case ShardOutcome::kProbed:
      return "probed";
    case ShardOutcome::kPruned:
      return "pruned";
    case ShardOutcome::kShed:
      return "shed";
    case ShardOutcome::kBreakerOpen:
      return "breaker_open";
    case ShardOutcome::kFailed:
      return "failed";
    case ShardOutcome::kMigrating:
      return "migrating";
    case ShardOutcome::kFailedOver:
      return "failed_over";
  }
  return "unknown";
}

std::vector<int> Coverage::ProbedShards() const {
  std::vector<int> out;
  for (const ShardReport& r : reports) {
    if (r.outcome == ShardOutcome::kProbed ||
        r.outcome == ShardOutcome::kMigrating ||
        r.outcome == ShardOutcome::kFailedOver) {
      out.push_back(r.shard);
    }
  }
  return out;
}

std::vector<int> Coverage::SkippedShards() const {
  std::vector<int> out;
  for (const ShardReport& r : reports) {
    if (r.outcome == ShardOutcome::kPruned ||
        r.outcome == ShardOutcome::kShed ||
        r.outcome == ShardOutcome::kBreakerOpen) {
      out.push_back(r.shard);
    }
  }
  return out;
}

std::vector<int> Coverage::FailedShards() const {
  std::vector<int> out;
  for (const ShardReport& r : reports)
    if (r.outcome == ShardOutcome::kFailed) out.push_back(r.shard);
  return out;
}

bool Coverage::complete() const {
  for (const ShardReport& r : reports) {
    if (r.outcome != ShardOutcome::kProbed &&
        r.outcome != ShardOutcome::kPruned &&
        r.outcome != ShardOutcome::kMigrating &&
        r.outcome != ShardOutcome::kFailedOver) {
      return false;
    }
  }
  return true;
}

Json Coverage::ToJson() const {
  Json obj = Json::MakeObject();
  obj["total_shards"] = Json(total_shards);
  obj["probed_shards"] = IntArray(ProbedShards());
  obj["skipped_shards"] = IntArray(SkippedShards());
  obj["failed_shards"] = IntArray(FailedShards());
  obj["complete"] = Json(complete());
  Json shards = Json::MakeArray();
  for (const ShardReport& r : reports) {
    Json s = Json::MakeObject();
    s["shard"] = Json(r.shard);
    s["outcome"] = Json(ShardOutcomeName(r.outcome));
    if (!r.error.ok()) {
      s["error"] = Json(std::string(StatusCodeName(r.error.code())));
    }
    s["attempts"] = Json(r.attempts);
    s["rows"] = Json(r.rows);
    if (r.replica >= 0) s["replica"] = Json(r.replica);
    if (r.estimated_rows >= 0) s["estimated_rows"] = Json(r.estimated_rows);
    shards.Append(std::move(s));
  }
  obj["shards"] = std::move(shards);
  return obj;
}

Result<ShardedResult> ScatterGather::Execute(
    const std::vector<ShardTarget*>& shards, ThreadPool* pool,
    const HybridQuery& q, const RequestContext* ctx, const QueryBudget& budget,
    const ScatterGatherOptions& options) {
  if (shards.empty()) {
    return Status::InvalidArgument("scatter-gather requires at least 1 shard");
  }
  for (ShardTarget* s : shards) {
    if (s == nullptr) {
      return Status::InvalidArgument("scatter-gather shard target is null");
    }
  }
  if (!(options.per_shard_deadline_fraction > 0) ||
      options.per_shard_deadline_fraction > 1) {
    return Status::InvalidArgument(
        "per_shard_deadline_fraction must be in (0, 1]");
  }
  if (!(options.degraded_keep_fraction > 0) ||
      options.degraded_keep_fraction > 1) {
    return Status::InvalidArgument(
        "degraded_keep_fraction must be in (0, 1]");
  }
  TVDP_RETURN_IF_ERROR(Planner::Validate(q));
  if (ctx != nullptr) TVDP_RETURN_IF_ERROR(ctx->Check());
  if (pool == nullptr) pool = &ThreadPool::Shared();

  const RequestContext base_ctx = (ctx != nullptr) ? *ctx : RequestContext();
  const size_t n = shards.size();

  ShardedResult result;
  result.coverage.total_shards = static_cast<int>(n);
  result.coverage.reports.resize(n);
  for (size_t i = 0; i < n; ++i) {
    result.coverage.reports[i].shard = shards[i]->id();
  }

  // --- classify: prune by region, prune by exact-empty estimate, shed ---
  //
  // The single-shard manager bypasses all of this: there is nothing to
  // prune or shed, and skipping the whole stage keeps a 1-shard deployment
  // byte-identical to the unsharded engine (same context, same plan).
  std::vector<size_t> eligible;
  if (n == 1) {
    eligible.push_back(0);
  } else {
    for (size_t i = 0; i < n; ++i) {
      ShardReport& report = result.coverage.reports[i];
      if (options.prune_by_region && RegionDisjoint(q, shards[i]->region())) {
        report.outcome = ShardOutcome::kPruned;
        continue;
      }
      if (options.prune_by_estimate || options.shed_low_selectivity) {
        ShardEstimate est = shards[i]->Estimate(q);
        report.estimated_rows = est.rows;
        if (options.prune_by_estimate && est.provably_empty) {
          report.outcome = ShardOutcome::kPruned;
          continue;
        }
      }
      eligible.push_back(i);
    }

    if (options.shed_low_selectivity && eligible.size() > 1) {
      // Keep the highest-estimated-selectivity shards; unknown estimates
      // (-1) are kept — shedding needs positive evidence of low yield.
      size_t keep = static_cast<size_t>(
          std::ceil(static_cast<double>(eligible.size()) *
                    options.degraded_keep_fraction));
      keep = std::max<size_t>(1, std::min(keep, eligible.size()));
      std::vector<size_t> order = eligible;
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        const double ea = result.coverage.reports[a].estimated_rows;
        const double eb = result.coverage.reports[b].estimated_rows;
        const double ka = ea < 0 ? std::numeric_limits<double>::infinity() : ea;
        const double kb = eb < 0 ? std::numeric_limits<double>::infinity() : eb;
        return ka > kb;
      });
      std::vector<size_t> kept(order.begin(),
                               order.begin() + static_cast<long>(keep));
      std::sort(kept.begin(), kept.end());
      for (size_t i = keep; i < order.size(); ++i) {
        result.coverage.reports[order[i]].outcome = ShardOutcome::kShed;
      }
      eligible = std::move(kept);
    }
  }

  // --- scatter: breaker gate, per-shard deadline slice, hedged probe ---
  //
  // The breaker gate runs immediately before each probe launch: a
  // half-open circuit admits exactly one probe and waits for its outcome,
  // so asking the gate for a shard that then isn't probed would wedge it.
  struct Launched {
    size_t index;
    std::future<ProbeOutcome> future;
    /// The breaker blocked the primary; only replicas were probed. A
    /// success is kFailedOver, a failure falls back to kBreakerOpen.
    bool breaker_blocked = false;
  };
  std::vector<Launched> launched;
  launched.reserve(eligible.size());
  for (size_t i : eligible) {
    ShardTarget* shard = shards[i];
    RequestContext shard_ctx = base_ctx;
    if (n > 1 && base_ctx.has_deadline()) {
      shard_ctx = base_ctx.WithDeadlineIn(base_ctx.remaining_ms() *
                                          options.per_shard_deadline_fraction);
    }
    if (options.admit && !options.admit(shard->id())) {
      if (shard->replica_count() > 0) {
        // The primary's circuit is open but a replica can stand in: probe
        // the replicas only (the gate never admitted the primary, so its
        // breaker bookkeeping must see nothing).
        launched.push_back({i, pool->Submit([shard, q, shard_ctx, budget]() {
                              return ProbeReplicasOnly(shard, q, shard_ctx,
                                                       budget);
                            }),
                            /*breaker_blocked=*/true});
      } else {
        result.coverage.reports[i].outcome = ShardOutcome::kBreakerOpen;
      }
      continue;
    }
    launched.push_back(
        {i, pool->Submit([shard, q, shard_ctx, budget, &options]() {
           return ProbeWithHedging(shard, q, shard_ctx, budget, options);
         })});
  }

  // --- gather ---
  std::vector<QueryHit> all_hits;
  size_t probed = 0;
  for (Launched& l : launched) {
    ProbeOutcome out = l.future.get();
    ShardReport& report = result.coverage.reports[l.index];
    report.latency_ms = out.latency_ms;
    report.attempts = out.attempts;
    report.replica = out.replica;
    report.primary_probed = out.primary_probed;
    if (out.status.ok()) {
      if (l.breaker_blocked || (out.replica >= 0 && out.primary_probed)) {
        // A replica answered for an unreachable primary (probe failed or
        // breaker blocked): the result is exact, the outcome names the
        // stand-in.
        report.outcome = ShardOutcome::kFailedOver;
      } else {
        report.outcome = shards[l.index]->migrating()
                             ? ShardOutcome::kMigrating
                             : ShardOutcome::kProbed;
      }
      report.rows = out.hits.size();
      ++probed;
      all_hits.insert(all_hits.end(), out.hits.begin(), out.hits.end());
      result.plans.emplace_back(shards[l.index]->id(), std::move(out.plan));
      if (probed == 1 && launched.size() == 1) {
        // Sole probe: pass the shard's stream through untouched so a
        // 1-shard deployment stays byte-identical to the unsharded engine.
        result.hits = std::move(out.hits);
      }
    } else {
      report.outcome =
          l.breaker_blocked ? ShardOutcome::kBreakerOpen : ShardOutcome::kFailed;
      report.error = out.status;
    }
    if (options.observe) options.observe(report);
  }

  // --- partial-result semantics ---
  if (options.require_full_coverage) {
    for (const ShardReport& r : result.coverage.reports) {
      if (r.outcome == ShardOutcome::kFailed) return r.error;
      if (r.outcome == ShardOutcome::kBreakerOpen) {
        return Status::Unavailable("shard " + std::to_string(r.shard) +
                                   " circuit breaker open");
      }
    }
  }
  if (probed == 0) {
    for (const ShardReport& r : result.coverage.reports) {
      if (r.outcome == ShardOutcome::kFailed) return r.error;
    }
    std::vector<int> blocked;
    for (const ShardReport& r : result.coverage.reports) {
      if (r.outcome == ShardOutcome::kShed ||
          r.outcome == ShardOutcome::kBreakerOpen) {
        blocked.push_back(r.shard);
      }
    }
    if (!blocked.empty()) {
      // Retry hint: derived from the blocked shards when the caller can
      // (e.g. the earliest breaker half-open deadline), a static fallback
      // otherwise.
      const double hint = options.retry_after_hint
                              ? options.retry_after_hint(blocked)
                              : 50.0;
      return WithRetryAfterHint(
          Status::Unavailable("no shard available to answer the query"),
          hint);
    }
    // Every shard pruned: the query provably selects nothing.
    return result;
  }

  if (!(probed == 1 && launched.size() == 1)) {
    result.hits = MergeHits(std::move(all_hits), q);
  }
  return result;
}

}  // namespace tvdp::query
