#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/retry.h"
#include "common/rng.h"
#include "common/status.h"
#include "edge/device.h"
#include "edge/fault_model.h"
#include "edge/health.h"
#include "edge/model_profile.h"
#include "edge/orchestrator.h"
#include "edge/simulator.h"

namespace tvdp::edge {
namespace {

// ---------- Retry policy ----------

TEST(RetryPolicyTest, RetryableClassification) {
  EXPECT_TRUE(IsRetryableStatus(StatusCode::kUnavailable));
  EXPECT_TRUE(IsRetryableStatus(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(IsRetryableStatus(StatusCode::kIOError));
  EXPECT_TRUE(IsRetryableStatus(StatusCode::kResourceExhausted));

  EXPECT_FALSE(IsRetryableStatus(StatusCode::kOk));
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kNotFound));
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kFailedPrecondition));
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kInternal));

  EXPECT_TRUE(IsRetryableStatus(Status::Unavailable("down")));
  EXPECT_FALSE(IsRetryableStatus(Status::InvalidArgument("bad")));
}

TEST(RetryPolicyTest, NewStatusCodesHaveNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_EQ(StatusCodeName(StatusCode::kDeadlineExceeded), "DeadlineExceeded");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "ResourceExhausted");
}

TEST(RetryPolicyTest, BackoffStaysWithinBounds) {
  RetryPolicy policy{/*max_attempts=*/0, /*initial_backoff_ms=*/10,
                     /*max_backoff_ms=*/100};
  RetryState state(policy, 5);
  double first = state.NextBackoffMs();
  EXPECT_DOUBLE_EQ(first, 10.0);  // first wait is exactly the initial backoff
  double prev = first;
  for (int i = 0; i < 50; ++i) {
    double wait = state.NextBackoffMs();
    EXPECT_GE(wait, policy.initial_backoff_ms);
    EXPECT_LE(wait, policy.max_backoff_ms);
    // Decorrelated jitter: each wait is bounded by 3x the previous (capped).
    EXPECT_LE(wait, std::min(prev * 3, policy.max_backoff_ms) + 1e-9);
    prev = wait;
  }
}

TEST(RetryPolicyTest, StopsAtMaxAttempts) {
  RetryState state(RetryPolicy{/*max_attempts=*/3}, 7);
  EXPECT_TRUE(state.ShouldRetry(Status::Unavailable("x")));
  EXPECT_TRUE(state.ShouldRetry(Status::Unavailable("x")));
  EXPECT_FALSE(state.ShouldRetry(Status::Unavailable("x")));  // 3rd failure
  EXPECT_EQ(state.failures(), 3);
}

TEST(RetryPolicyTest, NonRetryableStopsImmediately) {
  RetryState state(RetryPolicy{/*max_attempts=*/10}, 7);
  EXPECT_FALSE(state.ShouldRetry(Status::InvalidArgument("bad")));
  EXPECT_FALSE(state.ShouldRetry(Status::NotFound("gone")));
}

TEST(RetryPolicyTest, DeadlineBoundsRetries) {
  RetryPolicy policy{/*max_attempts=*/100, /*initial_backoff_ms=*/1,
                     /*max_backoff_ms=*/2, /*per_attempt_timeout_ms=*/0,
                     /*deadline_ms=*/50};
  RetryState state(policy, 11);
  EXPECT_TRUE(state.ShouldRetry(Status::Unavailable("x"), 10));
  EXPECT_FALSE(state.ShouldRetry(Status::Unavailable("x"), 60));
}

TEST(RetryPolicyTest, RunWithRetriesSucceedsAfterTransients) {
  int calls = 0;
  std::vector<double> sleeps;
  RetryPolicy policy{/*max_attempts=*/5, /*initial_backoff_ms=*/1,
                     /*max_backoff_ms=*/8};
  Status s = RunWithRetries(
      policy, 3,
      [&] {
        ++calls;
        return calls < 3 ? Status::Unavailable("transient") : Status::OK();
      },
      [&](double ms) { sleeps.push_back(ms); });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(sleeps.size(), 2u);
  for (double ms : sleeps) {
    EXPECT_GE(ms, policy.initial_backoff_ms);
    EXPECT_LE(ms, policy.max_backoff_ms);
  }
}

TEST(RetryPolicyTest, RunWithRetriesGivesUpAfterBudget) {
  int calls = 0;
  Status s = RunWithRetries(
      RetryPolicy{/*max_attempts=*/4, /*initial_backoff_ms=*/0.01,
                  /*max_backoff_ms=*/0.01},
      3, [&] {
        ++calls;
        return Status::Unavailable("still down");
      });
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 4);
}

TEST(RetryPolicyTest, RunWithRetriesDoesNotRetrySemanticErrors) {
  int calls = 0;
  std::vector<double> sleeps;
  Status s = RunWithRetries(
      RetryPolicy{/*max_attempts=*/10}, 3,
      [&] {
        ++calls;
        return Status::InvalidArgument("bad request");
      },
      [&](double ms) { sleeps.push_back(ms); });
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.empty());
}

// ---------- Fault model ----------

InferenceSimulator::Options NoNoise() {
  InferenceSimulator::Options o;
  o.noise_fraction = 0;
  return o;
}

TEST(FaultModelTest, CleanFleetRunsClean) {
  EdgeFaultModel fm(PaperDeviceProfiles(), FaultModelOptions{});
  ModelProfile model = MakeMobileNetV2Profile();
  for (size_t i = 0; i < fm.fleet_size(); ++i) {
    EdgeFaultModel::Attempt att = fm.RunInference(i, model);
    EXPECT_TRUE(att.status.ok()) << att.status;
    EXPECT_GT(att.latency_ms, 0);
    EXPECT_TRUE(fm.Ping(i).ok());
    EXPECT_DOUBLE_EQ(fm.battery_level(i), 1.0);
  }
}

TEST(FaultModelTest, CrashProbOneAlwaysCrashes) {
  FaultModelOptions opts;
  opts.crash_prob = 1.0;
  EdgeFaultModel fm(PaperDeviceProfiles(), opts, NoNoise());
  ModelProfile model = MakeMobileNetV2Profile();
  double full = InferenceSimulator::ExpectedLatencyMs(fm.device(0), model);
  for (int i = 0; i < 20; ++i) {
    EdgeFaultModel::Attempt att = fm.RunInference(0, model);
    EXPECT_EQ(att.status.code(), StatusCode::kUnavailable);
    // A crash burns a partial run, never more than the full latency.
    EXPECT_GE(att.latency_ms, 0);
    EXPECT_LE(att.latency_ms, full);
  }
}

TEST(FaultModelTest, PartitionsEvolveAndRecover) {
  FaultModelOptions opts;
  opts.partition_prob = 1.0;
  opts.partition_recover_prob = 1.0;
  opts.network_timeout_ms = 50;
  EdgeFaultModel fm(PaperDeviceProfiles(), opts, NoNoise());
  EXPECT_FALSE(fm.partitioned(0));

  fm.AdvanceRound();  // everyone partitions
  for (size_t i = 0; i < fm.fleet_size(); ++i) {
    EXPECT_TRUE(fm.partitioned(i));
    EXPECT_EQ(fm.Ping(i).code(), StatusCode::kUnavailable);
    EdgeFaultModel::Attempt att =
        fm.RunInference(i, MakeMobileNetV2Profile());
    EXPECT_EQ(att.status.code(), StatusCode::kUnavailable);
    // The caller burns the connect timeout discovering the partition.
    EXPECT_DOUBLE_EQ(att.latency_ms, 50.0);
    // A tighter per-attempt timeout caps the probe cost.
    EdgeFaultModel::Attempt capped =
        fm.RunInference(i, MakeMobileNetV2Profile(), /*timeout_ms=*/10);
    EXPECT_DOUBLE_EQ(capped.latency_ms, 10.0);
  }

  fm.AdvanceRound();  // everyone recovers
  for (size_t i = 0; i < fm.fleet_size(); ++i) {
    EXPECT_FALSE(fm.partitioned(i));
    EXPECT_TRUE(fm.Ping(i).ok());
  }
}

TEST(FaultModelTest, BatteryDrainsToExhaustion) {
  ModelProfile model = MakeMobileNetV2Profile();
  DeviceProfile phone = MakeSmartphoneProfile();
  ASSERT_GT(phone.energy_per_gflop, 0);
  double per_run = phone.energy_per_gflop * model.gflops_per_inference;

  FaultModelOptions opts;
  opts.battery_capacity = per_run * 3.5;  // dies on the 4th inference
  EdgeFaultModel fm({MakeDesktopProfile(), phone}, opts, NoNoise());

  // Mains-powered desktop never drains.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(fm.RunInference(0, model).status.ok());
  }
  EXPECT_DOUBLE_EQ(fm.battery_level(0), 1.0);

  double prev_level = 1.0;
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(fm.RunInference(1, model).status.ok());
    EXPECT_LT(fm.battery_level(1), prev_level);
    prev_level = fm.battery_level(1);
  }
  EdgeFaultModel::Attempt dying = fm.RunInference(1, model);
  EXPECT_EQ(dying.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(fm.battery_dead(1));
  EXPECT_DOUBLE_EQ(fm.battery_level(1), 0.0);
  EXPECT_EQ(fm.Ping(1).code(), StatusCode::kResourceExhausted);
  // Further attempts fail fast at the probe cost.
  EdgeFaultModel::Attempt dead = fm.RunInference(1, model);
  EXPECT_EQ(dead.status.code(), StatusCode::kResourceExhausted);
}

TEST(FaultModelTest, StragglersGetTailLatency) {
  FaultModelOptions opts;
  opts.straggler_prob = 1.0;
  opts.straggler_min_multiplier = 4.0;
  EdgeFaultModel fm(PaperDeviceProfiles(), opts, NoNoise());
  ModelProfile model = MakeMobileNetV2Profile();
  double expected = InferenceSimulator::ExpectedLatencyMs(fm.device(0), model);
  for (int i = 0; i < 20; ++i) {
    EdgeFaultModel::Attempt att = fm.RunInference(0, model);
    ASSERT_TRUE(att.status.ok());
    EXPECT_GE(att.latency_ms, expected * 4.0 - 1e-9);
  }
}

TEST(FaultModelTest, TimeoutTurnsStragglerIntoDeadlineExceeded) {
  FaultModelOptions opts;
  opts.straggler_prob = 1.0;
  opts.straggler_min_multiplier = 100.0;
  EdgeFaultModel fm(PaperDeviceProfiles(), opts, NoNoise());
  ModelProfile model = MakeMobileNetV2Profile();
  double expected = InferenceSimulator::ExpectedLatencyMs(fm.device(0), model);
  double timeout = expected * 2;
  EdgeFaultModel::Attempt att = fm.RunInference(0, model, timeout);
  EXPECT_EQ(att.status.code(), StatusCode::kDeadlineExceeded);
  // The caller stops waiting at exactly the timeout.
  EXPECT_DOUBLE_EQ(att.latency_ms, timeout);
}

TEST(FaultModelTest, DeterministicForSeed) {
  FaultModelOptions opts;
  opts.crash_prob = 0.3;
  opts.straggler_prob = 0.2;
  opts.partition_prob = 0.2;
  opts.seed = 99;
  ModelProfile model = MakeMobileNetV1Profile();
  EdgeFaultModel a(PaperDeviceProfiles(), opts);
  EdgeFaultModel b(PaperDeviceProfiles(), opts);
  for (int round = 0; round < 5; ++round) {
    for (size_t i = 0; i < a.fleet_size(); ++i) {
      EdgeFaultModel::Attempt aa = a.RunInference(i, model);
      EdgeFaultModel::Attempt bb = b.RunInference(i, model);
      EXPECT_EQ(aa.status.code(), bb.status.code());
      EXPECT_DOUBLE_EQ(aa.latency_ms, bb.latency_ms);
    }
    a.AdvanceRound();
    b.AdvanceRound();
  }
}

TEST(FaultModelTest, PerDeviceStreamsAreOrderIndependent) {
  FaultModelOptions opts;
  opts.crash_prob = 0.5;
  opts.seed = 5;
  ModelProfile model = MakeMobileNetV1Profile();
  // Same fleet, devices exercised in opposite orders: each device's own
  // failure history must be identical because streams are forked per device.
  EdgeFaultModel fwd(PaperDeviceProfiles(), opts);
  EdgeFaultModel rev(PaperDeviceProfiles(), opts);
  std::vector<std::vector<double>> fwd_lat(3), rev_lat(3);
  for (int k = 0; k < 10; ++k) {
    for (size_t i = 0; i < 3; ++i) {
      fwd_lat[i].push_back(fwd.RunInference(i, model).latency_ms);
    }
    for (size_t i = 3; i-- > 0;) {
      rev_lat[i].push_back(rev.RunInference(i, model).latency_ms);
    }
  }
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(fwd_lat[i], rev_lat[i]) << "device " << i;
  }
}

// ---------- Health tracker / circuit breaker ----------

TEST(HealthTrackerTest, CircuitStateNames) {
  EXPECT_EQ(CircuitStateName(CircuitState::kClosed), "closed");
  EXPECT_EQ(CircuitStateName(CircuitState::kOpen), "open");
  EXPECT_EQ(CircuitStateName(CircuitState::kHalfOpen), "half_open");
}

TEST(HealthTrackerTest, BreakerOpensAfterConsecutiveFailures) {
  HealthOptions opts;
  opts.failure_threshold = 3;
  DeviceHealthTracker tracker(2, opts);
  EXPECT_EQ(tracker.state(0), CircuitState::kClosed);
  tracker.RecordFailure(0, 10);
  tracker.RecordFailure(0, 20);
  EXPECT_EQ(tracker.state(0), CircuitState::kClosed);
  tracker.RecordFailure(0, 30);
  EXPECT_EQ(tracker.state(0), CircuitState::kOpen);
  EXPECT_FALSE(tracker.AllowRequest(0, 31));
  EXPECT_EQ(tracker.open_circuits(), 1u);
  EXPECT_EQ(tracker.circuits_opened_total(), 1u);
  // Device 1 is untouched.
  EXPECT_TRUE(tracker.AllowRequest(1, 31));
}

TEST(HealthTrackerTest, SuccessResetsConsecutiveFailures) {
  HealthOptions opts;
  opts.failure_threshold = 3;
  DeviceHealthTracker tracker(1, opts);
  tracker.RecordFailure(0, 1);
  tracker.RecordFailure(0, 2);
  tracker.RecordSuccess(0, 3);
  tracker.RecordFailure(0, 4);
  tracker.RecordFailure(0, 5);
  EXPECT_EQ(tracker.state(0), CircuitState::kClosed);
}

TEST(HealthTrackerTest, CooldownAdmitsSingleHalfOpenProbe) {
  HealthOptions opts;
  opts.failure_threshold = 1;
  opts.open_cooldown_ms = 100;
  DeviceHealthTracker tracker(1, opts);
  tracker.RecordFailure(0, 0);  // trips immediately
  EXPECT_EQ(tracker.state(0), CircuitState::kOpen);
  EXPECT_FALSE(tracker.AllowRequest(0, 50));  // still cooling down
  EXPECT_TRUE(tracker.WouldAllowRequest(0, 100));
  EXPECT_EQ(tracker.state(0), CircuitState::kOpen);  // const scan: no change
  EXPECT_TRUE(tracker.AllowRequest(0, 100));  // the probe
  EXPECT_EQ(tracker.state(0), CircuitState::kHalfOpen);
  EXPECT_FALSE(tracker.AllowRequest(0, 101));  // probe already in flight
}

TEST(HealthTrackerTest, ProbeOutcomeClosesOrReopens) {
  HealthOptions opts;
  opts.failure_threshold = 1;
  opts.open_cooldown_ms = 100;
  DeviceHealthTracker tracker(2, opts);

  // Device 0: probe succeeds -> closed.
  tracker.RecordFailure(0, 0);
  ASSERT_TRUE(tracker.AllowRequest(0, 100));
  tracker.RecordSuccess(0, 110);
  EXPECT_EQ(tracker.state(0), CircuitState::kClosed);
  EXPECT_TRUE(tracker.AllowRequest(0, 111));

  // Device 1: probe fails -> open again, cooldown restarts.
  tracker.RecordFailure(1, 0);
  ASSERT_TRUE(tracker.AllowRequest(1, 100));
  tracker.RecordFailure(1, 110);
  EXPECT_EQ(tracker.state(1), CircuitState::kOpen);
  EXPECT_FALSE(tracker.AllowRequest(1, 150));  // 110 + 100 > 150
  EXPECT_TRUE(tracker.AllowRequest(1, 210));
  EXPECT_EQ(tracker.circuits_opened_total(), 3u);
}

TEST(HealthTrackerTest, EwmaScoreTracksOutcomes) {
  HealthOptions opts;
  opts.ewma_alpha = 0.5;
  DeviceHealthTracker tracker(1, opts);
  EXPECT_DOUBLE_EQ(tracker.health_score(0), 1.0);
  tracker.RecordFailure(0, 1);
  EXPECT_DOUBLE_EQ(tracker.health_score(0), 0.5);
  tracker.RecordFailure(0, 2);
  EXPECT_DOUBLE_EQ(tracker.health_score(0), 0.25);
  tracker.RecordSuccess(0, 3);
  EXPECT_DOUBLE_EQ(tracker.health_score(0), 0.625);
  for (int i = 0; i < 100; ++i) tracker.RecordSuccess(0, 4 + i);
  EXPECT_GT(tracker.health_score(0), 0.99);
  EXPECT_LE(tracker.health_score(0), 1.0);
}

TEST(HealthTrackerTest, SilenceMakesDeviceSuspect) {
  HealthOptions opts;
  opts.heartbeat_timeout_ms = 1000;
  DeviceHealthTracker tracker(1, opts);
  EXPECT_FALSE(tracker.suspect(0, 500));
  EXPECT_TRUE(tracker.suspect(0, 1500));
  tracker.RecordHeartbeat(0, 1500);
  EXPECT_FALSE(tracker.suspect(0, 2000));
  // A success also counts as a heartbeat.
  tracker.RecordSuccess(0, 3000);
  EXPECT_FALSE(tracker.suspect(0, 3900));
}

TEST(HealthTrackerTest, HealthyDevicesFiltersSuspectAndOpen) {
  HealthOptions opts;
  opts.failure_threshold = 1;
  opts.open_cooldown_ms = 10000;
  opts.heartbeat_timeout_ms = 1000;
  DeviceHealthTracker tracker(3, opts);
  tracker.RecordHeartbeat(0, 500);
  tracker.RecordHeartbeat(1, 500);
  tracker.RecordFailure(1, 500);  // trips device 1
  // Device 2 never heartbeats -> suspect at t=1500.
  std::vector<size_t> healthy = tracker.HealthyDevices(1400);
  ASSERT_EQ(healthy.size(), 1u);
  EXPECT_EQ(healthy[0], 0u);
}

// ---------- Orchestrator ----------

OrchestratorOptions QuietOptions() {
  OrchestratorOptions o;
  o.seed = 31;
  return o;
}

TEST(OrchestratorTest, CleanFleetCompletesEverythingFirstTry) {
  EdgeOrchestrator orch(PaperDeviceProfiles(), ModelComplexityLadder(),
                        FaultModelOptions{}, QuietOptions());
  auto report = orch.RunBatch(100);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_DOUBLE_EQ(report->completion_rate, 1.0);
  EXPECT_EQ(report->completed, 100);
  EXPECT_EQ(report->retries, 0);
  EXPECT_EQ(report->server_fallbacks, 0);
  EXPECT_EQ(report->degradations, 0);
  EXPECT_EQ(report->circuits_opened, 0u);
  EXPECT_GT(report->p50_latency_ms, 0);
  EXPECT_GE(report->p99_latency_ms, report->p50_latency_ms);
  for (const JobResult& j : report->jobs) {
    EXPECT_TRUE(j.completed);
    EXPECT_TRUE(j.final_status.ok());
    EXPECT_GE(j.device_index, 0);
    EXPECT_FALSE(j.model_name.empty());
  }
}

TEST(OrchestratorTest, RetriesRecoverTwentyPercentFaultRate) {
  FaultModelOptions faults;
  faults.crash_prob = 0.2;
  OrchestratorOptions o = QuietOptions();
  // Short breaker trips: with the default 500ms cooldown a 3-device fleet
  // spends long stretches fully open and jobs skip straight to the server
  // fallback with zero device attempts, which is not what this test measures.
  o.health.failure_threshold = 5;
  o.health.open_cooldown_ms = 20;
  EdgeOrchestrator orch(PaperDeviceProfiles(), ModelComplexityLadder(), faults,
                        o);
  auto report = orch.RunBatch(500);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GE(report->completion_rate, 0.99);
  EXPECT_GT(report->retries, 0);
  EXPECT_GT(report->total_attempts, 500);
}

TEST(OrchestratorTest, WithoutRetriesCompletionIsMeasurablyLower) {
  FaultModelOptions faults;
  faults.crash_prob = 0.2;

  OrchestratorOptions with = QuietOptions();
  with.enable_server_fallback = false;  // isolate the retry effect
  with.enable_hedging = false;
  // Keep breaker trips short so the measurement isolates retries, not
  // cooldown windows.
  with.health.failure_threshold = 5;
  with.health.open_cooldown_ms = 20;
  EdgeOrchestrator retry_orch(PaperDeviceProfiles(), ModelComplexityLadder(),
                              faults, with);
  auto with_report = retry_orch.RunBatch(500);
  ASSERT_TRUE(with_report.ok());

  OrchestratorOptions without = with;
  without.enable_retries = false;
  EdgeOrchestrator naive_orch(PaperDeviceProfiles(), ModelComplexityLadder(),
                              faults, without);
  auto naive_report = naive_orch.RunBatch(500);
  ASSERT_TRUE(naive_report.ok());

  // ~20% of first attempts crash, so the naive rate sits near 0.8 while
  // retries push past 0.95.
  EXPECT_LT(naive_report->completion_rate, 0.92);
  EXPECT_GE(with_report->completion_rate, 0.95);
  EXPECT_GT(with_report->completion_rate,
            naive_report->completion_rate + 0.05);
  EXPECT_EQ(naive_report->retries, 0);
}

TEST(OrchestratorTest, DegradationStepsDownTheLadder) {
  FaultModelOptions faults;
  faults.crash_prob = 0.5;
  OrchestratorOptions opts = QuietOptions();
  opts.enable_server_fallback = false;
  opts.enable_hedging = false;
  opts.degrade_after_failures = 1;
  opts.retry.max_attempts = 6;
  EdgeOrchestrator orch(PaperDeviceProfiles(), ModelComplexityLadder(), faults,
                        opts);
  auto report = orch.RunBatch(300);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->degradations, 0);
  for (const JobResult& j : report->jobs) {
    if (j.degraded && j.completed) {
      EXPECT_FALSE(j.server_fallback);
      EXPECT_GE(j.attempts, 2);
    }
  }
}

TEST(OrchestratorTest, ServerFallbackKeepsDeadFleetServing) {
  FaultModelOptions faults;
  faults.crash_prob = 1.0;  // no device attempt can ever succeed
  EdgeOrchestrator orch(PaperDeviceProfiles(), ModelComplexityLadder(), faults,
                        QuietOptions());
  auto report = orch.RunBatch(200);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->completion_rate, 1.0);
  EXPECT_EQ(report->server_fallbacks, 200);
  EXPECT_GE(report->circuits_opened, 1u);
  for (const JobResult& j : report->jobs) {
    EXPECT_TRUE(j.server_fallback);
    EXPECT_EQ(j.device_index, -1);
    EXPECT_EQ(j.model_name, "server");
  }
}

TEST(OrchestratorTest, DeadFleetWithoutFallbackFailsJobs) {
  FaultModelOptions faults;
  faults.crash_prob = 1.0;
  OrchestratorOptions opts = QuietOptions();
  opts.enable_server_fallback = false;
  EdgeOrchestrator orch(PaperDeviceProfiles(), ModelComplexityLadder(), faults,
                        opts);
  auto report = orch.RunBatch(50);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->completion_rate, 0.0);
  for (const JobResult& j : report->jobs) {
    EXPECT_FALSE(j.completed);
    EXPECT_FALSE(j.final_status.ok());
    EXPECT_TRUE(IsRetryableStatus(j.final_status)) << j.final_status;
  }
}

TEST(OrchestratorTest, DeterministicForSeed) {
  FaultModelOptions faults;
  faults.crash_prob = 0.25;
  faults.straggler_prob = 0.1;
  faults.partition_prob = 0.05;
  auto run_once = [&] {
    EdgeOrchestrator orch(PaperDeviceProfiles(), ModelComplexityLadder(),
                          faults, QuietOptions());
    return orch.RunBatch(300);
  };
  auto a = run_once();
  auto b = run_once();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->completed, b->completed);
  EXPECT_EQ(a->total_attempts, b->total_attempts);
  EXPECT_EQ(a->retries, b->retries);
  EXPECT_EQ(a->hedges, b->hedges);
  EXPECT_DOUBLE_EQ(a->p50_latency_ms, b->p50_latency_ms);
  EXPECT_DOUBLE_EQ(a->p99_latency_ms, b->p99_latency_ms);
}

TEST(OrchestratorTest, ValidatesArguments) {
  EdgeOrchestrator orch(PaperDeviceProfiles(), ModelComplexityLadder(),
                        FaultModelOptions{});
  EXPECT_EQ(orch.RunBatch(0).status().code(), StatusCode::kInvalidArgument);

  EdgeOrchestrator no_fleet({}, ModelComplexityLadder(), FaultModelOptions{});
  EXPECT_EQ(no_fleet.RunBatch(10).status().code(),
            StatusCode::kInvalidArgument);

  EdgeOrchestrator no_ladder(PaperDeviceProfiles(), {}, FaultModelOptions{});
  EXPECT_EQ(no_ladder.RunBatch(10).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------- Fault-injection stress suite (also run under sanitizers) ----------

TEST(EdgeFaultStressTest, MixedFaultLargeBatchStaysAboveTarget) {
  Rng rng(7);
  std::vector<DeviceProfile> fleet;
  for (int i = 0; i < 4; ++i) {
    fleet.push_back(SampleProfile(DeviceClass::kDesktop, rng));
    fleet.push_back(SampleProfile(DeviceClass::kRaspberryPi, rng));
    fleet.push_back(SampleProfile(DeviceClass::kSmartphone, rng));
  }
  FaultModelOptions faults;
  faults.crash_prob = 0.15;
  faults.straggler_prob = 0.1;
  faults.partition_prob = 0.05;
  faults.partition_recover_prob = 0.5;
  faults.battery_capacity = 400;
  OrchestratorOptions opts;
  opts.jobs_per_round = 32;
  opts.seed = 77;
  EdgeOrchestrator orch(fleet, ModelComplexityLadder(), faults, opts);
  auto report = orch.RunBatch(1500);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GE(report->completion_rate, 0.99);

  // Report invariants.
  ASSERT_EQ(report->jobs.size(), 1500u);
  int completed = 0, hedged = 0, fallbacks = 0;
  for (const JobResult& j : report->jobs) {
    if (j.completed) {
      ++completed;
      EXPECT_TRUE(j.final_status.ok());
      EXPECT_GE(j.latency_ms, 0);
    }
    if (j.hedged) ++hedged;
    if (j.server_fallback) ++fallbacks;
    EXPECT_LE(j.attempts, 65);  // the hard cap (+1 for a final hedge)
  }
  EXPECT_EQ(completed, report->completed);
  EXPECT_EQ(hedged, report->hedges);
  EXPECT_EQ(fallbacks, report->server_fallbacks);
  EXPECT_GE(report->total_attempts, report->completed - fallbacks);
  EXPECT_GE(report->p99_latency_ms, report->p50_latency_ms);
}

TEST(EdgeFaultStressTest, RepeatedBatchesOnOneFleetStayHealthy) {
  FaultModelOptions faults;
  faults.crash_prob = 0.1;
  faults.partition_prob = 0.05;
  faults.partition_recover_prob = 0.6;
  OrchestratorOptions opts;
  opts.seed = 13;
  EdgeOrchestrator orch(PaperDeviceProfiles(), ModelComplexityLadder(), faults,
                        opts);
  for (int batch = 0; batch < 5; ++batch) {
    auto report = orch.RunBatch(400);
    ASSERT_TRUE(report.ok()) << "batch " << batch;
    EXPECT_GE(report->completion_rate, 0.99) << "batch " << batch;
  }
  EXPECT_GT(orch.now_ms(), 0);
}

}  // namespace
}  // namespace tvdp::edge
