// Crash-safety tests for the durable-storage subsystem: CRC32C, the
// fault-injecting filesystem, WAL append/recovery, power-cut sweeps over the
// log tail, snapshot compaction, and the platform facade's durable mode.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/file.h"
#include "platform/tvdp.h"
#include "storage/durable_catalog.h"
#include "storage/serializer.h"
#include "storage/tvdp_schema.h"
#include "storage/wal.h"

namespace tvdp {
namespace {

using storage::Row;
using storage::Value;

// ---------- CRC32C ----------

TEST(Crc32Test, KnownAnswerVectors) {
  // RFC 3720 Appendix B / the usual CRC32C check value.
  EXPECT_EQ(Crc32c(std::string("123456789")), 0xE3069283u);
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
  // 32 zero bytes, another standard vector.
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  // 32 bytes of 0xFF.
  std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32Test, ExtendMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t whole = Crc32c(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cExtend(
        0, reinterpret_cast<const uint8_t*>(data.data()), split);
    crc = Crc32cExtend(crc,
                       reinterpret_cast<const uint8_t*>(data.data()) + split,
                       data.size() - split);
    ASSERT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32Test, DetectsSingleByteChanges) {
  std::vector<uint8_t> data(257);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  uint32_t base = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x40;
    EXPECT_NE(Crc32c(data), base) << "flip at " << i;
    data[i] ^= 0x40;
  }
}

// ---------- test scaffolding ----------

/// A unique scratch directory per test, removed on teardown.
class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string templ = ::testing::TempDir() + "tvdp_durXXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    ASSERT_NE(mkdtemp(buf.data()), nullptr);
    dir_ = buf.data();
  }

  void TearDown() override {
    std::string cmd = "rm -rf '" + dir_ + "'";
    (void)std::system(cmd.c_str());
  }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  /// A catalog with one simple table for storage-level tests.
  static storage::Catalog MakeItemsCatalog() {
    storage::Catalog catalog;
    storage::Schema schema({
        {"name", storage::ValueType::kString, false, std::nullopt},
        {"qty", storage::ValueType::kInt64, false, std::nullopt},
    });
    EXPECT_TRUE(catalog.CreateTable("items", std::move(schema)).ok());
    return catalog;
  }

  static Row ItemRow(const std::string& name, int64_t qty) {
    return Row{Value(name), Value(qty)};
  }

  /// Copies a file byte-for-byte through `fs`.
  static void CopyFile(Fs& fs, const std::string& from,
                       const std::string& to) {
    auto bytes = fs.ReadAll(from);
    ASSERT_TRUE(bytes.ok()) << bytes.status();
    auto out = fs.OpenWritable(to, /*truncate=*/true);
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE((*out)->Append(*bytes).ok());
    ASSERT_TRUE((*out)->Close().ok());
  }

  std::string dir_;
};

// ---------- FaultInjectingFs ----------

TEST_F(DurabilityTest, FaultFsInjectsTransientErrorsThenRecovers) {
  FaultInjectingFs fs(Fs::Default());
  fs.InjectErrors(2);
  auto file = fs.OpenWritable(Path("f"), true);
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> payload{1, 2, 3};
  Status s1 = (*file)->Append(payload);
  EXPECT_EQ(s1.code(), StatusCode::kIOError);
  Status s2 = (*file)->Sync();
  EXPECT_EQ(s2.code(), StatusCode::kIOError);
  // Fault budget exhausted: writes go through again.
  EXPECT_TRUE((*file)->Append(payload).ok());
  EXPECT_TRUE((*file)->Sync().ok());
  EXPECT_TRUE((*file)->Close().ok());
  auto size = fs.FileSize(Path("f"));
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 3u);
  EXPECT_EQ(fs.injected_faults(), 2);
}

TEST_F(DurabilityTest, FaultFsShortWritePersistsOnlyPrefix) {
  FaultInjectingFs fs(Fs::Default());
  auto file = fs.OpenWritable(Path("f"), true);
  ASSERT_TRUE(file.ok());
  fs.InjectShortWrite(2);
  std::vector<uint8_t> payload{9, 8, 7, 6, 5};
  EXPECT_EQ((*file)->Append(payload).code(), StatusCode::kIOError);
  ASSERT_TRUE((*file)->Close().ok());
  auto bytes = fs.ReadAll(Path("f"));
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, (std::vector<uint8_t>{9, 8}));
}

TEST_F(DurabilityTest, FaultFsPowerCutSilentlyDropsTail) {
  FaultInjectingFs fs(Fs::Default());
  fs.SetPowerCutAfter(4);
  auto file = fs.OpenWritable(Path("f"), true);
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> payload{1, 2, 3, 4, 5, 6};
  // The writer sees success — the bytes past the cut just never land.
  EXPECT_TRUE((*file)->Append(payload).ok());
  EXPECT_TRUE((*file)->Sync().ok());
  EXPECT_TRUE((*file)->Close().ok());
  EXPECT_TRUE(fs.power_cut_hit());
  auto bytes = fs.ReadAll(Path("f"));
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, (std::vector<uint8_t>{1, 2, 3, 4}));
}

// ---------- WAL ----------

TEST_F(DurabilityTest, WalAppendRecoverRoundTrip) {
  const std::string path = Path("log.wal");
  {
    auto wal = storage::Wal::Open(Fs::Default(), path);
    ASSERT_TRUE(wal.ok());
    for (int i = 1; i <= 5; ++i) {
      storage::WalRecord rec{"items", i, ItemRow("item" + std::to_string(i),
                                                 i * 10)};
      ASSERT_TRUE(wal->Append(rec, /*sync=*/i % 2 == 0).ok());
    }
    ASSERT_TRUE(wal->Sync().ok());
  }
  auto recovery = storage::Wal::Recover(Fs::Default(), path);
  ASSERT_TRUE(recovery.ok());
  ASSERT_EQ(recovery->records.size(), 5u);
  EXPECT_EQ(recovery->dropped_bytes, 0u);
  for (int i = 1; i <= 5; ++i) {
    const storage::WalRecord& rec = recovery->records[static_cast<size_t>(i - 1)];
    EXPECT_EQ(rec.table, "items");
    EXPECT_EQ(rec.row_id, i);
    ASSERT_EQ(rec.values.size(), 2u);
    EXPECT_EQ(rec.values[0].AsString(), "item" + std::to_string(i));
    EXPECT_EQ(rec.values[1].AsInt64(), i * 10);
  }
}

TEST_F(DurabilityTest, WalBroadcastRecordsRoundTrip) {
  const std::string path = Path("broadcast.wal");
  {
    auto wal = storage::Wal::Open(Fs::Default(), path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(storage::WalRecord::BroadcastIntent(
                                7, "register_classification",
                                "{\"name\":\"scene\"}", {3, 3, 4}),
                            /*sync=*/true)
                    .ok());
    ASSERT_TRUE(
        wal->Append(storage::WalRecord::BroadcastCommit(7), true).ok());
    ASSERT_TRUE(wal->Append(storage::WalRecord::BroadcastAbort(9), true).ok());
  }
  auto recovery = storage::Wal::Recover(Fs::Default(), path);
  ASSERT_TRUE(recovery.ok());
  ASSERT_EQ(recovery->records.size(), 3u);
  const storage::WalRecord& intent = recovery->records[0];
  EXPECT_EQ(intent.type, storage::WalRecordType::kBroadcastIntent);
  EXPECT_EQ(intent.broadcast_id, 7);
  EXPECT_EQ(intent.op, "register_classification");
  EXPECT_EQ(intent.payload, "{\"name\":\"scene\"}");
  EXPECT_EQ(intent.target_ids, (std::vector<int64_t>{3, 3, 4}));
  EXPECT_EQ(recovery->records[1].type,
            storage::WalRecordType::kBroadcastCommit);
  EXPECT_EQ(recovery->records[1].broadcast_id, 7);
  EXPECT_EQ(recovery->records[2].type,
            storage::WalRecordType::kBroadcastAbort);
  EXPECT_EQ(recovery->records[2].broadcast_id, 9);
}

TEST_F(DurabilityTest, BroadcastLogSurvivesReopenAndCheckpoints) {
  const std::string base = Path("store");
  {
    auto dc = storage::DurableCatalog::Open(base);
    ASSERT_TRUE(dc.ok());
    ASSERT_TRUE(dc->Bootstrap(MakeItemsCatalog()).ok());
    ASSERT_TRUE(dc->AppendBroadcast(storage::WalRecord::BroadcastIntent(
                      1, "register_classification", "{}", {5}))
                    .ok());
    ASSERT_TRUE(dc->AppendBroadcast(storage::WalRecord::BroadcastCommit(1))
                    .ok());
    ASSERT_TRUE(dc->AppendBroadcast(storage::WalRecord::BroadcastIntent(
                      2, "register_classification", "{\"k\":1}", {6}))
                    .ok());
    // Unlike the insert WAL, a checkpoint must not reset the broadcast log:
    // broadcast 2 is still unresolved.
    ASSERT_TRUE(dc->Insert("items", ItemRow("a", 1)).ok());
    ASSERT_TRUE(dc->Checkpoint().ok());
  }
  {
    auto dc = storage::DurableCatalog::Open(base);
    ASSERT_TRUE(dc.ok()) << dc.status();
    auto pending = dc->PendingBroadcasts();
    ASSERT_EQ(pending.size(), 1u);
    EXPECT_EQ(pending[0].broadcast_id, 2);
    EXPECT_EQ(pending[0].payload, "{\"k\":1}");
    EXPECT_EQ(pending[0].target_ids, (std::vector<int64_t>{6}));
    // The resolved broadcast was compacted away, but its id survives in
    // the high-water marker so ids never regress.
    EXPECT_EQ(dc->max_broadcast_id(), 2);
    ASSERT_TRUE(dc->AppendBroadcast(storage::WalRecord::BroadcastAbort(2))
                    .ok());
  }
  {
    auto dc = storage::DurableCatalog::Open(base);
    ASSERT_TRUE(dc.ok()) << dc.status();
    EXPECT_TRUE(dc->PendingBroadcasts().empty());
    EXPECT_EQ(dc->max_broadcast_id(), 2);
  }
}

TEST_F(DurabilityTest, BroadcastLogRejectsInsertRecords) {
  const std::string base = Path("bstore");
  auto dc = storage::DurableCatalog::Open(base);
  ASSERT_TRUE(dc.ok());
  ASSERT_TRUE(dc->Bootstrap(MakeItemsCatalog()).ok());
  storage::WalRecord insert{"items", 1, ItemRow("a", 1)};
  auto s = dc->AppendBroadcast(insert);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(DurabilityTest, WalRecoverOnMissingFileIsEmpty) {
  auto recovery = storage::Wal::Recover(Fs::Default(), Path("absent.wal"));
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery->records.empty());
}

TEST_F(DurabilityTest, WalRecoveryTruncatesGarbageTail) {
  const std::string path = Path("log.wal");
  auto wal = storage::Wal::Open(Fs::Default(), path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append({"items", 1, ItemRow("a", 1)}, true).ok());
  uint64_t committed = wal->size_bytes();
  // A torn frame: plausible header, truncated payload.
  std::vector<uint8_t> garbage{42, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF, 1, 2};
  auto raw = Fs::Default()->OpenWritable(path, /*truncate=*/false);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE((*raw)->Append(garbage).ok());
  ASSERT_TRUE((*raw)->Close().ok());

  auto recovery = storage::Wal::Recover(Fs::Default(), path);
  ASSERT_TRUE(recovery.ok());
  EXPECT_EQ(recovery->records.size(), 1u);
  EXPECT_EQ(recovery->valid_bytes, committed);
  EXPECT_EQ(recovery->dropped_bytes, garbage.size());
  // The garbage is gone from disk, so a second recovery is clean.
  auto size = Fs::Default()->FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, committed);
}

TEST_F(DurabilityTest, WalRejectsBitFlippedRecords) {
  const std::string path = Path("log.wal");
  {
    auto wal = storage::Wal::Open(Fs::Default(), path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append({"items", 1, ItemRow("abcdef", 123)}, true).ok());
  }
  auto pristine = Fs::Default()->ReadAll(path);
  ASSERT_TRUE(pristine.ok());
  for (size_t pos = 0; pos < pristine->size(); ++pos) {
    std::vector<uint8_t> flipped = *pristine;
    flipped[pos] ^= 0x01;
    auto out = Fs::Default()->OpenWritable(path, /*truncate=*/true);
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE((*out)->Append(flipped).ok());
    ASSERT_TRUE((*out)->Close().ok());
    auto recovery = storage::Wal::Recover(Fs::Default(), path);
    ASSERT_TRUE(recovery.ok());
    EXPECT_EQ(recovery->records.size(), 0u) << "flip at " << pos;
  }
}

TEST_F(DurabilityTest, WalDecodesPreReplicationRecordsWithEpochZero) {
  const std::string path = Path("legacy.wal");
  // Hand-frame two mutations in the pre-replication layout (tags 0/4, no
  // epoch bytes) — the format every WAL written before replication holds.
  storage::BinaryWriter insert;
  insert.WriteU8(0);  // pre-replication kInsert
  insert.WriteString("items");
  insert.WriteI64(7);
  insert.WriteU32(2);
  insert.WriteValue(Value(std::string("legacy")));
  insert.WriteValue(Value(static_cast<int64_t>(42)));
  storage::BinaryWriter del;
  del.WriteU8(4);  // pre-replication kDelete
  del.WriteString("items");
  del.WriteI64(7);

  storage::BinaryWriter file;
  for (const std::vector<uint8_t>* payload :
       {&insert.buffer(), &del.buffer()}) {
    file.WriteU32(static_cast<uint32_t>(payload->size()));
    file.WriteU32(Crc32c(*payload));
    for (uint8_t b : *payload) file.WriteU8(b);
  }
  auto out = Fs::Default()->OpenWritable(path, /*truncate=*/true);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE((*out)->Append(file.buffer()).ok());
  ASSERT_TRUE((*out)->Close().ok());

  // The whole legacy log decodes with epoch 0 — none of it is mistaken for
  // corruption and truncated away.
  auto recovery = storage::Wal::Recover(Fs::Default(), path);
  ASSERT_TRUE(recovery.ok()) << recovery.status();
  EXPECT_EQ(recovery->dropped_bytes, 0u);
  ASSERT_EQ(recovery->records.size(), 2u);
  const storage::WalRecord& ins = recovery->records[0];
  EXPECT_EQ(ins.type, storage::WalRecordType::kInsert);
  EXPECT_EQ(ins.table, "items");
  EXPECT_EQ(ins.row_id, 7);
  EXPECT_EQ(ins.epoch, 0);
  ASSERT_EQ(ins.values.size(), 2u);
  EXPECT_EQ(ins.values[0].AsString(), "legacy");
  EXPECT_EQ(ins.values[1].AsInt64(), 42);
  EXPECT_EQ(recovery->records[1].type, storage::WalRecordType::kDelete);
  EXPECT_EQ(recovery->records[1].epoch, 0);

  // And epoch-0 mutations still encode in exactly that layout, so an
  // unreplicated deployment's log stays byte-identical to the old format.
  storage::WalRecord ins_rec{"items", 7, ItemRow("legacy", 42)};
  EXPECT_EQ(ins_rec.Encode(), insert.buffer());
  EXPECT_EQ(storage::WalRecord::Delete("items", 7).Encode(), del.buffer());
}

TEST_F(DurabilityTest, WalEpochStampedRecordsRoundTrip) {
  storage::WalRecord ins{"items", 9, ItemRow("stamped", 5)};
  ins.epoch = 3;
  auto decoded = storage::WalRecord::Decode(ins.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  // Decode normalizes the stamped wire tag back to the plain record kind.
  EXPECT_EQ(decoded->type, storage::WalRecordType::kInsert);
  EXPECT_EQ(decoded->epoch, 3);
  EXPECT_EQ(decoded->table, "items");
  EXPECT_EQ(decoded->row_id, 9);
  ASSERT_EQ(decoded->values.size(), 2u);
  EXPECT_EQ(decoded->values[0].AsString(), "stamped");

  storage::WalRecord del = storage::WalRecord::Delete("items", 9);
  del.epoch = 12;
  // The stamped encoding carries a distinct tag, so a pre-replication
  // reader fails loudly (unknown type) instead of silently misparsing.
  EXPECT_EQ(del.Encode()[0],
            static_cast<uint8_t>(storage::WalRecordType::kEpochDelete));
  auto ddecoded = storage::WalRecord::Decode(del.Encode());
  ASSERT_TRUE(ddecoded.ok()) << ddecoded.status();
  EXPECT_EQ(ddecoded->type, storage::WalRecordType::kDelete);
  EXPECT_EQ(ddecoded->epoch, 12);
}

// ---------- DurableCatalog ----------

TEST_F(DurabilityTest, DurableCatalogPersistsAcrossReopen) {
  const std::string base = Path("db");
  {
    auto dc = storage::DurableCatalog::Open(base);
    ASSERT_TRUE(dc.ok());
    EXPECT_FALSE(dc->recovered_from_disk());
    ASSERT_TRUE(dc->Bootstrap(MakeItemsCatalog()).ok());
    for (int i = 1; i <= 10; ++i) {
      auto id = dc->Insert("items", ItemRow("it" + std::to_string(i), i));
      ASSERT_TRUE(id.ok());
      EXPECT_EQ(*id, i);
    }
  }
  auto dc = storage::DurableCatalog::Open(base);
  ASSERT_TRUE(dc.ok());
  EXPECT_TRUE(dc->recovered_from_disk());
  EXPECT_EQ(dc->replayed_records(), 10u);
  storage::Table* items = dc->catalog().GetTable("items");
  ASSERT_NE(items, nullptr);
  EXPECT_EQ(items->size(), 10u);
  auto row = items->Get(7);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsString(), "it7");
  // Ids keep counting from where they left off.
  auto next = dc->Insert("items", ItemRow("post", 0));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 11);
}

TEST_F(DurabilityTest, PowerCutSweepRecoversExactlyTheCommittedPrefix) {
  const std::string base = Path("db");
  const int kRecords = 8;
  // Build a store with kRecords committed inserts and remember the WAL
  // frame boundaries (= number of records durable at each prefix length).
  std::vector<uint64_t> frame_end;  // frame_end[i] = bytes after record i+1
  {
    auto dc = storage::DurableCatalog::Open(base);
    ASSERT_TRUE(dc.ok());
    ASSERT_TRUE(dc->Bootstrap(MakeItemsCatalog()).ok());
    for (int i = 1; i <= kRecords; ++i) {
      ASSERT_TRUE(dc->Insert("items", ItemRow("r" + std::to_string(i), i)).ok());
      frame_end.push_back(dc->wal_size_bytes());
    }
  }
  Fs& fs = *Fs::Default();
  const std::string wal = base + ".wal";
  const std::string wal_copy = Path("wal.pristine");
  CopyFile(fs, wal, wal_copy);
  auto full_size = fs.FileSize(wal);
  ASSERT_TRUE(full_size.ok());

  // Cut the log at EVERY byte offset: recovery must yield exactly the
  // records whose frames are fully inside the kept prefix — never fewer,
  // never a torn record, never a crash.
  for (uint64_t cut = 0; cut <= *full_size; ++cut) {
    CopyFile(fs, wal_copy, wal);
    ASSERT_TRUE(fs.Truncate(wal, cut).ok());
    size_t expected = 0;
    while (expected < frame_end.size() && frame_end[expected] <= cut) {
      ++expected;
    }
    auto dc = storage::DurableCatalog::Open(base);
    ASSERT_TRUE(dc.ok()) << "cut at " << cut << ": " << dc.status();
    storage::Table* items = dc->catalog().GetTable("items");
    ASSERT_NE(items, nullptr);
    ASSERT_EQ(items->size(), expected) << "cut at " << cut;
    for (size_t i = 1; i <= expected; ++i) {
      auto row = items->Get(static_cast<int64_t>(i));
      ASSERT_TRUE(row.ok()) << "cut at " << cut << " row " << i;
      ASSERT_EQ((*row)[1].AsString(), "r" + std::to_string(i));
    }
    ASSERT_FALSE(items->Exists(static_cast<int64_t>(expected) + 1))
        << "cut at " << cut;
  }
}

TEST_F(DurabilityTest, SnapshotLoadFailsCleanlyOnMissingEmptyAndTruncated) {
  // Missing file.
  auto missing = storage::Catalog::LoadFromFile(Path("nope.snapshot"));
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIOError);

  // Empty file.
  const std::string empty_path = Path("empty.snapshot");
  {
    auto f = Fs::Default()->OpenWritable(empty_path, true);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  auto empty = storage::Catalog::LoadFromFile(empty_path);
  EXPECT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kIOError);

  // Truncated at every prefix length of a real snapshot.
  storage::Catalog catalog = MakeItemsCatalog();
  ASSERT_TRUE(catalog.Insert("items", ItemRow("x", 1)).ok());
  const std::string snap = Path("real.snapshot");
  ASSERT_TRUE(catalog.SaveToFile(snap).ok());
  auto bytes = Fs::Default()->ReadAll(snap);
  ASSERT_TRUE(bytes.ok());
  for (size_t len = 0; len < bytes->size(); ++len) {
    std::vector<uint8_t> prefix(bytes->begin(),
                                bytes->begin() + static_cast<long>(len));
    auto truncated = storage::Catalog::Deserialize(prefix);
    ASSERT_FALSE(truncated.ok()) << "prefix length " << len;
    ASSERT_EQ(truncated.status().code(), StatusCode::kIOError);
  }
  EXPECT_TRUE(storage::Catalog::LoadFromFile(snap).ok());
}

TEST_F(DurabilityTest, TransientIoErrorRollsBackAndStaysConsistent) {
  const std::string base = Path("db");
  FaultInjectingFs fault_fs(Fs::Default());
  storage::DurableCatalogOptions options;
  options.fs = &fault_fs;
  auto dc = storage::DurableCatalog::Open(base, options);
  ASSERT_TRUE(dc.ok());
  ASSERT_TRUE(dc->Bootstrap(MakeItemsCatalog()).ok());
  ASSERT_TRUE(dc->Insert("items", ItemRow("good", 1)).ok());

  fault_fs.InjectErrors(1);
  auto failed = dc->Insert("items", ItemRow("doomed", 2));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIOError);

  // In-memory state rolled back: the doomed row is gone and the id was
  // not burned.
  storage::Table* items = dc->catalog().GetTable("items");
  EXPECT_EQ(items->size(), 1u);
  auto retried = dc->Insert("items", ItemRow("retried", 3));
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(*retried, 2);

  // And a reopen from disk agrees exactly.
  auto reopened = storage::DurableCatalog::Open(base);
  ASSERT_TRUE(reopened.ok());
  storage::Table* reopened_items = reopened->catalog().GetTable("items");
  ASSERT_NE(reopened_items, nullptr);
  EXPECT_EQ(reopened_items->size(), 2u);
  EXPECT_TRUE(reopened_items->Exists(1));
  EXPECT_TRUE(reopened_items->Exists(2));
  auto row = reopened_items->Get(2);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsString(), "retried");
}

TEST_F(DurabilityTest, CompactionSnapshotsAndResetsTheWal) {
  const std::string base = Path("db");
  storage::DurableCatalogOptions options;
  options.compaction_threshold_bytes = 256;  // compact every few records
  {
    auto dc = storage::DurableCatalog::Open(base, options);
    ASSERT_TRUE(dc.ok());
    ASSERT_TRUE(dc->Bootstrap(MakeItemsCatalog()).ok());
    for (int i = 1; i <= 100; ++i) {
      ASSERT_TRUE(dc->Insert("items", ItemRow("c" + std::to_string(i), i)).ok());
    }
    EXPECT_GT(dc->checkpoints_taken(), 1u);  // bootstrap + >=1 compaction
    EXPECT_LE(dc->wal_size_bytes(), options.compaction_threshold_bytes + 64);
  }
  auto dc = storage::DurableCatalog::Open(base, options);
  ASSERT_TRUE(dc.ok());
  storage::Table* items = dc->catalog().GetTable("items");
  ASSERT_NE(items, nullptr);
  EXPECT_EQ(items->size(), 100u);
  for (int i = 1; i <= 100; ++i) ASSERT_TRUE(items->Exists(i));
}

TEST_F(DurabilityTest, CrashBetweenSnapshotAndWalResetIsHarmless) {
  const std::string base = Path("db");
  const std::string wal = base + ".wal";
  std::string stale_wal = Path("stale.wal");
  {
    auto dc = storage::DurableCatalog::Open(base);
    ASSERT_TRUE(dc.ok());
    ASSERT_TRUE(dc->Bootstrap(MakeItemsCatalog()).ok());
    for (int i = 1; i <= 5; ++i) {
      ASSERT_TRUE(dc->Insert("items", ItemRow("s" + std::to_string(i), i)).ok());
    }
    CopyFile(*Fs::Default(), wal, stale_wal);
    // Snapshot written, then "crash" before the log reset lands: put the
    // pre-checkpoint WAL back.
    ASSERT_TRUE(dc->Checkpoint().ok());
  }
  CopyFile(*Fs::Default(), stale_wal, wal);
  auto dc = storage::DurableCatalog::Open(base);
  ASSERT_TRUE(dc.ok()) << dc.status();
  // The replayed records were already in the snapshot; dedup keeps exactly
  // one copy of each.
  storage::Table* items = dc->catalog().GetTable("items");
  EXPECT_EQ(items->size(), 5u);
  auto next = dc->Insert("items", ItemRow("after", 9));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 6);
}

// ---------- platform facade durability ----------

TEST_F(DurabilityTest, TvdpReopenRecoversImagesAnnotationsAndIndexes) {
  const std::string base = Path("tvdp");
  const geo::GeoPoint loc{34.02, -118.28};
  {
    auto opened = platform::Tvdp::Open(base);
    ASSERT_TRUE(opened.ok()) << opened.status();
    platform::Tvdp tvdp = std::move(opened).value();
    ASSERT_TRUE(
        tvdp.RegisterClassification("street_cleanliness",
                                    {"clean", "encampment"})
            .ok());
    platform::ImageRecord rec;
    rec.uri = "img://1";
    rec.location = loc;
    rec.captured_at = 1000;
    rec.keywords = {"tent", "sidewalk"};
    auto fov = geo::FieldOfView::Make(loc, 90, 60, 100);
    ASSERT_TRUE(fov.ok());
    rec.fov = *fov;
    auto id = tvdp.IngestImage(rec);
    ASSERT_TRUE(id.ok());
    platform::AnnotationRecord ann;
    ann.classification = "street_cleanliness";
    ann.label = "encampment";
    ann.confidence = 0.95;
    ann.machine = true;
    ASSERT_TRUE(tvdp.AnnotateImage(*id, ann).ok());
    ml::FeatureVector feature{0.5, 0.25, 0.25};
    ASSERT_TRUE(tvdp.StoreFeature(*id, "cnn", feature).ok());
  }

  auto reopened = platform::Tvdp::Open(base);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  platform::Tvdp tvdp = std::move(reopened).value();
  EXPECT_TRUE(tvdp.durable());
  EXPECT_EQ(tvdp.image_count(), 1u);

  // Annotation registry survived.
  auto label = tvdp.GetLabel(1, "street_cleanliness");
  ASSERT_TRUE(label.ok());
  EXPECT_EQ(*label, "encampment");

  // The feature row survived.
  auto feature = tvdp.GetFeature(1, "cnn");
  ASSERT_TRUE(feature.ok());
  EXPECT_EQ(feature->size(), 3u);

  // Indexes were rebuilt: spatial, textual and categorical all find it.
  auto spatial = tvdp.query().SpatialRange(
      geo::BoundingBox::FromCenterRadius(loc, 500));
  ASSERT_TRUE(spatial.ok());
  EXPECT_EQ(spatial->size(), 1u);
  query::TextualPredicate text;
  text.keywords = {"tent"};
  auto textual = tvdp.query().Textual(text);
  ASSERT_TRUE(textual.ok());
  EXPECT_EQ(textual->size(), 1u);
  auto sites = tvdp.LocationsWithLabel("street_cleanliness", "encampment", 0.5);
  ASSERT_TRUE(sites.ok());
  ASSERT_EQ(sites->size(), 1u);

  // Re-registering the same classification after recovery is a no-op that
  // reuses the persisted ids rather than duplicating rows.
  auto again =
      tvdp.RegisterClassification("street_cleanliness", {"clean"});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(tvdp.catalog()
                .GetTable(storage::tables::kImageContentClassification)
                ->size(),
            1u);

  // New ingests keep working and ids continue.
  platform::ImageRecord rec2;
  rec2.uri = "img://2";
  rec2.location = geo::GeoPoint{34.03, -118.27};
  rec2.captured_at = 2000;
  auto id2 = tvdp.IngestImage(rec2);
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id2, 2);
}

TEST_F(DurabilityTest, TvdpIngestHitsIoErrorAndStaysUsable) {
  const std::string base = Path("tvdp");
  FaultInjectingFs fault_fs(Fs::Default());
  storage::DurableCatalogOptions options;
  options.fs = &fault_fs;
  auto opened = platform::Tvdp::Open(base, options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  platform::Tvdp tvdp = std::move(opened).value();

  platform::ImageRecord good;
  good.uri = "img://ok";
  good.location = geo::GeoPoint{34.0, -118.0};
  good.captured_at = 1;
  ASSERT_TRUE(tvdp.IngestImage(good).ok());

  fault_fs.InjectErrors(1);
  platform::ImageRecord doomed;
  doomed.uri = "img://doomed";
  doomed.location = geo::GeoPoint{34.1, -118.1};
  doomed.captured_at = 2;
  auto failed = tvdp.IngestImage(doomed);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIOError);

  // The platform is still fully usable afterwards...
  EXPECT_EQ(tvdp.image_count(), 1u);
  platform::ImageRecord next;
  next.uri = "img://next";
  next.location = geo::GeoPoint{34.2, -118.2};
  next.captured_at = 3;
  ASSERT_TRUE(tvdp.IngestImage(next).ok());

  // ...and a reopen sees only the committed ingests, consistently.
  auto reopened = platform::Tvdp::Open(base);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->image_count(), 2u);
  const storage::Table* images =
      reopened->catalog().GetTable(storage::tables::kImages);
  auto by_uri = images->FindBy("uri", Value(std::string("img://doomed")));
  ASSERT_TRUE(by_uri.ok());
  EXPECT_TRUE(by_uri->empty());
}

TEST_F(DurabilityTest, CompactionRetriesThroughTransientFaults) {
  const std::string base = Path("db");
  FaultInjectingFs fault_fs(Fs::Default());
  storage::DurableCatalogOptions options;
  options.fs = &fault_fs;
  options.sync_on_commit = false;       // an insert is exactly 2 appends
  options.compaction_threshold_bytes = 0;  // every insert compacts
  auto dc = storage::DurableCatalog::Open(base, options);
  ASSERT_TRUE(dc.ok());
  ASSERT_TRUE(dc->Bootstrap(MakeItemsCatalog()).ok());
  ASSERT_TRUE(dc->Insert("items", ItemRow("warm", 1)).ok());
  size_t checkpoints_before = dc->checkpoints_taken();
  int64_t faults_before = fault_fs.injected_faults();

  // Let the insert's own WAL commit (frame + payload appends) through, then
  // fail the first two compaction attempts at the snapshot write; the third
  // retry must succeed.
  fault_fs.InjectErrorsAfter(/*skip=*/2, /*n=*/2);
  auto inserted = dc->Insert("items", ItemRow("compacted", 2));
  ASSERT_TRUE(inserted.ok()) << inserted.status();
  EXPECT_EQ(fault_fs.injected_faults() - faults_before, 2);
  EXPECT_EQ(dc->checkpoints_taken(), checkpoints_before + 1);
  EXPECT_EQ(dc->wal_size_bytes(), 0u);  // compaction reset the log

  // A reopen agrees with memory.
  auto reopened = storage::DurableCatalog::Open(base);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->catalog().GetTable("items")->size(), 2u);
}

TEST_F(DurabilityTest, CompactionStaysBestEffortWhenRetryBudgetRunsOut) {
  const std::string base = Path("db");
  FaultInjectingFs fault_fs(Fs::Default());
  storage::DurableCatalogOptions options;
  options.fs = &fault_fs;
  options.sync_on_commit = false;
  options.compaction_threshold_bytes = 0;
  auto dc = storage::DurableCatalog::Open(base, options);
  ASSERT_TRUE(dc.ok());
  ASSERT_TRUE(dc->Bootstrap(MakeItemsCatalog()).ok());
  size_t checkpoints_before = dc->checkpoints_taken();

  // All three attempts (the default budget) fail: the insert still commits
  // — compaction is best-effort, the record is already durable in the WAL.
  fault_fs.InjectErrorsAfter(/*skip=*/2, /*n=*/3);
  ASSERT_TRUE(dc->Insert("items", ItemRow("logged", 1)).ok());
  EXPECT_EQ(dc->checkpoints_taken(), checkpoints_before);
  EXPECT_GT(dc->wal_size_bytes(), 0u);  // the record is still in the log

  // The next threshold cross compacts normally once the disk heals.
  ASSERT_TRUE(dc->Insert("items", ItemRow("healed", 2)).ok());
  EXPECT_EQ(dc->checkpoints_taken(), checkpoints_before + 1);
  EXPECT_EQ(dc->wal_size_bytes(), 0u);

  auto reopened = storage::DurableCatalog::Open(base);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->catalog().GetTable("items")->size(), 2u);
}

}  // namespace
}  // namespace tvdp
