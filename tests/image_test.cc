#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "image/augment.h"
#include "image/draw.h"
#include "image/image.h"
#include "image/scene_gen.h"

namespace tvdp::image {
namespace {

// ---------- Color conversions ----------

TEST(ColorTest, PrimariesToHsv) {
  Hsv red = RgbToHsv(Rgb{255, 0, 0});
  EXPECT_NEAR(red.h, 0, 0.01);
  EXPECT_NEAR(red.s, 1, 0.01);
  EXPECT_NEAR(red.v, 1, 0.01);
  Hsv green = RgbToHsv(Rgb{0, 255, 0});
  EXPECT_NEAR(green.h, 120, 0.01);
  Hsv blue = RgbToHsv(Rgb{0, 0, 255});
  EXPECT_NEAR(blue.h, 240, 0.01);
  Hsv grey = RgbToHsv(Rgb{128, 128, 128});
  EXPECT_NEAR(grey.s, 0, 0.01);
}

class HsvRoundtripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HsvRoundtripTest, RgbHsvRgbIsLossless) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    Rgb c{static_cast<uint8_t>(rng.UniformInt(0, 255)),
          static_cast<uint8_t>(rng.UniformInt(0, 255)),
          static_cast<uint8_t>(rng.UniformInt(0, 255))};
    Rgb back = HsvToRgb(RgbToHsv(c));
    EXPECT_NEAR(back.r, c.r, 1);
    EXPECT_NEAR(back.g, c.g, 1);
    EXPECT_NEAR(back.b, c.b, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HsvRoundtripTest, ::testing::Values(1, 2, 3));

TEST(ColorTest, BlendEndpoints) {
  Rgb a{10, 20, 30}, b{200, 100, 50};
  EXPECT_EQ(Blend(a, b, 0.0), a);
  EXPECT_EQ(Blend(a, b, 1.0), b);
  Rgb mid = Blend(a, b, 0.5);
  EXPECT_NEAR(mid.r, 105, 1);
}

// ---------- Image ----------

TEST(ImageTest, ConstructAndFill) {
  Image img(8, 6, Rgb{1, 2, 3});
  EXPECT_EQ(img.width(), 8);
  EXPECT_EQ(img.height(), 6);
  EXPECT_EQ(img.pixel_count(), 48u);
  EXPECT_EQ(img.at(7, 5), (Rgb{1, 2, 3}));
  img.Fill(Rgb{9, 9, 9});
  EXPECT_EQ(img.at(0, 0), (Rgb{9, 9, 9}));
}

TEST(ImageTest, SetClipsOutOfBounds) {
  Image img(4, 4);
  img.Set(-1, 0, Rgb{255, 0, 0});
  img.Set(4, 4, Rgb{255, 0, 0});
  img.Set(2, 2, Rgb{255, 0, 0});
  EXPECT_EQ(img.at(2, 2).r, 255);
}

TEST(ImageTest, ToGrayWeights) {
  Image img(1, 1, Rgb{255, 255, 255});
  EXPECT_NEAR(img.ToGray()[0], 1.0, 1e-5);
  img.Fill(Rgb{0, 0, 0});
  EXPECT_NEAR(img.ToGray()[0], 0.0, 1e-5);
}

TEST(ImageTest, ResizePreservesFlatColor) {
  Image img(10, 10, Rgb{50, 100, 150});
  auto resized = img.Resize(23, 7);
  ASSERT_TRUE(resized.ok());
  EXPECT_EQ(resized->width(), 23);
  EXPECT_EQ(resized->height(), 7);
  EXPECT_EQ(resized->at(11, 3), (Rgb{50, 100, 150}));
}

TEST(ImageTest, ResizeRejectsBadTargets) {
  Image img(10, 10);
  EXPECT_FALSE(img.Resize(0, 5).ok());
  EXPECT_FALSE(img.Resize(5, -1).ok());
  EXPECT_FALSE(Image().Resize(5, 5).ok());
}

TEST(ImageTest, CropClipsAndValidates) {
  Image img(10, 10);
  img.at(5, 5) = Rgb{255, 0, 0};
  auto crop = img.Crop(4, 4, 3, 3);
  ASSERT_TRUE(crop.ok());
  EXPECT_EQ(crop->width(), 3);
  EXPECT_EQ(crop->at(1, 1).r, 255);
  auto clipped = img.Crop(8, 8, 10, 10);
  ASSERT_TRUE(clipped.ok());
  EXPECT_EQ(clipped->width(), 2);
  EXPECT_FALSE(img.Crop(20, 20, 5, 5).ok());
}

TEST(ImageTest, PpmRoundtrip) {
  Rng rng(4);
  Image img(9, 7);
  for (int y = 0; y < 7; ++y) {
    for (int x = 0; x < 9; ++x) {
      img.at(x, y) = Rgb{static_cast<uint8_t>(rng.UniformInt(0, 255)),
                         static_cast<uint8_t>(rng.UniformInt(0, 255)),
                         static_cast<uint8_t>(rng.UniformInt(0, 255))};
    }
  }
  auto decoded = DecodePpm(EncodePpm(img));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, img);
}

TEST(ImageTest, PpmRejectsGarbage) {
  EXPECT_FALSE(DecodePpm({}).ok());
  EXPECT_FALSE(DecodePpm({'P', '5', '\n'}).ok());
  std::vector<uint8_t> truncated = EncodePpm(Image(4, 4));
  truncated.resize(truncated.size() - 5);
  EXPECT_FALSE(DecodePpm(truncated).ok());
}

// ---------- Drawing ----------

TEST(DrawTest, FillRectClips) {
  Image img(10, 10, Rgb{0, 0, 0});
  FillRect(img, 8, 8, 5, 5, Rgb{255, 255, 255});
  EXPECT_EQ(img.at(9, 9).r, 255);
  EXPECT_EQ(img.at(7, 7).r, 0);
}

TEST(DrawTest, FillCircleGeometry) {
  Image img(21, 21, Rgb{0, 0, 0});
  FillCircle(img, 10, 10, 5, Rgb{255, 0, 0});
  EXPECT_EQ(img.at(10, 10).r, 255);
  EXPECT_EQ(img.at(10, 5).r, 255);   // on radius
  EXPECT_EQ(img.at(10, 4).r, 0);     // just outside
  EXPECT_EQ(img.at(14, 14).r, 0);    // corner of bbox, outside circle
}

TEST(DrawTest, LineEndpoints) {
  Image img(10, 10, Rgb{0, 0, 0});
  DrawLine(img, 1, 1, 8, 6, Rgb{0, 255, 0});
  EXPECT_EQ(img.at(1, 1).g, 255);
  EXPECT_EQ(img.at(8, 6).g, 255);
}

TEST(DrawTest, TriangleFillsInterior) {
  Image img(20, 20, Rgb{0, 0, 0});
  FillTriangle(img, 2, 18, 10, 2, 18, 18, Rgb{0, 0, 255});
  EXPECT_EQ(img.at(10, 12).b, 255);  // interior
  EXPECT_EQ(img.at(2, 2).b, 0);      // outside
}

TEST(DrawTest, VerticalGradientMonotone) {
  Image img(4, 10);
  VerticalGradient(img, 0, 10, Rgb{0, 0, 0}, Rgb{200, 200, 200});
  EXPECT_LT(img.at(0, 0).r, img.at(0, 5).r);
  EXPECT_LT(img.at(0, 5).r, img.at(0, 9).r);
}

TEST(DrawTest, NoiseChangesPixelsButBounded) {
  Rng rng(10);
  Image img(16, 16, Rgb{128, 128, 128});
  AddGaussianNoise(img, 5, rng);
  int changed = 0;
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      if (img.at(x, y).r != 128) ++changed;
      EXPECT_NEAR(img.at(x, y).r, 128, 40);
    }
  }
  EXPECT_GT(changed, 100);
}

TEST(DrawTest, BrightnessScaleClamps) {
  Image img(2, 2, Rgb{200, 200, 200});
  ScaleBrightness(img, 2.0);
  EXPECT_EQ(img.at(0, 0).r, 255);
  ScaleBrightness(img, 0.0);
  EXPECT_EQ(img.at(0, 0).r, 0);
}

// ---------- Augmentation ----------

TEST(AugmentTest, FlipHorizontalInvolution) {
  Rng rng(2);
  Image img(8, 8);
  img.at(1, 3) = Rgb{255, 0, 0};
  Image once = FlipHorizontal(img);
  EXPECT_EQ(once.at(6, 3).r, 255);
  EXPECT_EQ(FlipHorizontal(once), img);
}

TEST(AugmentTest, FlipVerticalInvolution) {
  Image img(8, 8);
  img.at(2, 1) = Rgb{0, 255, 0};
  Image once = FlipVertical(img);
  EXPECT_EQ(once.at(2, 6).g, 255);
  EXPECT_EQ(FlipVertical(once), img);
}

TEST(AugmentTest, RotatePreservesSize) {
  Image img(12, 9, Rgb{10, 10, 10});
  Image rotated = Rotate(img, 33.0, Rgb{0, 0, 0});
  EXPECT_EQ(rotated.width(), 12);
  EXPECT_EQ(rotated.height(), 9);
}

TEST(AugmentTest, Rotate360ApproximatesIdentity) {
  Image img(16, 16);
  img.at(4, 4) = Rgb{255, 255, 255};
  Image rotated = Rotate(img, 360.0);
  EXPECT_EQ(rotated.at(4, 4).r, 255);
}

TEST(AugmentTest, CropResizeValidation) {
  Rng rng(3);
  Image img(16, 16, Rgb{77, 77, 77});
  auto ok = RandomCropResize(img, 0.8, rng);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->width(), 16);
  EXPECT_FALSE(RandomCropResize(img, 0.0, rng).ok());
  EXPECT_FALSE(RandomCropResize(img, 1.5, rng).ok());
  EXPECT_FALSE(RandomCropResize(Image(), 0.5, rng).ok());
}

TEST(AugmentTest, GeneratorProducesRequestedCount) {
  Rng rng(6);
  Augmentor augmentor;
  Image img(16, 16, Rgb{100, 120, 140});
  auto variants = augmentor.Generate(img, 5, rng);
  ASSERT_EQ(variants.size(), 5u);
  for (const auto& v : variants) {
    EXPECT_EQ(v.width(), 16);
    EXPECT_EQ(v.height(), 16);
  }
  EXPECT_TRUE(augmentor.Generate(img, 0, rng).empty());
}

TEST(AugmentTest, GeneratorDeterministicForSeed) {
  Image img(16, 16, Rgb{100, 120, 140});
  Rng rng1(77), rng2(77);
  Augmentor augmentor;
  auto a = augmentor.Generate(img, 3, rng1);
  auto b = augmentor.Generate(img, 3, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

// ---------- Scene generator ----------

TEST(SceneGenTest, ClassNamesRoundtrip) {
  for (int c = 0; c < kNumSceneClasses; ++c) {
    SceneClass cls = static_cast<SceneClass>(c);
    EXPECT_EQ(SceneClassFromName(SceneClassName(cls)), cls);
  }
  EXPECT_EQ(SceneClassFromName("bogus"), SceneClass::kClean);
}

TEST(SceneGenTest, GeneratesConfiguredSize) {
  Rng rng(1);
  StreetSceneGenerator gen(SceneGenConfig{48, 32, 0.5});
  Scene s = gen.Generate(SceneClass::kClean, rng);
  EXPECT_EQ(s.image.width(), 48);
  EXPECT_EQ(s.image.height(), 32);
  EXPECT_EQ(s.label, SceneClass::kClean);
}

TEST(SceneGenTest, DeterministicForSeed) {
  StreetSceneGenerator gen;
  Rng a(5), b(5);
  Scene sa = gen.Generate(SceneClass::kEncampment, a);
  Scene sb = gen.Generate(SceneClass::kEncampment, b);
  EXPECT_EQ(sa.image, sb.image);
}

TEST(SceneGenTest, NonCleanScenesCarryObjects) {
  StreetSceneGenerator gen;
  Rng rng(7);
  for (int c = 1; c < kNumSceneClasses; ++c) {
    Scene s = gen.Generate(static_cast<SceneClass>(c), rng);
    bool has_own_class = false;
    for (const auto& obj : s.objects) {
      if (obj.label == s.label) has_own_class = true;
    }
    EXPECT_TRUE(has_own_class) << SceneClassName(s.label);
  }
}

TEST(SceneGenTest, VegetationScenesAreGreener) {
  StreetSceneGenerator gen;
  Rng rng(11);
  auto green_mass = [](const Image& img) {
    double green = 0;
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 0; x < img.width(); ++x) {
        const Rgb& p = img.at(x, y);
        if (p.g > p.r + 20 && p.g > p.b + 20) green += 1;
      }
    }
    return green / img.pixel_count();
  };
  double veg = 0, clean = 0;
  for (int i = 0; i < 10; ++i) {
    veg += green_mass(
        gen.Generate(SceneClass::kOvergrownVegetation, rng).image);
    clean += green_mass(gen.Generate(SceneClass::kClean, rng).image);
  }
  EXPECT_GT(veg, clean * 2 + 0.01);
}

TEST(SceneGenTest, IntraClassVariation) {
  StreetSceneGenerator gen;
  Rng rng(13);
  Scene a = gen.Generate(SceneClass::kBulkyItem, rng);
  Scene b = gen.Generate(SceneClass::kBulkyItem, rng);
  EXPECT_FALSE(a.image == b.image);
}

TEST(SceneGenTest, DifficultyZeroReducesNoise) {
  Rng r1(3), r2(3);
  StreetSceneGenerator easy(SceneGenConfig{64, 64, 0.0});
  StreetSceneGenerator hard(SceneGenConfig{64, 64, 1.0});
  // Same seed; the hard generator should apply stronger perturbation, so
  // images differ from the easy ones.
  Scene se = easy.Generate(SceneClass::kClean, r1);
  Scene sh = hard.Generate(SceneClass::kClean, r2);
  EXPECT_FALSE(se.image == sh.image);
}

TEST(SceneGenTest, TinyConfigClamped) {
  StreetSceneGenerator gen(SceneGenConfig{2, 2, 0.5});
  Rng rng(1);
  Scene s = gen.Generate(SceneClass::kGraffiti, rng);
  EXPECT_GE(s.image.width(), 16);
  EXPECT_GE(s.image.height(), 16);
}

}  // namespace
}  // namespace tvdp::image
