#include <gtest/gtest.h>

#include <cstdio>

#include "storage/catalog.h"
#include "storage/schema.h"
#include "storage/serializer.h"
#include "storage/table.h"
#include "storage/tvdp_schema.h"
#include "storage/value.h"

namespace tvdp::storage {
namespace {

// ---------- Value ----------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(Value(int64_t{5}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value(true).type(), ValueType::kBool);
  EXPECT_EQ(Value("x").type(), ValueType::kString);
  EXPECT_EQ(Value(std::vector<uint8_t>{1, 2}).type(), ValueType::kBlob);
  EXPECT_EQ(Value(std::vector<double>{1.0}).type(), ValueType::kFloatVector);
  EXPECT_EQ(Value(7).AsInt64(), 7);
  EXPECT_EQ(Value(7).AsDouble(), 7.0);  // int64 widens to double
  EXPECT_EQ(Value(2.5).AsDouble(), 2.5);
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_FALSE(Value(1) == Value(2));
  EXPECT_FALSE(Value(1) == Value("1"));
  EXPECT_TRUE(Value(1) < Value(2));
  EXPECT_TRUE(Value() < Value(0));  // null sorts first (by type index)
}

TEST(ValueTest, ToStringAbbreviatesLargePayloads) {
  EXPECT_EQ(Value("hello").ToString(), "hello");
  EXPECT_EQ(Value(std::vector<uint8_t>(100)).ToString(), "<blob:100>");
  EXPECT_EQ(Value(std::vector<double>(3)).ToString(), "<vec:3>");
  EXPECT_EQ(Value().ToString(), "NULL");
}

// ---------- Schema ----------

TEST(SchemaTest, ImplicitIdColumn) {
  Schema s({{"name", ValueType::kString, false, std::nullopt}});
  EXPECT_EQ(s.num_columns(), 2u);
  EXPECT_EQ(s.columns()[0].name, "id");
  EXPECT_EQ(s.ColumnIndex("id"), 0);
  EXPECT_EQ(s.ColumnIndex("name"), 1);
  EXPECT_EQ(s.ColumnIndex("missing"), -1);
}

TEST(SchemaTest, RowValidation) {
  Schema s({{"name", ValueType::kString, false, std::nullopt},
            {"score", ValueType::kDouble, true, std::nullopt}});
  EXPECT_TRUE(s.ValidateRow({Value("x"), Value(1.5)}).ok());
  EXPECT_TRUE(s.ValidateRow({Value("x"), Value()}).ok());       // nullable
  EXPECT_TRUE(s.ValidateRow({Value("x"), Value(3)}).ok());      // int->double
  EXPECT_FALSE(s.ValidateRow({Value("x")}).ok());               // arity
  EXPECT_FALSE(s.ValidateRow({Value(), Value(1.5)}).ok());      // null non-null
  EXPECT_FALSE(s.ValidateRow({Value(1), Value(1.5)}).ok());     // type
}

// ---------- Table ----------

TEST(TableTest, InsertGetUpdateDelete) {
  Table t("things", Schema({{"name", ValueType::kString, false, std::nullopt}}));
  auto id1 = t.Insert({Value("a")});
  auto id2 = t.Insert({Value("b")});
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id1, 1);
  EXPECT_EQ(*id2, 2);
  EXPECT_EQ(t.size(), 2u);

  auto row = t.Get(*id1);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsString(), "a");

  ASSERT_TRUE(t.Update(*id1, {Value("a2")}).ok());
  EXPECT_EQ(t.Get(*id1)->at(1).AsString(), "a2");

  ASSERT_TRUE(t.Delete(*id1).ok());
  EXPECT_FALSE(t.Get(*id1).ok());
  EXPECT_FALSE(t.Delete(*id1).ok());
  EXPECT_EQ(t.size(), 1u);
  // Ids are not reused.
  EXPECT_EQ(*t.Insert({Value("c")}), 3);
}

TEST(TableTest, InsertValidatesAgainstSchema) {
  Table t("things", Schema({{"n", ValueType::kInt64, false, std::nullopt}}));
  EXPECT_FALSE(t.Insert({Value("wrong type")}).ok());
  EXPECT_FALSE(t.Insert({}).ok());
  EXPECT_EQ(t.size(), 0u);
}

TEST(TableTest, ScanAndFindBy) {
  Table t("things", Schema({{"group", ValueType::kString, false, std::nullopt},
                            {"v", ValueType::kInt64, false, std::nullopt}}));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert({Value(i % 2 == 0 ? "even" : "odd"), Value(i)}).ok());
  }
  auto evens = t.FindBy("group", Value("even"));
  ASSERT_TRUE(evens.ok());
  EXPECT_EQ(evens->size(), 5u);
  EXPECT_FALSE(t.FindBy("nope", Value(1)).ok());

  auto big = t.Scan([&](const Row& r) { return r[2].AsInt64() >= 7; });
  EXPECT_EQ(big.size(), 3u);

  int visited = 0;
  t.ForEach([&](const Row&) {
    ++visited;
    return visited < 4;  // early stop
  });
  EXPECT_EQ(visited, 4);
}

TEST(TableTest, RestoreRowRejectsDuplicates) {
  Table t("things", Schema({{"n", ValueType::kInt64, false, std::nullopt}}));
  ASSERT_TRUE(t.RestoreRow({Value(int64_t{7}), Value(1)}).ok());
  EXPECT_FALSE(t.RestoreRow({Value(int64_t{7}), Value(2)}).ok());
  EXPECT_FALSE(t.RestoreRow({Value("bad id")}).ok());
  // next_id advanced past the restored id.
  EXPECT_EQ(*t.Insert({Value(3)}), 8);
}

// ---------- Serializer ----------

TEST(SerializerTest, PrimitivesRoundtrip) {
  BinaryWriter w;
  w.WriteU8(7);
  w.WriteU32(123456);
  w.WriteI64(-99);
  w.WriteDouble(3.25);
  w.WriteString("hello");
  w.WriteBytes({1, 2, 3});
  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.ReadU8(), 7);
  EXPECT_EQ(*r.ReadU32(), 123456u);
  EXPECT_EQ(*r.ReadI64(), -99);
  EXPECT_EQ(*r.ReadDouble(), 3.25);
  EXPECT_EQ(*r.ReadString(), "hello");
  EXPECT_EQ(r.ReadBytes()->size(), 3u);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializerTest, ValueRoundtripAllTypes) {
  std::vector<Value> values = {
      Value(), Value(int64_t{-5}), Value(1.5), Value(true), Value("str"),
      Value(std::vector<uint8_t>{9, 8}), Value(std::vector<double>{1.0, 2.0})};
  BinaryWriter w;
  for (const Value& v : values) w.WriteValue(v);
  BinaryReader r(w.buffer());
  for (const Value& v : values) {
    auto back = r.ReadValue();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
}

TEST(SerializerTest, ReaderBoundsChecked) {
  std::vector<uint8_t> two_bytes{1, 2};  // named: BinaryReader keeps a ref
  BinaryReader r(two_bytes);
  EXPECT_FALSE(r.ReadU32().ok());
  BinaryWriter w;
  w.WriteString("long string");
  std::vector<uint8_t> truncated(w.buffer().begin(), w.buffer().begin() + 6);
  BinaryReader r2(truncated);
  EXPECT_FALSE(r2.ReadString().ok());
}

// ---------- Catalog ----------

TEST(CatalogTest, CreateAndLookup) {
  Catalog c;
  ASSERT_TRUE(
      c.CreateTable("a", Schema({{"x", ValueType::kInt64, false, std::nullopt}}))
          .ok());
  EXPECT_FALSE(
      c.CreateTable("a", Schema({{"x", ValueType::kInt64, false, std::nullopt}}))
          .ok());
  EXPECT_NE(c.GetTable("a"), nullptr);
  EXPECT_EQ(c.GetTable("b"), nullptr);
  EXPECT_EQ(c.TableNames(), std::vector<std::string>{"a"});
}

TEST(CatalogTest, ForeignKeyEnforcement) {
  Catalog c;
  ASSERT_TRUE(
      c.CreateTable("parents",
                    Schema({{"name", ValueType::kString, false, std::nullopt}}))
          .ok());
  ASSERT_TRUE(c.CreateTable(
                   "children",
                   Schema({{"parent_id", ValueType::kInt64, false,
                            ForeignKey{"parents"}},
                           {"name", ValueType::kString, false, std::nullopt}}))
                  .ok());
  // FK to a missing table rejected at create time.
  EXPECT_FALSE(c.CreateTable(
                    "bad", Schema({{"x", ValueType::kInt64, false,
                                    ForeignKey{"nonexistent"}}}))
                   .ok());

  auto parent = c.Insert("parents", {Value("p")});
  ASSERT_TRUE(parent.ok());
  EXPECT_TRUE(c.Insert("children", {Value(*parent), Value("c")}).ok());
  EXPECT_FALSE(c.Insert("children", {Value(int64_t{999}), Value("orphan")}).ok());
  EXPECT_FALSE(c.Insert("nonexistent", {Value(1)}).ok());
}

TEST(CatalogTest, SerializeRoundtrip) {
  Catalog c;
  ASSERT_TRUE(
      c.CreateTable("t", Schema({{"s", ValueType::kString, false, std::nullopt},
                                 {"v", ValueType::kFloatVector, true,
                                  std::nullopt}}))
          .ok());
  ASSERT_TRUE(c.Insert("t", {Value("row1"), Value(std::vector<double>{1, 2})})
                  .ok());
  ASSERT_TRUE(c.Insert("t", {Value("row2"), Value()}).ok());
  // Delete row1: the tombstone must not resurrect after a roundtrip.
  ASSERT_TRUE(c.GetTable("t")->Delete(1).ok());

  auto restored = Catalog::Deserialize(c.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status();
  Table* t = restored->GetTable("t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->size(), 1u);
  EXPECT_FALSE(t->Get(1).ok());
  EXPECT_EQ(t->Get(2)->at(1).AsString(), "row2");
  // next_id preserved: new rows continue after the old sequence.
  EXPECT_EQ(*t->Insert({Value("row3"), Value()}), 3);
}

TEST(CatalogTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Catalog::Deserialize({}).ok());
  EXPECT_FALSE(Catalog::Deserialize({1, 2, 3, 4, 5, 6, 7, 8}).ok());
}

TEST(CatalogTest, FileRoundtrip) {
  std::string path = ::testing::TempDir() + "/tvdp_catalog_test.bin";
  Catalog c;
  ASSERT_TRUE(
      c.CreateTable("t", Schema({{"x", ValueType::kInt64, false, std::nullopt}}))
          .ok());
  ASSERT_TRUE(c.Insert("t", {Value(42)}).ok());
  ASSERT_TRUE(c.SaveToFile(path).ok());
  auto loaded = Catalog::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->GetTable("t")->Get(1)->at(1).AsInt64(), 42);
  std::remove(path.c_str());
  EXPECT_FALSE(Catalog::LoadFromFile(path).ok());
}

// ---------- TVDP schema ----------

TEST(TvdpSchemaTest, AllTablesCreated) {
  auto catalog = MakeTvdpCatalog();
  ASSERT_TRUE(catalog.ok());
  for (const char* name :
       {tables::kImages, tables::kImageFov, tables::kImageSceneLocation,
        tables::kImageVisualFeatures, tables::kImageContentClassification,
        tables::kImageContentClassificationTypes,
        tables::kImageContentAnnotation, tables::kImageManualKeywords}) {
    EXPECT_NE(catalog->GetTable(name), nullptr) << name;
  }
  EXPECT_EQ(catalog->TableNames().size(), 8u);
}

TEST(TvdpSchemaTest, AnnotationRequiresExistingImageAndType) {
  auto catalog = MakeTvdpCatalog();
  ASSERT_TRUE(catalog.ok());
  // No image yet: annotation insert must fail the FK check.
  Row ann{Value(int64_t{1}), Value(int64_t{1}), Value(0.9), Value("machine"),
          Value(),           Value(),           Value(),    Value()};
  EXPECT_FALSE(catalog->Insert(tables::kImageContentAnnotation, ann).ok());

  auto image_id = catalog->Insert(
      tables::kImages,
      Row{Value("uri"), Value(34.0), Value(-118.0), Value(int64_t{100}),
          Value(int64_t{200}), Value("test"), Value(false), Value()});
  ASSERT_TRUE(image_id.ok());
  auto cls_id = catalog->Insert(tables::kImageContentClassification,
                                Row{Value("cleanliness"), Value()});
  ASSERT_TRUE(cls_id.ok());
  auto type_id =
      catalog->Insert(tables::kImageContentClassificationTypes,
                      Row{Value(*cls_id), Value("encampment")});
  ASSERT_TRUE(type_id.ok());
  Row good{Value(*image_id), Value(*type_id), Value(0.9), Value("machine"),
           Value(),          Value(),         Value(),    Value()};
  EXPECT_TRUE(catalog->Insert(tables::kImageContentAnnotation, good).ok());
}

TEST(TvdpSchemaTest, AugmentedImageSelfReference) {
  auto catalog = MakeTvdpCatalog();
  ASSERT_TRUE(catalog.ok());
  auto original = catalog->Insert(
      tables::kImages,
      Row{Value("orig"), Value(34.0), Value(-118.0), Value(int64_t{1}),
          Value(int64_t{2}), Value("test"), Value(false), Value()});
  ASSERT_TRUE(original.ok());
  // Augmented image referencing the original: OK.
  EXPECT_TRUE(catalog
                  ->Insert(tables::kImages,
                           Row{Value("aug"), Value(34.0), Value(-118.0),
                               Value(int64_t{1}), Value(int64_t{2}),
                               Value("augmentor"), Value(true),
                               Value(*original)})
                  .ok());
  // Referencing a missing original: FK violation.
  EXPECT_FALSE(catalog
                   ->Insert(tables::kImages,
                            Row{Value("bad"), Value(34.0), Value(-118.0),
                                Value(int64_t{1}), Value(int64_t{2}),
                                Value("augmentor"), Value(true),
                                Value(int64_t{777})})
                   .ok());
}

TEST(TvdpSchemaTest, FullCatalogSerializeRoundtrip) {
  auto catalog = MakeTvdpCatalog();
  ASSERT_TRUE(catalog.ok());
  ASSERT_TRUE(catalog
                  ->Insert(tables::kImages,
                           Row{Value("u"), Value(34.0), Value(-118.0),
                               Value(int64_t{5}), Value(int64_t{6}),
                               Value("s"), Value(false), Value()})
                  .ok());
  auto restored = Catalog::Deserialize(catalog->Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->GetTable(tables::kImages)->size(), 1u);
  EXPECT_EQ(restored->TableNames().size(), 8u);
}

}  // namespace
}  // namespace tvdp::storage
