// Crash-safe online shard rebalancing: guards, equivalence, crash-at-every-
// phase recovery, and the RebalanceStress.{asan,tsan} concurrency suite.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "platform/api.h"
#include "platform/model_registry.h"
#include "platform/sharding.h"
#include "platform/tvdp.h"
#include "query/query.h"
#include "query/scatter_gather.h"

namespace tvdp::platform {
namespace {

using query::HybridQuery;
using query::ShardOutcome;

constexpr Timestamp kT0 = 1546300800;
constexpr int kCorpus = 500;

/// The PR 5 planner-suite corpus (identical ingest sequence to the sharding
/// suite, replayable into an unsharded Tvdp or a ShardManager).
template <typename P>
void BuildCorpus(P& p) {
  ASSERT_TRUE(p.RegisterClassification("scene", {"clean", "dirty"}).ok());
  for (int i = 0; i < kCorpus; ++i) {
    int row = i / 25, col = i % 25;
    ImageRecord rec;
    rec.uri = "img" + std::to_string(i);
    rec.location = geo::GeoPoint{34.00 + row * 0.004, -118.30 + col * 0.004};
    rec.captured_at = kT0 + i * 60;
    rec.keywords = {"city"};
    if (i % 5 == 0) rec.keywords.push_back("market");
    if (i % 50 == 0) rec.keywords.push_back("needle");
    auto id = p.IngestImage(rec);
    ASSERT_TRUE(id.ok()) << id.status();

    AnnotationRecord ann;
    ann.classification = "scene";
    ann.label = i % 4 == 0 ? "dirty" : "clean";
    ann.confidence = 0.5 + (i % 50) * 0.01;
    ann.machine = true;
    ASSERT_TRUE(p.AnnotateImage(*id, ann).ok());

    ml::FeatureVector feat(8, 0.0);
    feat[static_cast<size_t>(i % 8)] = 1.0;
    ASSERT_TRUE(p.StoreFeature(*id, "cnn", feat).ok());
  }
}

constexpr int kSmall = 80;

/// A small durable-friendly corpus for the crash matrix (WAL replay of the
/// full 500-image suite times 6 crash points would dominate the runtime).
template <typename P>
void BuildSmallCorpus(P& p) {
  ASSERT_TRUE(p.RegisterClassification("scene", {"clean", "dirty"}).ok());
  for (int i = 0; i < kSmall; ++i) {
    int row = i / 10, col = i % 10;
    ImageRecord rec;
    rec.uri = "img" + std::to_string(i);
    rec.location = geo::GeoPoint{34.00 + row * 0.009, -118.30 + col * 0.0095};
    rec.captured_at = kT0 + i * 60;
    rec.keywords = {"city"};
    if (i % 5 == 0) rec.keywords.push_back("market");
    auto id = p.IngestImage(rec);
    ASSERT_TRUE(id.ok()) << id.status();
    AnnotationRecord ann;
    ann.classification = "scene";
    ann.label = i % 4 == 0 ? "dirty" : "clean";
    ann.confidence = 0.5 + (i % 50) * 0.01;
    ann.machine = true;
    ASSERT_TRUE(p.AnnotateImage(*id, ann).ok());
    ml::FeatureVector feat(8, 0.0);
    feat[static_cast<size_t>(i % 8)] = 1.0;
    ASSERT_TRUE(p.StoreFeature(*id, "cnn", feat).ok());
  }
}

geo::BoundingBox CorpusRegion() {
  return geo::BoundingBox::FromCorners({34.00, -118.30}, {34.08, -118.204});
}

ShardManagerOptions GridOptions(int shards, int rows, int cols) {
  ShardManagerOptions opts;
  opts.shard_count = shards;
  opts.grid_rows = rows;
  opts.grid_cols = cols;
  opts.region = CorpusRegion();
  return opts;
}

/// The planner-suite property queries as request bodies (the byte-identity
/// check runs them through the full API parse path).
std::vector<Json> PropertyRequests() {
  std::vector<Json> out;
  {
    Json q = Json::MakeObject();
    q["bbox"] = Json(Json::Array{33.99, -118.31, 34.09, -118.25});
    q["keywords"] = Json(Json::Array{"market"});
    out.push_back(q);
  }
  {
    Json q = Json::MakeObject();
    q["classification"] = "scene";
    q["label"] = "dirty";
    q["min_confidence"] = 0.7;
    q["time_begin"] = Json(static_cast<int64_t>(kT0));
    q["time_end"] = Json(static_cast<int64_t>(kT0 + 250 * 60));
    out.push_back(q);
  }
  {
    Json q = Json::MakeObject();
    q["feature"] = Json(Json::Array{0, 0, 0, 1, 0, 0, 0, 0});
    q["feature_kind"] = "cnn";
    q["threshold"] = 0.5;
    q["keywords"] = Json(Json::Array{"market", "needle"});
    q["keyword_mode"] = "or";
    out.push_back(q);
  }
  {
    Json q = Json::MakeObject();
    q["bbox"] = Json(Json::Array{33.99, -118.31, 34.09, -118.25});
    q["time_begin"] = Json(static_cast<int64_t>(kT0));
    q["time_end"] = Json(static_cast<int64_t>(kT0 + 250 * 60));
    q["classification"] = "scene";
    q["label"] = "dirty";
    q["min_confidence"] = 0.7;
    out.push_back(q);
  }
  {
    Json q = Json::MakeObject();  // all five families
    q["bbox"] = Json(Json::Array{33.99, -118.31, 34.09, -118.25});
    q["feature"] = Json(Json::Array{0, 0, 0, 1, 0, 0, 0, 0});
    q["feature_kind"] = "cnn";
    q["threshold"] = 0.5;
    q["classification"] = "scene";
    q["label"] = "clean";
    q["min_confidence"] = 0.7;
    q["keywords"] = Json(Json::Array{"market"});
    q["time_begin"] = Json(static_cast<int64_t>(kT0));
    q["time_end"] = Json(static_cast<int64_t>(kT0 + 250 * 60));
    out.push_back(q);
  }
  {
    Json q = Json::MakeObject();  // visual top-k ranking
    q["feature"] = Json(Json::Array{0, 1, 0, 0, 0, 0, 0, 0});
    q["feature_kind"] = "cnn";
    q["k"] = 7;
    out.push_back(q);
  }
  {
    Json q = Json::MakeObject();  // limit-capped filter
    q["keywords"] = Json(Json::Array{"needle"});
    q["limit"] = 4;
    out.push_back(q);
  }
  return out;
}

std::set<std::string> UrisOf(const ShardManager& m,
                             const std::vector<query::QueryHit>& hits) {
  std::set<std::string> out;
  for (const auto& h : hits) {
    auto row = m.ImageRowJson(h.image_id);
    EXPECT_TRUE(row.ok()) << row.status();
    if (row.ok()) out.insert((*row)["uri"].AsString());
  }
  return out;
}

HybridQuery CityQuery() {
  HybridQuery q;
  query::TextualPredicate tp;
  tp.keywords = {"city"};
  q.textual = tp;
  return q;
}

/// A point inside grid cell 0 of the 2x2 corpus grid (the SW quadrant).
geo::GeoPoint CellZeroPoint() { return {34.01, -118.29}; }

// ---------------------------------------------------------------------
// Satellite: admission guards for malformed / unsafe rebalances.
// ---------------------------------------------------------------------

TEST(RebalanceGuardTest, RejectsMalformedRequests) {
  auto m = ShardManager::Create(GridOptions(2, 2, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;

  auto expect_invalid = [&](const std::vector<int>& cells, int src, int tgt) {
    auto r = mgr.RebalanceCells(cells, src, tgt);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
        << r.status();
  };
  expect_invalid({}, 0, 1);        // no cells
  expect_invalid({99}, 0, 1);      // unknown cell
  expect_invalid({-1}, 0, 1);      // negative cell
  expect_invalid({0, 0}, 0, 1);    // duplicate cell
  expect_invalid({0}, 0, 0);       // source == target
  expect_invalid({0}, -1, 1);      // shard out of range
  expect_invalid({0}, 0, 5);       // shard out of range
}

TEST(RebalanceGuardTest, RejectsWrongOwnerAndDeadEndpoints) {
  auto m = ShardManager::Create(GridOptions(2, 2, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;

  // Round-robin assignment: cell 1 belongs to shard 1, not shard 0.
  auto not_owner = mgr.RebalanceCells({1}, 0, 1);
  ASSERT_FALSE(not_owner.ok());
  EXPECT_EQ(not_owner.status().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(mgr.KillShard(1).ok());
  auto dead_target = mgr.RebalanceCells({0}, 0, 1);
  ASSERT_FALSE(dead_target.ok());
  EXPECT_EQ(dead_target.status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(mgr.RecoverShard(1).ok());

  ASSERT_TRUE(mgr.KillShard(0).ok());
  auto dead_source = mgr.RebalanceCells({0}, 0, 1);
  ASSERT_FALSE(dead_source.ok());
  EXPECT_EQ(dead_source.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RebalanceGuardTest, UnresolvedMigrationBlocksKillAndReMigration) {
  auto m = ShardManager::Create(GridOptions(2, 2, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  BuildSmallCorpus(mgr);

  // Coordinator "crashes" during the bulk copy.
  mgr.SetMigrationHook(
      [](const std::string& phase, int) { return phase != "copy"; });
  auto crashed = mgr.RebalanceCells({0}, 0, 1);
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(crashed.status().code(), StatusCode::kUnavailable);
  mgr.SetMigrationHook({});
  EXPECT_TRUE(mgr.shard_migrating(0));
  EXPECT_TRUE(mgr.shard_migrating(1));

  // A migrating shard cannot be killed by accident...
  Status kill = mgr.KillShard(0);
  ASSERT_FALSE(kill.ok());
  EXPECT_EQ(kill.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(mgr.shard_alive(0));

  // ...and a second migration touching either endpoint is refused.
  auto again = mgr.RebalanceCells({0}, 0, 1);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kFailedPrecondition);

  // Reconciliation rolls the abandoned migration back; everything unwedges.
  auto report = mgr.ReconcileBroadcasts();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ((*report)["rolled_back"].size(), 1u) << (*report).Dump();
  EXPECT_FALSE(mgr.shard_migrating(0));
  EXPECT_FALSE(mgr.shard_migrating(1));
  EXPECT_EQ(mgr.ShardForLocation(CellZeroPoint()), 0);
  EXPECT_EQ(mgr.image_count(), static_cast<size_t>(kSmall));

  auto retry = mgr.RebalanceCells({0}, 0, 1);
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(mgr.ShardForLocation(CellZeroPoint()), 1);
  EXPECT_EQ(mgr.image_count(), static_cast<size_t>(kSmall));
}

TEST(RebalanceGuardTest, ApiEndpointValidatesAndReports) {
  auto flat = Tvdp::Create();
  ASSERT_TRUE(flat.ok());
  ModelRegistry reg_flat;
  ApiService api_flat(&*flat, &reg_flat);
  std::string key = api_flat.CreateApiKey("ops");
  Json req = Json::MakeObject();
  req["cells"] = Json(Json::Array{0});
  req["source"] = 0;
  req["target"] = 1;
  auto unsharded = api_flat.HandleRequest(key, "rebalance", req);
  ASSERT_FALSE(unsharded.ok());
  EXPECT_EQ(unsharded.status().code(), StatusCode::kFailedPrecondition);

  auto m = ShardManager::Create(GridOptions(2, 2, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  BuildSmallCorpus(**m);
  ModelRegistry reg;
  ApiService api((*m).get(), &reg);
  std::string skey = api.CreateApiKey("ops");

  Json missing = Json::MakeObject();
  missing["source"] = 0;
  missing["target"] = 1;
  auto no_cells = api.HandleRequest(skey, "rebalance", missing);
  ASSERT_FALSE(no_cells.ok());
  EXPECT_EQ(no_cells.status().code(), StatusCode::kInvalidArgument);

  auto ok = api.HandleRequest(skey, "rebalance", req);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ((*ok)["source"].AsInt(), 0);
  EXPECT_EQ((*ok)["target"].AsInt(), 1);
  EXPECT_GT((*ok)["rows_copied"].AsInt(), 0);
  EXPECT_EQ((*m)->ShardForLocation(CellZeroPoint()), 1);

  // platform_stats surfaces the (now idle) migration machinery.
  auto stats = api.HandleRequest(skey, "platform_stats", Json::MakeObject());
  ASSERT_TRUE(stats.ok()) << stats.status();
  const Json& shard_stats = (*stats)["shards"];
  EXPECT_FALSE(shard_stats["migration"]["active"].AsBool());
  EXPECT_EQ(shard_stats["migration"]["phase"].AsString(), "done");
  EXPECT_EQ(shard_stats["pending_rebalance_intents"].AsInt(), 0);
  EXPECT_GT(shard_stats["relocated_rows"].AsInt(), 0);
  EXPECT_FALSE(shard_stats["shards"].AsArray()[0]["migrating"].AsBool());
}

// ---------------------------------------------------------------------
// Tentpole: query equivalence across a live migration (byte-identity).
// ---------------------------------------------------------------------

TEST(RebalanceEquivalenceTest, EnvelopesByteIdenticalAcrossRebalance) {
  auto m = ShardManager::Create(GridOptions(2, 2, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  BuildCorpus(mgr);

  ModelRegistry reg;
  ApiService api((*m).get(), &reg);
  std::string key = api.CreateApiKey("prop");

  // Relocated rows keep their original global ids, so the response bytes
  // must be identical modulo the per-shard "plan" (estimates move with the
  // rows) and "coverage" (the probe fan-out changes).
  auto strip = [](Json env) {
    if (env.Has("data")) {
      env["data"].AsObject().erase("plan");
      env["data"].AsObject().erase("coverage");
    }
    return env.Dump();
  };
  std::vector<std::string> before;
  for (const Json& request : PropertyRequests()) {
    Json env = api.HandleEnvelope(key, "search_datasets", request);
    ASSERT_EQ(env["status"].AsString(), "ok") << env.Dump();
    before.push_back(strip(env));
  }

  auto report = mgr.RebalanceCells({0}, 0, 1);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT((*report)["rows_copied"].AsInt(), 0);
  EXPECT_EQ(mgr.ShardForLocation(CellZeroPoint()), 1);
  EXPECT_EQ(mgr.image_count(), static_cast<size_t>(kCorpus));

  size_t i = 0;
  for (const Json& request : PropertyRequests()) {
    Json env = api.HandleEnvelope(key, "search_datasets", request);
    ASSERT_EQ(env["status"].AsString(), "ok") << env.Dump();
    EXPECT_TRUE(env["data"]["coverage"]["complete"].AsBool());
    EXPECT_EQ(before[i++], strip(env)) << request.Dump();
  }
}

TEST(RebalanceEquivalenceTest, RelocatedIdsKeepServingPointLookups) {
  auto unsharded = Tvdp::Create();
  ASSERT_TRUE(unsharded.ok());
  BuildCorpus(*unsharded);

  auto m = ShardManager::Create(GridOptions(2, 2, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  BuildCorpus(mgr);

  auto baseline = mgr.ExecuteQuery(CityQuery());
  ASSERT_TRUE(baseline.ok());
  const std::set<std::string> oracle = UrisOf(mgr, baseline->hits);
  ASSERT_EQ(oracle.size(), static_cast<size_t>(kCorpus));

  ASSERT_TRUE(mgr.RebalanceCells({0}, 0, 1).ok());

  auto after = mgr.ExecuteQuery(CityQuery());
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_TRUE(after->coverage.complete());
  EXPECT_EQ(UrisOf(mgr, after->hits), oracle);
  // Same ids, same order as before the migration.
  ASSERT_EQ(after->hits.size(), baseline->hits.size());
  for (size_t i = 0; i < after->hits.size(); ++i) {
    EXPECT_EQ(after->hits[i].image_id, baseline->hits[i].image_id);
  }

  // A relocated row keeps serving every point-access surface through its
  // original global id.
  bool checked = false;
  for (const auto& h : baseline->hits) {
    auto row = mgr.ImageRowJson(h.image_id);
    ASSERT_TRUE(row.ok()) << row.status();
    geo::GeoPoint loc{(*row)["lat"].AsDouble(), (*row)["lon"].AsDouble()};
    if (mgr.ShardForLocation(loc) != 1 || h.image_id % 2 != 0) continue;
    // Routed by id parity to shard 0 originally, now living on shard 1.
    auto feat = mgr.GetFeature(h.image_id, "cnn");
    ASSERT_TRUE(feat.ok()) << feat.status();
    EXPECT_EQ(feat->size(), 8u);
    AnnotationRecord ann;
    ann.classification = "scene";
    ann.label = "dirty";
    ann.confidence = 0.9;
    auto ann_id = mgr.AnnotateImage(h.image_id, ann);
    ASSERT_TRUE(ann_id.ok()) << ann_id.status();
    checked = true;
    break;
  }
  EXPECT_TRUE(checked) << "no relocated row found to probe";
}

TEST(RebalanceEquivalenceTest, DurableRebalanceSurvivesReopen) {
  std::string dir = ::testing::TempDir() + "tvdp_rebdurXXXXXX";
  ASSERT_NE(mkdtemp(dir.data()), nullptr);
  ShardManagerOptions opts = GridOptions(2, 2, 2);
  opts.base_path = dir;

  std::set<std::string> oracle;
  std::vector<int64_t> ids_before;
  {
    auto m = ShardManager::Create(opts);
    ASSERT_TRUE(m.ok()) << m.status();
    BuildSmallCorpus(**m);
    auto baseline = (*m)->ExecuteQuery(CityQuery());
    ASSERT_TRUE(baseline.ok());
    oracle = UrisOf(**m, baseline->hits);
    auto report = (*m)->RebalanceCells({0}, 0, 1);
    ASSERT_TRUE(report.ok()) << report.status();
    auto after = (*m)->ExecuteQuery(CityQuery());
    ASSERT_TRUE(after.ok());
    for (const auto& h : after->hits) ids_before.push_back(h.image_id);
  }

  // Reopen: the shard map, relocations, and moved rows must all survive.
  auto m = ShardManager::Create(opts);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ((*m)->ShardForLocation(CellZeroPoint()), 1);
  EXPECT_EQ((*m)->pending_broadcasts(0), 0u);
  EXPECT_EQ((*m)->pending_broadcasts(1), 0u);
  EXPECT_EQ((*m)->image_count(), static_cast<size_t>(kSmall));
  auto r = (*m)->ExecuteQuery(CityQuery());
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->coverage.complete());
  EXPECT_EQ(UrisOf(**m, r->hits), oracle);
  ASSERT_EQ(r->hits.size(), ids_before.size());
  for (size_t i = 0; i < r->hits.size(); ++i) {
    EXPECT_EQ(r->hits[i].image_id, ids_before[i]);
  }
}

// ---------------------------------------------------------------------
// Tentpole: crash at every phase boundary recovers to the oracle.
// ---------------------------------------------------------------------

struct CrashCase {
  const char* phase;
  int expected_owner;  // of cell 0 after recovery
};

class RebalanceRecoveryTest : public ::testing::TestWithParam<CrashCase> {};

TEST_P(RebalanceRecoveryTest, ProcessCrashAtPhaseBoundaryRecovers) {
  const CrashCase& c = GetParam();
  std::string dir = ::testing::TempDir() + "tvdp_rebcrashXXXXXX";
  ASSERT_NE(mkdtemp(dir.data()), nullptr);
  ShardManagerOptions opts = GridOptions(2, 2, 2);
  opts.base_path = dir;

  auto flat = Tvdp::Create();
  ASSERT_TRUE(flat.ok());
  BuildSmallCorpus(*flat);
  std::vector<int64_t> oracle_local;
  {
    auto r = flat->ExecuteQuery(CityQuery());
    ASSERT_TRUE(r.ok());
    for (const auto& h : *r) oracle_local.push_back(h.image_id);
  }
  ASSERT_EQ(oracle_local.size(), static_cast<size_t>(kSmall));

  {
    auto m = ShardManager::Create(opts);
    ASSERT_TRUE(m.ok()) << m.status();
    BuildSmallCorpus(**m);
    const std::string crash_phase = c.phase;
    // The intent phase needs one durable intent to be interesting, so the
    // "crash" lands on the second endpoint; every other phase vetoes its
    // first visit.
    (*m)->SetMigrationHook([crash_phase](const std::string& ph, int shard) {
      if (ph != crash_phase) return true;
      if (crash_phase == "intent") return shard != 1;
      return false;
    });
    auto r = (*m)->RebalanceCells({0}, 0, 1);
    ASSERT_FALSE(r.ok()) << "phase " << c.phase;
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable) << r.status();
    // The process now "dies" with the migration unresolved on disk.
  }

  // A fresh fleet over the same stores must resolve the migration during
  // Create from durable evidence alone and serve exact results.
  auto m = ShardManager::Create(opts);
  ASSERT_TRUE(m.ok()) << "phase " << c.phase << ": " << m.status();
  ShardManager& mgr = **m;
  EXPECT_EQ(mgr.pending_broadcasts(0), 0u) << c.phase;
  EXPECT_EQ(mgr.pending_broadcasts(1), 0u) << c.phase;
  EXPECT_FALSE(mgr.shard_migrating(0)) << c.phase;
  EXPECT_FALSE(mgr.shard_migrating(1)) << c.phase;
  EXPECT_EQ(mgr.ShardForLocation(CellZeroPoint()), c.expected_owner)
      << c.phase;
  EXPECT_EQ(mgr.image_count(), static_cast<size_t>(kSmall)) << c.phase;

  auto r = mgr.ExecuteQuery(CityQuery());
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->coverage.complete()) << r->coverage.ToJson().Dump();
  std::set<std::string> uris = UrisOf(mgr, r->hits);
  EXPECT_EQ(uris.size(), static_cast<size_t>(kSmall)) << c.phase;

  // The fleet is not wedged: the (re)migration completes normally.
  if (c.expected_owner == 0) {
    auto redo = mgr.RebalanceCells({0}, 0, 1);
    ASSERT_TRUE(redo.ok()) << c.phase << ": " << redo.status();
    EXPECT_EQ(mgr.ShardForLocation(CellZeroPoint()), 1);
    auto post = mgr.ExecuteQuery(CityQuery());
    ASSERT_TRUE(post.ok());
    EXPECT_EQ(UrisOf(mgr, post->hits).size(), static_cast<size_t>(kSmall));
    EXPECT_EQ(mgr.image_count(), static_cast<size_t>(kSmall));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPhases, RebalanceRecoveryTest,
    ::testing::Values(CrashCase{"intent", 0}, CrashCase{"copy", 0},
                      CrashCase{"catchup", 0}, CrashCase{"cutover", 0},
                      CrashCase{"commit", 1}, CrashCase{"gc", 1}),
    [](const ::testing::TestParamInfo<CrashCase>& info) {
      return std::string(info.param.phase);
    });

TEST(RebalanceRecoverySuiteTest, SameProcessReconcileRollsBackAbandonedCopy) {
  auto m = ShardManager::Create(GridOptions(2, 2, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  BuildSmallCorpus(mgr);

  mgr.SetMigrationHook(
      [](const std::string& ph, int) { return ph != "catchup"; });
  ASSERT_FALSE(mgr.RebalanceCells({0}, 0, 1).ok());
  mgr.SetMigrationHook({});

  // Dual-serve keeps the abandoned state exact while unresolved.
  auto mid = mgr.ExecuteQuery(CityQuery());
  ASSERT_TRUE(mid.ok());
  EXPECT_TRUE(mid->coverage.complete());
  EXPECT_EQ(UrisOf(mgr, mid->hits).size(), static_cast<size_t>(kSmall));
  bool saw_migrating = false;
  for (const auto& rep : mid->coverage.reports) {
    if (rep.outcome == ShardOutcome::kMigrating) saw_migrating = true;
  }
  EXPECT_TRUE(saw_migrating);

  auto report = mgr.ReconcileBroadcasts();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ((*report)["rolled_back"].size(), 1u) << (*report).Dump();
  EXPECT_EQ(mgr.ShardForLocation(CellZeroPoint()), 0);
  EXPECT_EQ(mgr.image_count(), static_cast<size_t>(kSmall));
  auto r = mgr.ExecuteQuery(CityQuery());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(UrisOf(mgr, r->hits).size(), static_cast<size_t>(kSmall));
}

TEST(RebalanceRecoverySuiteTest, EndpointDeathMidCopyAbandonsThenRollsBack) {
  std::string dir = ::testing::TempDir() + "tvdp_rebdeadXXXXXX";
  ASSERT_NE(mkdtemp(dir.data()), nullptr);
  ShardManagerOptions opts = GridOptions(2, 2, 2);
  opts.base_path = dir;
  auto m = ShardManager::Create(opts);
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  BuildSmallCorpus(mgr);

  // The source shard dies mid-migration (drop_state bypasses the guard;
  // the WAL survives). The migration must abandon, not write to a corpse.
  mgr.SetMigrationHook([&mgr](const std::string& ph, int) {
    if (ph == "catchup") {
      EXPECT_TRUE(mgr.KillShard(0, /*drop_state=*/true).ok());
    }
    return true;
  });
  auto r = mgr.RebalanceCells({0}, 0, 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable) << r.status();
  mgr.SetMigrationHook({});

  // Recover the endpoint; reconciliation now has both sides and rolls the
  // un-committed migration back.
  ASSERT_TRUE(mgr.RecoverShard(0).ok());
  auto report = mgr.ReconcileBroadcasts();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(mgr.shard_migrating(0));
  EXPECT_FALSE(mgr.shard_migrating(1));
  EXPECT_EQ(mgr.ShardForLocation(CellZeroPoint()), 0);
  EXPECT_EQ(mgr.image_count(), static_cast<size_t>(kSmall));

  // And a clean retry completes.
  auto retry = mgr.RebalanceCells({0}, 0, 1);
  ASSERT_TRUE(retry.ok()) << retry.status();
  auto post = mgr.ExecuteQuery(CityQuery());
  ASSERT_TRUE(post.ok());
  EXPECT_TRUE(post->coverage.complete());
  EXPECT_EQ(UrisOf(mgr, post->hits).size(), static_cast<size_t>(kSmall));
}

// ---------------------------------------------------------------------
// Stress: concurrent queries + ingest vs. ping-pong rebalances vs. a
// kill/recover churn loop (the tier-1 RebalanceStress.{asan,tsan} targets
// run exactly this suite).
// ---------------------------------------------------------------------

TEST(RebalanceStressTest, QueriesStayExactWhileCellsMigrateUnderChurn) {
  ShardManagerOptions opts = GridOptions(3, 2, 3);
  opts.breakers = false;  // kill/recover churn without cooldown gating
  auto m = ShardManager::Create(opts);
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  BuildCorpus(mgr);

  std::atomic<bool> done{false};
  std::atomic<int> ingested{0};
  std::atomic<int> query_errors{0};
  std::vector<std::thread> threads;

  // Query threads: results may be partial while shard 2 is down, but a
  // response must never contain a duplicate id (the dual-serve merge
  // dedups) and must never fail outright while shards 0/1 are healthy.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      HybridQuery q = CityQuery();
      while (!done.load()) {
        auto r = mgr.ExecuteQuery(q);
        if (!r.ok()) {
          ++query_errors;
          continue;
        }
        std::set<int64_t> seen;
        for (const auto& h : r->hits) {
          EXPECT_TRUE(seen.insert(h.image_id).second)
              << "duplicate id " << h.image_id;
        }
      }
    });
  }
  // Kill/recover churn on shard 2 (never a migration endpoint — killing an
  // endpoint is guard-tested separately).
  threads.emplace_back([&] {
    while (!done.load()) {
      (void)mgr.KillShard(2);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      (void)mgr.RecoverShard(2);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  // Live ingest into the moving cell, exercising catch-up and the write
  // gate across cutovers. Bounded: every row ingested into the moving
  // cell makes every subsequent copy pass scan more rows, and under the
  // sanitizers that feedback loop (slower passes -> longer test -> more
  // rows -> slower passes) diverges if left open-ended.
  threads.emplace_back([&] {
    int i = 0;
    while (!done.load() && ingested.load() < 400) {
      ImageRecord rec;
      rec.uri = "live" + std::to_string(i++);
      rec.location = CellZeroPoint();
      rec.keywords = {"city", "live"};
      if (mgr.IngestImage(rec).ok()) ++ingested;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Ping-pong cell 0 between shards 0 and 1 while everything churns.
  int migrations = 0;
  for (int round = 0; round < 6; ++round) {
    const int owner = mgr.ShardForLocation(CellZeroPoint());
    ASSERT_TRUE(owner == 0 || owner == 1);
    auto r = mgr.RebalanceCells({0}, owner, 1 - owner);
    ASSERT_TRUE(r.ok()) << "round " << round << ": " << r.status();
    ++migrations;
  }
  done = true;
  for (auto& t : threads) t.join();
  EXPECT_EQ(migrations, 6);
  EXPECT_EQ(query_errors.load(), 0);

  // Quiesce: recover the churned shard and verify nothing was lost or
  // double-counted across six live migrations.
  if (!mgr.shard_alive(2)) {
    ASSERT_TRUE(mgr.RecoverShard(2).ok());
  }
  EXPECT_EQ(mgr.image_count(),
            static_cast<size_t>(kCorpus) + ingested.load());

  auto final_city = mgr.ExecuteQuery(CityQuery());
  ASSERT_TRUE(final_city.ok()) << final_city.status();
  EXPECT_TRUE(final_city->coverage.complete())
      << final_city->coverage.ToJson().Dump();
  EXPECT_EQ(final_city->hits.size(),
            static_cast<size_t>(kCorpus) + ingested.load());

  HybridQuery live;
  query::TextualPredicate tp;
  tp.keywords = {"live"};
  live.textual = tp;
  auto final_live = mgr.ExecuteQuery(live);
  ASSERT_TRUE(final_live.ok());
  EXPECT_TRUE(final_live->coverage.complete());
  EXPECT_EQ(final_live->hits.size(), static_cast<size_t>(ingested.load()));
}

}  // namespace
}  // namespace tvdp::platform
