#include <gtest/gtest.h>

#include <set>

#include "ml/linear_svm.h"
#include "platform/api.h"
#include "platform/dataset_gen.h"
#include "platform/model_registry.h"
#include "platform/tvdp.h"

namespace tvdp::platform {
namespace {

ImageRecord SimpleRecord(double lat, double lon, Timestamp t = 1546300800) {
  ImageRecord rec;
  rec.uri = "test://img";
  rec.location = geo::GeoPoint{lat, lon};
  rec.captured_at = t;
  return rec;
}

// ---------- Tvdp facade ----------

TEST(TvdpTest, IngestAndCount) {
  auto tvdp = Tvdp::Create();
  ASSERT_TRUE(tvdp.ok());
  auto id = tvdp->IngestImage(SimpleRecord(34.05, -118.25));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 1);
  EXPECT_EQ(tvdp->image_count(), 1u);
  EXPECT_FALSE(tvdp->IngestImage(SimpleRecord(999, 0)).ok());
}

TEST(TvdpTest, IngestWithFovPopulatesSceneLocation) {
  auto tvdp = Tvdp::Create();
  ASSERT_TRUE(tvdp.ok());
  ImageRecord rec = SimpleRecord(34.05, -118.25);
  rec.fov = *geo::FieldOfView::Make(rec.location, 90, 60, 100);
  auto id = tvdp->IngestImage(rec);
  ASSERT_TRUE(id.ok());
  const storage::Table* scene =
      tvdp->catalog().GetTable(storage::tables::kImageSceneLocation);
  auto rows = scene->FindBy("image_id", storage::Value(*id));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(TvdpTest, RegisterClassificationIdempotent) {
  auto tvdp = Tvdp::Create();
  ASSERT_TRUE(tvdp.ok());
  auto id1 = tvdp->RegisterClassification("cleanliness", {"a", "b"});
  auto id2 = tvdp->RegisterClassification("cleanliness", {"b", "c"});
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id1, *id2);
  EXPECT_FALSE(tvdp->RegisterClassification("", {"x"}).ok());
  EXPECT_FALSE(tvdp->RegisterClassification("x", {}).ok());
}

TEST(TvdpTest, AnnotateAndGetLabel) {
  auto tvdp = Tvdp::Create();
  ASSERT_TRUE(tvdp.ok());
  auto id = tvdp->IngestImage(SimpleRecord(34.05, -118.25));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(tvdp->RegisterClassification("cleanliness",
                                           {"clean", "encampment"})
                  .ok());
  AnnotationRecord low;
  low.classification = "cleanliness";
  low.label = "clean";
  low.confidence = 0.4;
  ASSERT_TRUE(tvdp->AnnotateImage(*id, low).ok());
  AnnotationRecord high;
  high.classification = "cleanliness";
  high.label = "encampment";
  high.confidence = 0.9;
  high.machine = true;
  ASSERT_TRUE(tvdp->AnnotateImage(*id, high).ok());
  // Highest-confidence annotation wins.
  auto label = tvdp->GetLabel(*id, "cleanliness");
  ASSERT_TRUE(label.ok());
  EXPECT_EQ(*label, "encampment");

  AnnotationRecord bad;
  bad.classification = "unknown_task";
  bad.label = "x";
  EXPECT_FALSE(tvdp->AnnotateImage(*id, bad).ok());
  bad.classification = "cleanliness";
  bad.label = "not_a_label";
  EXPECT_FALSE(tvdp->AnnotateImage(*id, bad).ok());
  bad.label = "clean";
  bad.confidence = 1.5;
  EXPECT_FALSE(tvdp->AnnotateImage(*id, bad).ok());
}

TEST(TvdpTest, StoreAndGetFeature) {
  auto tvdp = Tvdp::Create();
  ASSERT_TRUE(tvdp.ok());
  auto id = tvdp->IngestImage(SimpleRecord(34.05, -118.25));
  ASSERT_TRUE(id.ok());
  ml::FeatureVector f{1, 2, 3};
  ASSERT_TRUE(tvdp->StoreFeature(*id, "cnn", f).ok());
  auto back = tvdp->GetFeature(*id, "cnn");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, f);
  EXPECT_FALSE(tvdp->GetFeature(*id, "sift_bow").ok());
  EXPECT_FALSE(tvdp->StoreFeature(*id, "cnn", {}).ok());
}

TEST(TvdpTest, TranslationalLocationsWithLabel) {
  auto tvdp = Tvdp::Create();
  ASSERT_TRUE(tvdp.ok());
  ASSERT_TRUE(tvdp->RegisterClassification("cleanliness",
                                           {"clean", "encampment"})
                  .ok());
  for (int i = 0; i < 10; ++i) {
    auto id = tvdp->IngestImage(SimpleRecord(34.0 + i * 0.01, -118.25));
    ASSERT_TRUE(id.ok());
    AnnotationRecord ann;
    ann.classification = "cleanliness";
    ann.label = i < 3 ? "encampment" : "clean";
    ann.confidence = 0.9;
    ASSERT_TRUE(tvdp->AnnotateImage(*id, ann).ok());
  }
  auto tents = tvdp->LocationsWithLabel("cleanliness", "encampment", 0.5);
  ASSERT_TRUE(tents.ok());
  EXPECT_EQ(tents->size(), 3u);
}

TEST(TvdpTest, SaveToFileRoundtripsThroughCatalog) {
  std::string path = ::testing::TempDir() + "/tvdp_platform_test.bin";
  auto tvdp = Tvdp::Create();
  ASSERT_TRUE(tvdp.ok());
  ASSERT_TRUE(tvdp->IngestImage(SimpleRecord(34.05, -118.25)).ok());
  ASSERT_TRUE(tvdp->SaveToFile(path).ok());
  auto loaded = storage::Catalog::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->GetTable(storage::tables::kImages)->size(), 1u);
  std::remove(path.c_str());
}

// ---------- Dataset generator ----------

TEST(DatasetGenTest, GeneratesRequestedCountWithValidMetadata) {
  DatasetConfig config;
  config.count = 50;
  config.scene.width = 32;
  config.scene.height = 32;
  auto data = GenerateStreetDataset(config);
  ASSERT_EQ(data.size(), 50u);
  for (const auto& gi : data) {
    EXPECT_FALSE(gi.pixels.empty());
    EXPECT_TRUE(geo::IsValid(gi.record.location));
    EXPECT_TRUE(gi.record.fov.has_value());
    EXPECT_GE(gi.record.captured_at, config.start_time);
    EXPECT_GT(gi.record.uploaded_at, gi.record.captured_at);
    EXPECT_FALSE(gi.record.keywords.empty());
    EXPECT_LT(static_cast<int>(gi.label), image::kNumCleanlinessClasses);
  }
}

TEST(DatasetGenTest, DeterministicForSeed) {
  DatasetConfig config;
  config.count = 10;
  config.scene.width = 24;
  config.scene.height = 24;
  auto a = GenerateStreetDataset(config);
  auto b = GenerateStreetDataset(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pixels, b[i].pixels);
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].record.location, b[i].record.location);
  }
}

TEST(DatasetGenTest, ClassWeightsRespected) {
  DatasetConfig config;
  config.count = 300;
  config.scene.width = 16;
  config.scene.height = 16;
  config.class_weights = {1, 0, 0, 1, 0};  // only clean + encampment
  auto data = GenerateStreetDataset(config);
  int clean = 0, encampment = 0;
  for (const auto& gi : data) {
    EXPECT_TRUE(gi.label == image::SceneClass::kClean ||
                gi.label == image::SceneClass::kEncampment);
    (gi.label == image::SceneClass::kClean ? clean : encampment)++;
  }
  EXPECT_GT(clean, 100);
  EXPECT_GT(encampment, 100);
}

TEST(DatasetGenTest, GraffitiOnlyWhenEnabled) {
  DatasetConfig config;
  config.count = 200;
  config.scene.width = 16;
  config.scene.height = 16;
  config.include_graffiti = true;
  auto data = GenerateStreetDataset(config);
  bool saw_graffiti = false;
  for (const auto& gi : data) {
    if (gi.label == image::SceneClass::kGraffiti) saw_graffiti = true;
  }
  EXPECT_TRUE(saw_graffiti);
}

TEST(DatasetGenTest, HotspotsClusterProblemClasses) {
  DatasetConfig config;
  config.count = 400;
  config.scene.width = 16;
  config.scene.height = 16;
  config.class_weights = {1, 0, 0, 1, 0};
  config.hotspots_per_class = 2;
  auto data = GenerateStreetDataset(config);
  // Mean pairwise distance of encampment images should be smaller than of
  // clean images (which are uniform over the street grid).
  auto mean_pairwise = [&](image::SceneClass cls) {
    std::vector<geo::GeoPoint> pts;
    for (const auto& gi : data) {
      if (gi.label == cls) pts.push_back(gi.record.location);
    }
    double total = 0;
    int count = 0;
    for (size_t i = 0; i < pts.size(); i += 3) {
      for (size_t j = i + 3; j < pts.size(); j += 3) {
        total += geo::HaversineMeters(pts[i], pts[j]);
        ++count;
      }
    }
    return count ? total / count : 0.0;
  };
  EXPECT_LT(mean_pairwise(image::SceneClass::kEncampment),
            mean_pairwise(image::SceneClass::kClean));
}

TEST(DatasetGenTest, EmptyConfigYieldsNothing) {
  DatasetConfig config;
  config.count = 0;
  EXPECT_TRUE(GenerateStreetDataset(config).empty());
}

// ---------- ModelRegistry ----------

std::unique_ptr<ml::Classifier> TrainToyModel(int num_classes = 2) {
  ml::Dataset data;
  Rng rng(7);
  for (int i = 0; i < 60; ++i) {
    int c = i % num_classes;
    ml::FeatureVector x(3);
    for (size_t d = 0; d < 3; ++d) {
      x[d] = (static_cast<int>(d) == c ? 3.0 : 0.0) + rng.Normal(0, 0.4);
    }
    data.Add(std::move(x), c).ok();
  }
  auto model = std::make_unique<ml::LinearSvmClassifier>();
  EXPECT_TRUE(model->Train(data).ok());
  return model;
}

ModelSpec ToySpec(const std::string& name = "toy") {
  ModelSpec spec;
  spec.name = name;
  spec.feature_kind = "cnn";
  spec.classification = "cleanliness";
  spec.labels = {"clean", "encampment"};
  spec.owner = "usc";
  return spec;
}

TEST(ModelRegistryTest, RegisterAndPredict) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register(ToySpec(), TrainToyModel()).ok());
  EXPECT_TRUE(registry.Has("toy"));
  auto label = registry.Predict("toy", {3.0, 0.0, 0.0});
  ASSERT_TRUE(label.ok());
  EXPECT_EQ(*label, "clean");
  auto with_conf = registry.PredictWithConfidence("toy", {0.0, 3.0, 0.0});
  ASSERT_TRUE(with_conf.ok());
  EXPECT_EQ(with_conf->first, "encampment");
  EXPECT_GT(with_conf->second, 0.3);
  EXPECT_EQ(registry.List(), std::vector<std::string>{"toy"});
}

TEST(ModelRegistryTest, RegistrationValidation) {
  ModelRegistry registry;
  EXPECT_FALSE(registry.Register(ToySpec(""), TrainToyModel()).ok());
  EXPECT_FALSE(registry.Register(ToySpec(), nullptr).ok());
  auto untrained = std::make_unique<ml::LinearSvmClassifier>();
  EXPECT_FALSE(registry.Register(ToySpec(), std::move(untrained)).ok());
  ModelSpec wrong_labels = ToySpec();
  wrong_labels.labels = {"only_one"};
  EXPECT_FALSE(registry.Register(wrong_labels, TrainToyModel()).ok());
  ASSERT_TRUE(registry.Register(ToySpec(), TrainToyModel()).ok());
  EXPECT_FALSE(registry.Register(ToySpec(), TrainToyModel()).ok());  // dup
  EXPECT_FALSE(registry.Predict("ghost", {1, 2, 3}).ok());
}

TEST(ModelRegistryTest, DownloadContainsSpecAndWeights) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register(ToySpec(), TrainToyModel()).ok());
  auto payload = registry.Download("toy");
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ((*payload)["name"].AsString(), "toy");
  EXPECT_EQ((*payload)["model"]["type"].AsString(), "svm");
  EXPECT_EQ((*payload)["labels"].size(), 2u);
  // Downloaded payload restores to an equivalent model.
  auto restored = ml::LinearSvmClassifier::FromJson((*payload)["model"]);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->Predict({3.0, 0.0, 0.0}), 0);
}

// ---------- ApiService ----------

class ApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = Tvdp::Create();
    ASSERT_TRUE(t.ok());
    tvdp_ = std::make_unique<Tvdp>(std::move(*t));
    ASSERT_TRUE(tvdp_->RegisterClassification("cleanliness",
                                              {"clean", "encampment"})
                    .ok());
    registry_ = std::make_unique<ModelRegistry>();
    ModelSpec spec = ToySpec("shared_svm");
    spec.classification = "cleanliness";
    ASSERT_TRUE(registry_->Register(spec, TrainToyModel()).ok());
    api_ = std::make_unique<ApiService>(tvdp_.get(), registry_.get());
    key_ = api_->CreateApiKey("lasan");
  }

  Json AddImage(double lat, double lon) {
    Json req = Json::MakeObject();
    req["lat"] = lat;
    req["lon"] = lon;
    req["uri"] = "api://img";
    req["captured_at"] = 1546300800;
    Json keywords = Json::MakeArray();
    keywords.Append("street");
    req["keywords"] = std::move(keywords);
    Json features = Json::MakeObject();
    Json cnn = Json::MakeArray();
    cnn.Append(3.0);
    cnn.Append(0.0);
    cnn.Append(0.0);
    features["cnn"] = std::move(cnn);
    req["features"] = std::move(features);
    auto resp = api_->HandleRequest(key_, "add_data", req);
    EXPECT_TRUE(resp.ok()) << resp.status();
    return resp.ok() ? *resp : Json();
  }

  std::unique_ptr<Tvdp> tvdp_;
  std::unique_ptr<ModelRegistry> registry_;
  std::unique_ptr<ApiService> api_;
  std::string key_;
};

TEST_F(ApiTest, KeyManagement) {
  auto owner = api_->KeyOwner(key_);
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(*owner, "lasan");
  EXPECT_FALSE(api_->KeyOwner("bogus").ok());
  auto resp = api_->HandleRequest("bogus", "add_data", Json::MakeObject());
  EXPECT_EQ(resp.status().code(), StatusCode::kPermissionDenied);
  ASSERT_TRUE(api_->RevokeApiKey(key_).ok());
  EXPECT_FALSE(api_->RevokeApiKey(key_).ok());
  EXPECT_FALSE(
      api_->HandleRequest(key_, "add_data", Json::MakeObject()).ok());
}

TEST_F(ApiTest, AddDataAndSearch) {
  Json added = AddImage(34.05, -118.25);
  EXPECT_GT(added["image_id"].AsInt(), 0);
  AddImage(34.06, -118.26);

  Json search = Json::MakeObject();
  Json bbox = Json::MakeArray();
  bbox.Append(34.0);
  bbox.Append(-118.3);
  bbox.Append(34.1);
  bbox.Append(-118.2);
  search["bbox"] = std::move(bbox);
  auto resp = api_->HandleRequest(key_, "search_datasets", search);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ((*resp)["count"].AsInt(), 2);
}

TEST_F(ApiTest, SearchEnvelopeCarriesExecutedPlan) {
  AddImage(34.05, -118.25);
  AddImage(34.06, -118.26);
  Json search = Json::MakeObject();
  Json bbox = Json::MakeArray();
  bbox.Append(34.0);
  bbox.Append(-118.3);
  bbox.Append(34.1);
  bbox.Append(-118.2);
  search["bbox"] = std::move(bbox);
  auto resp = api_->HandleRequest(key_, "search_datasets", search);
  ASSERT_TRUE(resp.ok()) << resp.status();
  const Json& plan = (*resp)["plan"];
  EXPECT_EQ(plan["seed"].AsString(), "spatial");
  EXPECT_TRUE(plan.Has("operators"));
  EXPECT_TRUE(plan.Has("conjuncts"));
  // Executed plans carry the legacy one-line summary.
  EXPECT_NE(plan["summary"].AsString().find("seed=spatial(2)"),
            std::string::npos)
      << plan["summary"].AsString();
}

TEST_F(ApiTest, ExplainQueryIsDeterministicAndRunsNothing) {
  AddImage(34.05, -118.25);
  Json req = Json::MakeObject();
  Json bbox = Json::MakeArray();
  bbox.Append(34.0);
  bbox.Append(-118.3);
  bbox.Append(34.1);
  bbox.Append(-118.2);
  req["bbox"] = std::move(bbox);
  Json kws = Json::MakeArray();
  kws.Append(std::string("street"));
  req["keywords"] = std::move(kws);
  auto a = api_->HandleRequest(key_, "explain_query", req);
  ASSERT_TRUE(a.ok()) << a.status();
  // Interleave a real search: the explain output must not change.
  ASSERT_TRUE(api_->HandleRequest(key_, "search_datasets", req).ok());
  auto b = api_->HandleRequest(key_, "explain_query", req);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)["plan"].Dump(), (*b)["plan"].Dump());
  // Explain-only plans have no execution artifacts.
  EXPECT_FALSE((*a)["plan"].Has("summary"));
  EXPECT_FALSE((*a).Has("image_ids"));
  // Malformed bodies fail identically to search_datasets.
  Json bad = Json::MakeObject();
  Json empty_kw = Json::MakeArray();
  empty_kw.Append(std::string(""));
  bad["keywords"] = std::move(empty_kw);
  EXPECT_EQ(api_->HandleRequest(key_, "explain_query", bad).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      api_->HandleRequest(key_, "search_datasets", bad).status().code(),
      StatusCode::kInvalidArgument);
}

TEST_F(ApiTest, DownloadDatasets) {
  Json added = AddImage(34.05, -118.25);
  Json req = Json::MakeObject();
  Json ids = Json::MakeArray();
  ids.Append(added["image_id"]);
  req["image_ids"] = std::move(ids);
  auto resp = api_->HandleRequest(key_, "download_datasets", req);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ((*resp)["rows"].size(), 1u);
  EXPECT_EQ((*resp)["rows"].AsArray()[0]["uri"].AsString(), "api://img");
}

TEST_F(ApiTest, GetVisualFeatures) {
  Json added = AddImage(34.05, -118.25);
  Json req = Json::MakeObject();
  req["image_id"] = added["image_id"];
  req["kind"] = "cnn";
  auto resp = api_->HandleRequest(key_, "get_visual_features", req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ((*resp)["dim"].AsInt(), 3);
  req["kind"] = "sift_bow";
  EXPECT_FALSE(api_->HandleRequest(key_, "get_visual_features", req).ok());
}

TEST_F(ApiTest, UseModelWithAnnotationWriteback) {
  Json added = AddImage(34.05, -118.25);
  Json req = Json::MakeObject();
  req["model"] = "shared_svm";
  req["image_id"] = added["image_id"];
  req["annotate"] = true;
  auto resp = api_->HandleRequest(key_, "use_model", req);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ((*resp)["label"].AsString(), "clean");
  EXPECT_GT((*resp)["annotation_id"].AsInt(), 0);
  // The annotation is now translational knowledge: readable via GetLabel.
  auto label = tvdp_->GetLabel(added["image_id"].AsInt(), "cleanliness");
  ASSERT_TRUE(label.ok());
  EXPECT_EQ(*label, "clean");
}

TEST_F(ApiTest, DownloadAndReRegisterModel) {
  Json req = Json::MakeObject();
  req["model"] = "shared_svm";
  auto download = api_->HandleRequest(key_, "download_model", req);
  ASSERT_TRUE(download.ok());

  Json reg = Json::MakeObject();
  Json spec = Json::MakeObject();
  spec["name"] = "edge_copy";
  spec["feature_kind"] = "cnn";
  spec["classification"] = "cleanliness";
  Json labels = Json::MakeArray();
  labels.Append("clean");
  labels.Append("encampment");
  spec["labels"] = std::move(labels);
  reg["spec"] = std::move(spec);
  reg["model"] = (*download)["model"];
  auto resp = api_->HandleRequest(key_, "register_model", reg);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_TRUE(registry_->Has("edge_copy"));
}

TEST_F(ApiTest, ErrorEnvelopes) {
  Json env = api_->HandleEnvelope(key_, "nonexistent", Json::MakeObject());
  EXPECT_EQ(env["status"].AsString(), "error");
  EXPECT_EQ(env["code"].AsString(), "NotFound");
  Json ok_env = api_->HandleEnvelope(key_, "search_datasets",
                                     Json::MakeObject());
  // Search with no predicates is invalid -> error envelope, not a crash.
  EXPECT_EQ(ok_env["status"].AsString(), "error");
}

TEST_F(ApiTest, EnvelopeNumericCodesAndPrecedence) {
  // A bad key on an unknown endpoint is an authentication failure, not a
  // routing one: PermissionDenied must win regardless of which check a
  // naive numeric-code comparison would order first.
  Json env = api_->HandleEnvelope("tvdp-bogus", "nonexistent",
                                  Json::MakeObject());
  EXPECT_EQ(env["code"].AsString(), "PermissionDenied");
  EXPECT_EQ(env["error_code"].AsInt(),
            static_cast<int>(StatusCode::kPermissionDenied));
  EXPECT_FALSE(env["retryable"].AsBool());

  // Bad key on a VALID endpoint: still PermissionDenied.
  env = api_->HandleEnvelope("tvdp-bogus", "search_datasets",
                             Json::MakeObject());
  EXPECT_EQ(env["code"].AsString(), "PermissionDenied");

  // Good key, unknown endpoint: NotFound, with its numeric code.
  env = api_->HandleEnvelope(key_, "nonexistent", Json::MakeObject());
  EXPECT_EQ(env["code"].AsString(), "NotFound");
  EXPECT_EQ(env["error_code"].AsInt(),
            static_cast<int>(StatusCode::kNotFound));
  EXPECT_FALSE(env["retryable"].AsBool());
}

TEST_F(ApiTest, EndpointListStable) {
  EXPECT_EQ(api_->Endpoints().size(), 12u);
}

TEST_F(ApiTest, ReconcileRequiresShardedDeployment) {
  auto r = api_->HandleRequest(key_, "reconcile", Json::MakeObject());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ApiTest, MalformedRequestsRejected) {
  EXPECT_FALSE(
      api_->HandleRequest(key_, "add_data", Json::MakeObject()).ok());
  EXPECT_FALSE(
      api_->HandleRequest(key_, "download_datasets", Json::MakeObject()).ok());
  EXPECT_FALSE(
      api_->HandleRequest(key_, "use_model", Json::MakeObject()).ok());
  Json bad_model = Json::MakeObject();
  bad_model["model"] = "ghost";
  bad_model["feature"] = Json::MakeArray();
  EXPECT_FALSE(api_->HandleRequest(key_, "use_model", bad_model).ok());
}

}  // namespace
}  // namespace tvdp::platform
