// Concurrency suite: ThreadPool unit tests plus reader/writer stress tests
// over the platform facade. The stress tests are the TSan workload — they
// race N query threads (every query family, label/feature reads, CSV
// export) against a writer doing ingest, annotation write-back, feature
// storage and durable compaction. Run them plain, under ASan and under
// TSan (see tests/CMakeLists.txt and the TVDP_TSAN option).

#include <gtest/gtest.h>
#include <stdlib.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "platform/api.h"
#include "platform/export.h"
#include "platform/model_registry.h"
#include "platform/tvdp.h"
#include "query/engine.h"
#include "query/query.h"

namespace tvdp {
namespace {

using platform::AnnotationRecord;
using platform::ImageRecord;
using platform::Tvdp;

// ---------- ThreadPool ----------

TEST(ThreadPoolTest, SubmitReturnsValues) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  auto f1 = pool.Submit([] { return 41 + 1; });
  auto f2 = pool.Submit([] { return std::string("done"); });
  auto f3 = pool.Submit([] { return Status::InvalidArgument("nope"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "done");
  EXPECT_EQ(f3.get().code(), StatusCode::kInvalidArgument);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  std::thread::id caller = std::this_thread::get_id();
  auto f = pool.Submit([caller] { return std::this_thread::get_id() == caller; });
  EXPECT_TRUE(f.get());
  std::vector<int> seen(100, 0);
  ASSERT_TRUE(pool.ParallelFor(seen.size(), 1,
                               [&](size_t begin, size_t end) {
                                 for (size_t i = begin; i < end; ++i) ++seen[i];
                                 return Status::OK();
                               })
                  .ok());
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> seen(1000);
  ASSERT_TRUE(pool.ParallelFor(seen.size(), 16,
                               [&](size_t begin, size_t end) {
                                 for (size_t i = begin; i < end; ++i) {
                                   seen[i].fetch_add(1);
                                 }
                                 return Status::OK();
                               })
                  .ok());
  for (const auto& count : seen) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstError) {
  ThreadPool pool(2);
  std::atomic<int> chunks_run{0};
  Status s = pool.ParallelFor(100, 10, [&](size_t begin, size_t end) {
    chunks_run.fetch_add(1);
    if (begin <= 55 && 55 < end) {
      return Status::InvalidArgument("poisoned index");
    }
    return Status::OK();
  });
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // All chunks still ran to completion despite the error.
  EXPECT_GE(chunks_run.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> seen(256);
  Status s = pool.ParallelFor(4, 1, [&](size_t obegin, size_t oend) {
    for (size_t o = obegin; o < oend; ++o) {
      // A worker re-entering the pool must degrade to inline execution —
      // waiting on its own queue would deadlock.
      Status inner = pool.ParallelFor(64, 1, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          seen[o * 64 + i].fetch_add(1);
        }
        return Status::OK();
      });
      if (!inner.ok()) return inner;
    }
    return Status::OK();
  });
  ASSERT_TRUE(s.ok()) << s;
  for (const auto& count : seen) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, TinyRangeSkipsFanOut) {
  ThreadPool pool(4);
  std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> on_caller{true};
  ASSERT_TRUE(pool.ParallelFor(8, 64,
                               [&](size_t, size_t) {
                                 if (std::this_thread::get_id() != caller) {
                                   on_caller = false;
                                 }
                                 return Status::OK();
                               })
                  .ok());
  EXPECT_TRUE(on_caller.load());
}

// ---------- stress scaffolding ----------

/// Seeds `tvdp` with `n` images mirroring the query-test corpus: grid
/// locations, FOVs, alternating keywords/labels, 4-d one-hot features.
void SeedCorpus(Tvdp& tvdp, int n, std::vector<int64_t>* ids) {
  ASSERT_TRUE(tvdp.RegisterClassification("street_cleanliness",
                                          {"clean", "encampment"})
                  .ok());
  for (int i = 0; i < n; ++i) {
    int row = i / 8, col = i % 8;
    ImageRecord rec;
    rec.uri = "seed" + std::to_string(i);
    rec.location = geo::GeoPoint{34.00 + row * 0.01, -118.30 + col * 0.0125};
    auto fov = geo::FieldOfView::Make(rec.location, (i * 37) % 360, 60, 120);
    ASSERT_TRUE(fov.ok());
    rec.fov = *fov;
    rec.captured_at = 1546300800 + i * 3600;
    rec.keywords = i % 2 == 0 ? std::vector<std::string>{"tent", "street"}
                              : std::vector<std::string>{"clean", "street"};
    auto id = tvdp.IngestImage(rec);
    ASSERT_TRUE(id.ok()) << id.status();
    ids->push_back(*id);

    AnnotationRecord ann;
    ann.classification = "street_cleanliness";
    ann.label = i % 2 == 0 ? "encampment" : "clean";
    ann.confidence = 0.9;
    ann.machine = true;
    ASSERT_TRUE(tvdp.AnnotateImage(*id, ann).ok());

    ml::FeatureVector feat(4, 0.1);
    feat[static_cast<size_t>(i % 4)] = 1.0;
    ASSERT_TRUE(tvdp.StoreFeature(*id, "cnn", feat).ok());
  }
}

/// One reader iteration: every query family plus facade reads and a CSV
/// export, all over the immutable seeded prefix. Returns false (with a
/// test failure recorded) on any unexpected error.
bool ReaderPass(Tvdp& tvdp, const std::vector<int64_t>& seed_ids,
                const geo::BoundingBox& region, int salt) {
  query::QueryEngine& engine = tvdp.query();
  ml::FeatureVector probe(4, 0.1);
  probe[static_cast<size_t>(salt % 4)] = 1.0;

  auto spatial = engine.SpatialRange(region);
  EXPECT_TRUE(spatial.ok()) << spatial.status();
  if (!spatial.ok()) return false;
  EXPECT_GE(spatial->size(), seed_ids.size());

  auto knn = engine.SpatialKnn(geo::GeoPoint{34.02, -118.27}, 5);
  EXPECT_TRUE(knn.ok()) << knn.status();

  auto visible = engine.VisibleAt(geo::GeoPoint{34.01, -118.29});
  EXPECT_TRUE(visible.ok()) << visible.status();

  auto topk = engine.VisualTopK("cnn", probe, 8);
  EXPECT_TRUE(topk.ok()) << topk.status();

  auto thresh = engine.VisualThreshold("cnn", probe, 1.5);
  EXPECT_TRUE(thresh.ok()) << thresh.status();

  query::CategoricalPredicate cp;
  cp.classification = "street_cleanliness";
  cp.label = "encampment";
  auto categorical = engine.Categorical(cp);
  EXPECT_TRUE(categorical.ok()) << categorical.status();

  query::TextualPredicate tp;
  tp.keywords = {"tent"};
  auto textual = engine.Textual(tp);
  EXPECT_TRUE(textual.ok()) << textual.status();

  auto temporal = engine.Temporal(1546300800, 1546300800 + 200 * 3600);
  EXPECT_TRUE(temporal.ok()) << temporal.status();

  query::HybridQuery hq;
  query::SpatialPredicate sp;
  sp.kind = query::SpatialPredicate::Kind::kRange;
  sp.range = region;
  hq.spatial = sp;
  query::VisualPredicate vp;
  vp.kind = query::VisualPredicate::Kind::kThreshold;
  vp.feature_kind = "cnn";
  vp.feature = probe;
  vp.threshold = 1.5;
  hq.visual = vp;
  hq.textual = tp;
  auto hybrid = engine.Execute(hq);
  EXPECT_TRUE(hybrid.ok()) << hybrid.status();
  if (hybrid.ok()) {
    std::set<int64_t> unique;
    for (const auto& h : *hybrid) unique.insert(h.image_id);
    EXPECT_EQ(unique.size(), hybrid->size()) << "hybrid returned duplicates";
  }

  int64_t probe_id = seed_ids[static_cast<size_t>(salt) % seed_ids.size()];
  auto label = tvdp.GetLabel(probe_id, "street_cleanliness");
  EXPECT_TRUE(label.ok()) << label.status();
  auto feature = tvdp.GetFeature(probe_id, "cnn");
  EXPECT_TRUE(feature.ok()) << feature.status();
  auto locations = tvdp.LocationsWithLabel("street_cleanliness", "encampment");
  EXPECT_TRUE(locations.ok()) << locations.status();

  auto csv = platform::ExportMetadataCsv(
      tvdp, {seed_ids.front(), probe_id, seed_ids.back()});
  EXPECT_TRUE(csv.ok()) << csv.status();

  (void)tvdp.image_count();
  return spatial.ok() && hybrid.ok();
}

/// Writer loop: ingest + annotate + feature per iteration, periodically a
/// checkpoint (durable platforms compact through it).
void WriterLoop(Tvdp& tvdp, int iterations, std::atomic<bool>* done) {
  for (int i = 0; i < iterations; ++i) {
    ImageRecord rec;
    rec.uri = "live" + std::to_string(i);
    rec.location = geo::GeoPoint{34.05 + (i % 5) * 0.001, -118.25};
    rec.captured_at = 1546300800 + (100 + i) * 3600;
    rec.keywords = {"street", i % 2 == 0 ? "tent" : "clean"};
    auto id = tvdp.IngestImage(rec);
    ASSERT_TRUE(id.ok()) << id.status();

    AnnotationRecord ann;
    ann.classification = "street_cleanliness";
    ann.label = i % 2 == 0 ? "encampment" : "clean";
    ann.confidence = 0.8;
    ann.machine = true;
    ASSERT_TRUE(tvdp.AnnotateImage(*id, ann).ok());

    ml::FeatureVector feat(4, 0.1);
    feat[static_cast<size_t>(i % 4)] = 1.0;
    ASSERT_TRUE(tvdp.StoreFeature(*id, "cnn", feat).ok());

    if (i % 16 == 15) {
      ASSERT_TRUE(tvdp.Checkpoint().ok());
    }
  }
  done->store(true);
}

void RunStress(Tvdp& tvdp, int num_readers, int writer_iterations,
               int reader_passes) {
  std::vector<int64_t> seed_ids;
  SeedCorpus(tvdp, 48, &seed_ids);
  geo::BoundingBox region =
      geo::BoundingBox::FromCorners({33.99, -118.31}, {34.12, -118.19});

  // Fixed work on both sides (readers do NOT spin until the writer ends):
  // std::shared_mutex makes no fairness promise, and on glibc continuous
  // re-acquiring readers can starve the writer indefinitely. Launching
  // everything together still overlaps reads and writes throughout.
  std::atomic<bool> writer_done{false};
  std::vector<std::thread> readers;
  readers.reserve(static_cast<size_t>(num_readers));
  for (int r = 0; r < num_readers; ++r) {
    readers.emplace_back([&, r] {
      for (int pass = 0; pass < reader_passes; ++pass) {
        if (!ReaderPass(tvdp, seed_ids, region, r * 31 + pass)) break;
      }
    });
  }
  std::thread writer(
      [&] { WriterLoop(tvdp, writer_iterations, &writer_done); });
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_TRUE(writer_done.load());

  // Post-conditions: every write landed and is queryable.
  EXPECT_EQ(tvdp.image_count(),
            seed_ids.size() + static_cast<size_t>(writer_iterations));
  auto locations = tvdp.LocationsWithLabel("street_cleanliness", "encampment");
  ASSERT_TRUE(locations.ok());
  EXPECT_EQ(locations->size(),
            (seed_ids.size() + static_cast<size_t>(writer_iterations) + 1) / 2);
}

int EnvOr(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

// ---------- stress tests ----------

TEST(ConcurrencyStressTest, InMemoryReadersVsWriter) {
  auto created = Tvdp::Create();
  ASSERT_TRUE(created.ok());
  Tvdp tvdp = std::move(created).value();
  RunStress(tvdp, /*num_readers=*/EnvOr("TVDP_STRESS_READERS", 4),
            /*writer_iterations=*/EnvOr("TVDP_STRESS_WRITES", 256),
            /*reader_passes=*/EnvOr("TVDP_STRESS_PASSES", 48));
}

TEST(ConcurrencyStressTest, DurableReadersVsWriterWithCompaction) {
  std::string templ = ::testing::TempDir() + "tvdp_concXXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  ASSERT_NE(mkdtemp(buf.data()), nullptr);
  std::string dir = buf.data();
  std::string base = dir + "/platform";

  size_t expected_images = 0;
  {
    storage::DurableCatalogOptions options;
    options.sync_on_commit = false;
    // Tiny threshold: the writer's WAL appends trip compactions while the
    // readers are mid-query, exercising snapshot-under-read.
    options.compaction_threshold_bytes = 16 << 10;
    auto opened = Tvdp::Open(base, options);
    ASSERT_TRUE(opened.ok()) << opened.status();
    Tvdp tvdp = std::move(opened).value();
    RunStress(tvdp, /*num_readers=*/EnvOr("TVDP_STRESS_READERS", 2),
              /*writer_iterations=*/EnvOr("TVDP_STRESS_WRITES", 128),
              /*reader_passes=*/EnvOr("TVDP_STRESS_PASSES", 24));
    expected_images = tvdp.image_count();
  }
  // Everything committed under concurrency must survive a reopen.
  auto reopened = Tvdp::Open(base);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->image_count(), expected_images);

  std::string cmd = "rm -rf '" + dir + "'";
  (void)std::system(cmd.c_str());
}

TEST(ConcurrencyStressTest, RevokeApiKeyVsInFlightRequests) {
  auto created = Tvdp::Create();
  ASSERT_TRUE(created.ok());
  Tvdp tvdp = std::move(created).value();
  std::vector<int64_t> seed_ids;
  SeedCorpus(tvdp, 16, &seed_ids);
  platform::ModelRegistry registry;
  platform::ApiService api(&tvdp, &registry);

  // A rotating pool of keys; the churner revokes one and mints its
  // replacement while callers keep issuing requests with whatever key is
  // current. The key table itself (api internals) is what's under test;
  // this local mutex only keeps the test's key *list* coherent.
  constexpr size_t kKeys = 4;
  std::mutex keys_mutex;
  std::vector<std::string> keys;
  for (size_t i = 0; i < kKeys; ++i) {
    keys.push_back(api.CreateApiKey("owner" + std::to_string(i)));
  }
  auto key_at = [&](size_t i) {
    std::lock_guard<std::mutex> lock(keys_mutex);
    return keys[i % kKeys];
  };

  const int passes = EnvOr("TVDP_STRESS_PASSES", 48) * 4;
  std::atomic<int> ok_count{0};
  std::atomic<int> denied_count{0};
  std::vector<std::thread> callers;
  for (int r = 0; r < 4; ++r) {
    callers.emplace_back([&, r] {
      Json search = Json::MakeObject();
      Json bbox = Json::MakeArray();
      bbox.Append(33.99);
      bbox.Append(-118.31);
      bbox.Append(34.12);
      bbox.Append(-118.19);
      search["bbox"] = std::move(bbox);
      for (int i = 0; i < passes; ++i) {
        Json env = api.HandleEnvelope(key_at(static_cast<size_t>(r + i)),
                                      "search_datasets", search);
        if (env["status"].AsString() == "ok") {
          ok_count.fetch_add(1);
        } else {
          // The only legal failure is losing the race with a revocation.
          EXPECT_EQ(env["code"].AsString(), "PermissionDenied") << env.Dump();
          denied_count.fetch_add(1);
        }
      }
    });
  }
  std::thread churner([&] {
    for (int i = 0; i < passes; ++i) {
      std::string fresh = api.CreateApiKey("owner" + std::to_string(i % 4));
      std::string stale;
      {
        std::lock_guard<std::mutex> lock(keys_mutex);
        std::swap(stale, keys[static_cast<size_t>(i) % kKeys]);
        keys[static_cast<size_t>(i) % kKeys] = fresh;
      }
      EXPECT_TRUE(api.RevokeApiKey(stale).ok());
      std::this_thread::yield();
    }
  });
  for (auto& t : callers) t.join();
  churner.join();

  EXPECT_EQ(ok_count.load() + denied_count.load(), passes * 4);
  EXPECT_GT(ok_count.load(), 0);
  // Revoked keys must really be dead afterwards.
  Json env = api.HandleEnvelope("tvdp-bogus", "search_datasets",
                                Json::MakeObject());
  EXPECT_EQ(env["code"].AsString(), "PermissionDenied");
}

}  // namespace
}  // namespace tvdp
