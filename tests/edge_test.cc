#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "edge/crowd_learning.h"
#include "edge/device.h"
#include "edge/dispatcher.h"
#include "edge/model_profile.h"
#include "edge/simulator.h"
#include "ml/linear_svm.h"

namespace tvdp::edge {
namespace {

// ---------- Profiles ----------

TEST(DeviceTest, PaperProfilesExist) {
  auto devices = PaperDeviceProfiles();
  ASSERT_EQ(devices.size(), 3u);
  EXPECT_EQ(devices[0].device_class, DeviceClass::kDesktop);
  EXPECT_EQ(devices[1].device_class, DeviceClass::kRaspberryPi);
  EXPECT_EQ(devices[2].device_class, DeviceClass::kSmartphone);
  // Throughput ordering: desktop > smartphone > pi.
  EXPECT_GT(devices[0].effective_gflops, devices[2].effective_gflops);
  EXPECT_GT(devices[2].effective_gflops, devices[1].effective_gflops);
}

TEST(DeviceTest, ClassNames) {
  EXPECT_EQ(DeviceClassName(DeviceClass::kDesktop), "desktop");
  EXPECT_EQ(DeviceClassName(DeviceClass::kRaspberryPi), "raspberry_pi");
  EXPECT_EQ(DeviceClassName(DeviceClass::kSmartphone), "smartphone");
}

TEST(DeviceTest, SampleProfileVariesButKeepsClass) {
  Rng rng(1);
  DeviceProfile a = SampleProfile(DeviceClass::kRaspberryPi, rng);
  DeviceProfile b = SampleProfile(DeviceClass::kRaspberryPi, rng);
  EXPECT_EQ(a.device_class, DeviceClass::kRaspberryPi);
  EXPECT_NE(a.effective_gflops, b.effective_gflops);
}

TEST(ModelTest, PublishedComplexityOrdering) {
  ModelProfile v1 = MakeMobileNetV1Profile();
  ModelProfile v2 = MakeMobileNetV2Profile();
  ModelProfile inception = MakeInceptionV3Profile();
  EXPECT_LT(v2.gflops_per_inference, v1.gflops_per_inference);
  EXPECT_GT(inception.gflops_per_inference, v1.gflops_per_inference * 5);
  EXPECT_GT(inception.accuracy, v2.accuracy);
  EXPECT_EQ(PaperModelProfiles().size(), 3u);
}

TEST(ModelTest, LadderIsSortedByCost) {
  auto ladder = ModelComplexityLadder();
  ASSERT_GE(ladder.size(), 3u);
  for (size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GE(ladder[i].gflops_per_inference,
              ladder[i - 1].gflops_per_inference);
  }
}

// ---------- Inference simulator (Fig. 8 shape) ----------

TEST(SimulatorTest, ExpectedLatencyScalesWithFlops) {
  DeviceProfile desktop = MakeDesktopProfile();
  double v2 = InferenceSimulator::ExpectedLatencyMs(desktop,
                                                    MakeMobileNetV2Profile());
  double inception = InferenceSimulator::ExpectedLatencyMs(
      desktop, MakeInceptionV3Profile());
  EXPECT_GT(inception, v2);
}

TEST(SimulatorTest, PaperDeviceOrderingHolds) {
  // Fig. 8: for every model, RPi >> smartphone > desktop.
  for (const ModelProfile& model : PaperModelProfiles()) {
    double desktop = InferenceSimulator::ExpectedLatencyMs(
        MakeDesktopProfile(), model);
    double phone = InferenceSimulator::ExpectedLatencyMs(
        MakeSmartphoneProfile(), model);
    double pi = InferenceSimulator::ExpectedLatencyMs(
        MakeRaspberryPiProfile(), model);
    EXPECT_GT(phone, desktop) << model.name;
    EXPECT_GT(pi, phone) << model.name;
    // "on average 1.5x order of magnitude slower": at least one order.
    EXPECT_GT(pi / desktop, 10.0) << model.name;
  }
}

TEST(SimulatorTest, MemoryPressureInflatesLatency) {
  DeviceProfile pi = MakeRaspberryPiProfile();
  ModelProfile big = MakeInceptionV3Profile();
  ModelProfile small = MakeMobileNetV2Profile();
  double big_ratio =
      InferenceSimulator::ExpectedLatencyMs(pi, big) /
      (big.gflops_per_inference / pi.effective_gflops * 1000.0 +
       pi.dispatch_overhead_ms);
  double small_ratio =
      InferenceSimulator::ExpectedLatencyMs(pi, small) /
      (small.gflops_per_inference / pi.effective_gflops * 1000.0 +
       pi.dispatch_overhead_ms);
  EXPECT_GT(big_ratio, 1.05);       // InceptionV3 thrashes on 1GB
  EXPECT_NEAR(small_ratio, 1.0, 1e-9);  // MobileNet fits fine
}

TEST(SimulatorTest, NoiseIsBoundedAndMeanConverges) {
  InferenceSimulator sim;
  DeviceProfile desktop = MakeDesktopProfile();
  ModelProfile model = MakeMobileNetV1Profile();
  double expected = InferenceSimulator::ExpectedLatencyMs(desktop, model);
  double mean = sim.MeanLatencyMs(desktop, model, 3000);
  EXPECT_NEAR(mean / expected, 1.0, 0.05);
}

TEST(SimulatorTest, DeterministicForSeed) {
  InferenceSimulator::Options opts;
  opts.seed = 5;
  InferenceSimulator a(opts), b(opts);
  DeviceProfile phone = MakeSmartphoneProfile();
  ModelProfile model = MakeMobileNetV2Profile();
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.SimulateInferenceMs(phone, model),
                     b.SimulateInferenceMs(phone, model));
  }
}

TEST(SimulatorTest, MeanLatencyWithNonPositiveRunsIsZero) {
  InferenceSimulator sim;
  DeviceProfile desktop = MakeDesktopProfile();
  ModelProfile model = MakeMobileNetV1Profile();
  EXPECT_DOUBLE_EQ(sim.MeanLatencyMs(desktop, model, 0), 0.0);
  EXPECT_DOUBLE_EQ(sim.MeanLatencyMs(desktop, model, -5), 0.0);
  // The degenerate calls must not advance the noise stream.
  InferenceSimulator fresh;
  EXPECT_DOUBLE_EQ(sim.SimulateInferenceMs(desktop, model),
                   fresh.SimulateInferenceMs(desktop, model));
}

TEST(SimulatorTest, TransferTimeScalesWithBytesAndBandwidth) {
  DeviceProfile pi = MakeRaspberryPiProfile();
  DeviceProfile desktop = MakeDesktopProfile();
  EXPECT_GT(InferenceSimulator::TransferMs(pi, 1e6),
            InferenceSimulator::TransferMs(desktop, 1e6));
  EXPECT_NEAR(InferenceSimulator::TransferMs(pi, 2e6),
              2 * InferenceSimulator::TransferMs(pi, 1e6), 1e-9);
}

// ---------- Dispatcher ----------

TEST(DispatcherTest, DesktopGetsFullModelPiGetsSmall) {
  ModelDispatcher dispatcher(ModelComplexityLadder());
  auto desktop = dispatcher.Dispatch(MakeDesktopProfile(), 200);
  ASSERT_TRUE(desktop.ok());
  EXPECT_EQ(desktop->name, "inception_v3");
  auto pi = dispatcher.Dispatch(MakeRaspberryPiProfile(), 200);
  ASSERT_TRUE(pi.ok());
  EXPECT_LT(pi->gflops_per_inference, 0.5);
}

TEST(DispatcherTest, TighterBudgetMeansCheaperModel) {
  ModelDispatcher dispatcher(ModelComplexityLadder());
  DeviceProfile phone = MakeSmartphoneProfile();
  auto generous = dispatcher.Dispatch(phone, 2000);
  auto tight = dispatcher.Dispatch(phone, 30);
  ASSERT_TRUE(generous.ok());
  ASSERT_TRUE(tight.ok());
  EXPECT_GE(generous->accuracy, tight->accuracy);
  EXPECT_GE(generous->gflops_per_inference, tight->gflops_per_inference);
}

TEST(DispatcherTest, ImpossibleBudgetFallsBackToCheapest) {
  ModelDispatcher dispatcher(ModelComplexityLadder());
  auto result = dispatcher.Dispatch(MakeRaspberryPiProfile(), 0.001);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->name, ModelComplexityLadder().front().name);
}

TEST(DispatcherTest, EmptyLadderFails) {
  ModelDispatcher dispatcher({});
  auto result = dispatcher.Dispatch(MakeDesktopProfile(), 100);
  ASSERT_FALSE(result.ok());
  // Documented contract: NotFound, so callers can distinguish "nothing to
  // serve" from retryable dispatch failures.
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(DispatcherTest, MemoryConstraintExcludesHugeModels) {
  DeviceProfile tiny = MakeRaspberryPiProfile();
  tiny.memory_mb = 64;
  ModelDispatcher dispatcher({MakeInceptionV3Profile()});
  auto result = dispatcher.Dispatch(tiny, 1e9);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(DispatcherTest, DegradedDispatchPicksCheapestFittingVariant) {
  // Unsorted ladder: the degraded pick must be the cheapest *fitting*
  // variant, not merely the first entry.
  ModelDispatcher dispatcher({MakeInceptionV3Profile(),
                              MakeMobileNetV1Profile(),
                              MakeMobileNetV2Profile()});
  auto degraded = dispatcher.Dispatch(MakeSmartphoneProfile(), 0.0);
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(degraded->name, MakeMobileNetV2Profile().name);
}

// ---------- Crowd learning loop (Fig. 4) ----------

/// Gaussian-blob corpus shared by the loop tests.
void MakeBlobData(int n, int num_classes, uint64_t seed, ml::Dataset* out) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    int c = static_cast<int>(rng.UniformInt(0, num_classes - 1));
    ml::FeatureVector x(6);
    for (size_t d = 0; d < x.size(); ++d) {
      x[d] = (static_cast<int>(d) % num_classes == c ? 3.0 : 0.0) +
             rng.Normal(0, 1.0);
    }
    ASSERT_TRUE(out->Add(std::move(x), c).ok());
  }
}

std::vector<EdgeNode> MakeNodes(int per_class_count, uint64_t seed) {
  Rng rng(seed);
  std::vector<EdgeNode> nodes;
  DeviceClass classes[] = {DeviceClass::kDesktop, DeviceClass::kRaspberryPi,
                           DeviceClass::kSmartphone};
  for (DeviceClass c : classes) {
    for (int i = 0; i < per_class_count; ++i) {
      EdgeNode node;
      node.device = SampleProfile(c, rng);
      ml::Dataset local;
      MakeBlobData(40, 3, rng.NextU64(), &local);
      node.local_data = local.samples();
      nodes.push_back(std::move(node));
    }
  }
  return nodes;
}

TEST(CrowdLearningTest, AccuracyImprovesWithRounds) {
  ml::Dataset seed_train, test;
  MakeBlobData(30, 3, 11, &seed_train);   // small seed: weak initial model
  MakeBlobData(300, 3, 12, &test);
  ml::LinearSvmClassifier prototype;
  CrowdLearningLoop::Options opts;
  opts.rounds = 6;
  opts.upload_budget_bytes = 16 * 48;  // a few samples per device per round
  CrowdLearningLoop loop(prototype, seed_train, test, MakeNodes(2, 13), opts);
  auto history = loop.Run();
  ASSERT_TRUE(history.ok()) << history.status();
  ASSERT_EQ(history->size(), 7u);  // round 0 + 6
  EXPECT_GT(history->back().test_macro_f1,
            history->front().test_macro_f1 - 1e-9);
  EXPECT_GT(history->back().train_size, history->front().train_size);
  // Bytes uploaded every active round.
  EXPECT_GT((*history)[1].bytes_uploaded, 0);
}

TEST(CrowdLearningTest, FeatureUploadUsesLessBandwidthThanImages) {
  ml::Dataset seed_train, test;
  MakeBlobData(50, 3, 21, &seed_train);
  MakeBlobData(100, 3, 22, &test);
  ml::LinearSvmClassifier prototype;

  CrowdLearningLoop::Options feat_opts;
  feat_opts.rounds = 2;
  feat_opts.upload_features = true;
  feat_opts.upload_budget_bytes = 500 * 1024;
  CrowdLearningLoop feat_loop(prototype, seed_train, test, MakeNodes(1, 23),
                              feat_opts);
  auto feat_hist = feat_loop.Run();
  ASSERT_TRUE(feat_hist.ok());

  CrowdLearningLoop::Options img_opts = feat_opts;
  img_opts.upload_features = false;
  CrowdLearningLoop img_loop(prototype, seed_train, test, MakeNodes(1, 23),
                             img_opts);
  auto img_hist = img_loop.Run();
  ASSERT_TRUE(img_hist.ok());

  // Same number of samples moved => far fewer bytes with features.
  double feat_bytes = 0, img_bytes = 0;
  for (const auto& r : *feat_hist) feat_bytes += r.bytes_uploaded;
  for (const auto& r : *img_hist) img_bytes += r.bytes_uploaded;
  EXPECT_LT(feat_bytes * 100, img_bytes);
}

TEST(CrowdLearningTest, ConfidenceSelectionBeatsRandomAtEqualBudget) {
  ml::Dataset seed_train, test;
  MakeBlobData(24, 3, 31, &seed_train);
  MakeBlobData(400, 3, 32, &test);
  ml::LinearSvmClassifier prototype;

  auto run_policy = [&](SelectionPolicy policy) {
    CrowdLearningLoop::Options opts;
    opts.rounds = 5;
    opts.policy = policy;
    opts.upload_budget_bytes = 8 * 48;
    CrowdLearningLoop loop(prototype, seed_train, test, MakeNodes(2, 33),
                           opts);
    auto history = loop.Run();
    EXPECT_TRUE(history.ok());
    return history->back().test_macro_f1;
  };
  double random_f1 = run_policy(SelectionPolicy::kRandom);
  double confident_f1 = run_policy(SelectionPolicy::kLowConfidence);
  // Active selection should not be materially worse; usually better.
  EXPECT_GE(confident_f1 + 0.05, random_f1);
}

TEST(CrowdLearningTest, DispatchAdaptsToDeviceClass) {
  ml::Dataset seed_train, test;
  MakeBlobData(60, 3, 41, &seed_train);
  MakeBlobData(60, 3, 42, &test);
  ml::LinearSvmClassifier prototype;
  CrowdLearningLoop::Options opts;
  opts.rounds = 1;
  opts.latency_budget_ms = 150;
  auto nodes = MakeNodes(1, 43);
  CrowdLearningLoop loop(prototype, seed_train, test, nodes, opts);
  ASSERT_TRUE(loop.Run().ok());
  const auto& dispatch = loop.last_dispatch();
  ASSERT_EQ(dispatch.size(), nodes.size());
  // Node 0 is the desktop, node 1 the Pi: the desktop gets a bigger model.
  EXPECT_GT(dispatch[0].gflops_per_inference,
            dispatch[1].gflops_per_inference);
}

TEST(CrowdLearningTest, Validation) {
  ml::LinearSvmClassifier prototype;
  ml::Dataset empty, test;
  MakeBlobData(10, 2, 51, &test);
  CrowdLearningLoop bad_seed(prototype, empty, test, {}, {});
  EXPECT_FALSE(bad_seed.Run().ok());
  CrowdLearningLoop bad_test(prototype, test, empty, {}, {});
  EXPECT_FALSE(bad_test.Run().ok());
}

TEST(CrowdLearningTest, FullDropoutStallsLearningButNotTheLoop) {
  ml::Dataset seed_train, test;
  MakeBlobData(30, 3, 61, &seed_train);
  MakeBlobData(100, 3, 62, &test);
  ml::LinearSvmClassifier prototype;
  CrowdLearningLoop::Options opts;
  opts.rounds = 3;
  opts.node_dropout_prob = 1.0;  // every node crashes every round
  auto nodes = MakeNodes(1, 63);
  CrowdLearningLoop loop(prototype, seed_train, test, nodes, opts);
  auto history = loop.Run();
  ASSERT_TRUE(history.ok()) << history.status();
  ASSERT_EQ(history->size(), 4u);  // rounds still complete — no deadlock
  for (size_t r = 1; r < history->size(); ++r) {
    const LearningRound& lr = (*history)[r];
    EXPECT_EQ(lr.nodes_dropped, static_cast<int>(nodes.size()));
    EXPECT_EQ(lr.nodes_participated, 0);
    EXPECT_EQ(lr.bytes_uploaded, 0);
    EXPECT_EQ(lr.train_size, seed_train.size());  // nothing aggregated
  }
}

TEST(CrowdLearningTest, BoundedWaitCutsStragglersAndDefersUploads) {
  ml::Dataset seed_train, test;
  MakeBlobData(30, 3, 71, &seed_train);
  MakeBlobData(100, 3, 72, &test);
  ml::LinearSvmClassifier prototype;
  auto nodes = MakeNodes(1, 73);

  CrowdLearningLoop::Options patient;
  patient.rounds = 2;
  patient.upload_budget_bytes = 16 * 48;
  CrowdLearningLoop patient_loop(prototype, seed_train, test, nodes, patient);
  auto patient_hist = patient_loop.Run();
  ASSERT_TRUE(patient_hist.ok());
  EXPECT_EQ((*patient_hist)[1].nodes_participated,
            static_cast<int>(nodes.size()));
  EXPECT_EQ((*patient_hist)[1].nodes_dropped, 0);

  // An impossible wait budget cuts every node off; uploads are deferred,
  // not lost, and the round still completes.
  CrowdLearningLoop::Options impatient = patient;
  impatient.round_wait_budget_ms = 1e-6;
  CrowdLearningLoop cut_loop(prototype, seed_train, test, nodes, impatient);
  auto cut_hist = cut_loop.Run();
  ASSERT_TRUE(cut_hist.ok());
  for (size_t r = 1; r < cut_hist->size(); ++r) {
    EXPECT_EQ((*cut_hist)[r].nodes_dropped, static_cast<int>(nodes.size()));
    EXPECT_EQ((*cut_hist)[r].bytes_uploaded, 0);
  }

  // A generous budget admits everyone: identical to the pre-fault path.
  CrowdLearningLoop::Options generous = patient;
  generous.round_wait_budget_ms = 1e12;
  CrowdLearningLoop gen_loop(prototype, seed_train, test, nodes, generous);
  auto gen_hist = gen_loop.Run();
  ASSERT_TRUE(gen_hist.ok());
  EXPECT_EQ((*gen_hist)[1].nodes_participated, static_cast<int>(nodes.size()));
  EXPECT_DOUBLE_EQ((*gen_hist)[1].bytes_uploaded,
                   (*patient_hist)[1].bytes_uploaded);
}

TEST(SelectionPolicyTest, Names) {
  EXPECT_EQ(SelectionPolicyName(SelectionPolicy::kRandom), "random");
  EXPECT_EQ(SelectionPolicyName(SelectionPolicy::kLowConfidence),
            "low_confidence");
  EXPECT_EQ(SelectionPolicyName(SelectionPolicy::kMargin), "margin");
}

}  // namespace
}  // namespace tvdp::edge
