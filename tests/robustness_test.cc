// Failure-injection and cross-module property tests: corrupted persisted
// state, adversarial API payloads, and invariants that must hold across
// randomized inputs.

#include <gtest/gtest.h>

#include <set>

#include "common/json.h"
#include "common/rng.h"
#include "geo/fov.h"
#include "index/lsh.h"
#include "platform/api.h"
#include "platform/model_registry.h"
#include "platform/tvdp.h"
#include "storage/catalog.h"
#include "storage/tvdp_schema.h"

namespace tvdp {
namespace {

// ---------- Corrupted persisted state ----------

TEST(CorruptionTest, CatalogSurvivesBitFlipsWithoutCrashing) {
  auto catalog = storage::MakeTvdpCatalog();
  ASSERT_TRUE(catalog.ok());
  ASSERT_TRUE(catalog
                  ->Insert(storage::tables::kImages,
                           {storage::Value("uri"), storage::Value(34.0),
                            storage::Value(-118.0), storage::Value(int64_t{1}),
                            storage::Value(int64_t{2}), storage::Value("s"),
                            storage::Value(false), storage::Value()})
                  .ok());
  std::vector<uint8_t> bytes = catalog->Serialize();
  Rng rng(42);
  // Flip one byte at a time in 200 random positions. Since the snapshot
  // format carries a whole-body CRC32C (plus magic/version checks for flips
  // in the header itself), every single-byte corruption must be *detected*
  // — not merely survived.
  int failed = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> corrupted = bytes;
    size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
    corrupted[pos] ^= static_cast<uint8_t>(1 + rng.UniformInt(0, 254));
    auto restored = storage::Catalog::Deserialize(corrupted);
    if (!restored.ok()) ++failed;
  }
  EXPECT_EQ(failed, 200);
  // The pristine bytes still round-trip.
  EXPECT_TRUE(storage::Catalog::Deserialize(bytes).ok());
  // And truncations always fail.
  std::vector<uint8_t> truncated(bytes.begin(),
                                 bytes.begin() + static_cast<long>(bytes.size() / 2));
  EXPECT_FALSE(storage::Catalog::Deserialize(truncated).ok());
}

TEST(CorruptionTest, JsonParserNeverCrashesOnMutations) {
  const std::string base =
      R"({"spec":{"name":"m","labels":["a","b"]},"model":{"type":"svm"}})";
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = base;
    int edits = static_cast<int>(rng.UniformInt(1, 4));
    for (int e = 0; e < edits; ++e) {
      size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
    }
    auto parsed = Json::Parse(mutated);  // must not crash; ok either way
    if (parsed.ok()) {
      // Whatever parsed must re-serialize and re-parse to itself.
      auto again = Json::Parse(parsed->Dump());
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(*again, *parsed);
    }
  }
}

// ---------- Adversarial API payloads ----------

class ApiRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto created = platform::Tvdp::Create();
    ASSERT_TRUE(created.ok());
    tvdp_ = std::make_unique<platform::Tvdp>(std::move(created).value());
    registry_ = std::make_unique<platform::ModelRegistry>();
    api_ = std::make_unique<platform::ApiService>(tvdp_.get(), registry_.get());
    key_ = api_->CreateApiKey("attacker");
  }
  std::unique_ptr<platform::Tvdp> tvdp_;
  std::unique_ptr<platform::ModelRegistry> registry_;
  std::unique_ptr<platform::ApiService> api_;
  std::string key_;
};

TEST_F(ApiRobustnessTest, WrongTypesAreRejectedNotCrashed) {
  // lat as string.
  auto r1 = Json::Parse(R"({"lat":"north","lon":-118.0})");
  ASSERT_TRUE(r1.ok());
  Json env1 = api_->HandleEnvelope(key_, "add_data", *r1);
  EXPECT_EQ(env1["status"].AsString(), "error");

  // bbox with the wrong arity.
  auto r2 = Json::Parse(R"({"bbox":[1,2,3]})");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(api_->HandleEnvelope(key_, "search_datasets", *r2)["status"]
                .AsString(),
            "error");

  // Feature containing a string.
  auto r3 = Json::Parse(R"({"model":"m","feature":[1,"x"]})");
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(api_->HandleEnvelope(key_, "use_model", *r3)["status"].AsString(),
            "error");

  // register_model with a bogus serialized model.
  auto r4 = Json::Parse(
      R"({"spec":{"name":"m","feature_kind":"cnn","classification":"c",
          "labels":["a"]},"model":{"type":"svm","num_classes":9999}})");
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(
      api_->HandleEnvelope(key_, "register_model", *r4)["status"].AsString(),
      "error");
}

TEST_F(ApiRobustnessTest, OutOfRangeCoordinatesRejected) {
  auto req = Json::Parse(R"({"lat":9999,"lon":0})");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(api_->HandleEnvelope(key_, "add_data", *req)["status"].AsString(),
            "error");
  EXPECT_EQ(tvdp_->image_count(), 0u);
}

TEST_F(ApiRobustnessTest, InvalidFovRejectedAtomicaly) {
  // A bad FOV must not leave a half-ingested image behind.
  auto req = Json::Parse(
      R"({"lat":34.0,"lon":-118.0,
          "fov":{"direction":0,"angle":-5,"radius":100}})");
  ASSERT_TRUE(req.ok());
  Json env = api_->HandleEnvelope(key_, "add_data", *req);
  EXPECT_EQ(env["status"].AsString(), "error");
}

TEST_F(ApiRobustnessTest, DownloadOfMissingImageIsNotFound) {
  auto req = Json::Parse(R"({"image_ids":[12345]})");
  ASSERT_TRUE(req.ok());
  Json env = api_->HandleEnvelope(key_, "download_datasets", *req);
  EXPECT_EQ(env["status"].AsString(), "error");
  EXPECT_EQ(env["code"].AsString(), "NotFound");
}

// ---------- Randomized cross-module invariants ----------

class FovInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FovInvariantTest, ContainedPointsLieInSceneMbr) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    geo::GeoPoint cam{rng.Uniform(33.5, 34.5), rng.Uniform(-119, -117)};
    auto fov = geo::FieldOfView::Make(cam, rng.Uniform(0, 360),
                                      rng.Uniform(10, 359),
                                      rng.Uniform(20, 800));
    ASSERT_TRUE(fov.ok());
    geo::BoundingBox scene = fov->SceneLocation();
    for (int s = 0; s < 40; ++s) {
      geo::GeoPoint p = geo::Destination(cam, rng.Uniform(0, 360),
                                         rng.Uniform(0, fov->radius_m));
      if (fov->ContainsPoint(p)) {
        EXPECT_TRUE(scene.Contains(p))
            << fov->ToString() << " point " << p.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FovInvariantTest,
                         ::testing::Values(11, 22, 33));

class LshDimensionTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LshDimensionTest, SelfQueryAlwaysFirstAcrossDimensions) {
  const size_t dim = GetParam();
  Rng rng(dim);
  index::LshIndex lsh(dim);
  std::vector<ml::FeatureVector> stored;
  for (int i = 0; i < 200; ++i) {
    ml::FeatureVector v(dim);
    for (double& x : v) x = rng.Normal();
    stored.push_back(v);
    ASSERT_TRUE(lsh.Insert(v, i).ok());
  }
  for (int i = 0; i < 200; i += 20) {
    auto hits = lsh.KNearest(stored[static_cast<size_t>(i)], 1);
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(hits[0].first, i);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, LshDimensionTest,
                         ::testing::Values(2, 16, 50, 128));

TEST(PlatformInvariantTest, IngestIsAtomicOnBadKeywordlessRecords) {
  auto created = platform::Tvdp::Create();
  ASSERT_TRUE(created.ok());
  platform::Tvdp tvdp = std::move(created).value();
  platform::ImageRecord bad;
  bad.uri = "x";
  bad.location = geo::GeoPoint{999, 999};
  EXPECT_FALSE(tvdp.IngestImage(bad).ok());
  EXPECT_EQ(tvdp.image_count(), 0u);
  // A valid ingest right after still works and gets id 1.
  platform::ImageRecord good;
  good.uri = "y";
  good.location = geo::GeoPoint{34.0, -118.0};
  good.captured_at = 1;
  auto id = tvdp.IngestImage(good);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 1);
}

TEST(PlatformInvariantTest, QueryFamiliesAgreeOnTheSameCorpus) {
  // Every indexed image must be reachable through spatial, temporal and
  // (if tagged) textual paths — no index silently drops rows.
  auto created = platform::Tvdp::Create();
  ASSERT_TRUE(created.ok());
  platform::Tvdp tvdp = std::move(created).value();
  Rng rng(3);
  geo::BoundingBox region =
      geo::BoundingBox::FromCorners({34.0, -118.3}, {34.1, -118.2});
  std::set<int64_t> all_ids;
  for (int i = 0; i < 100; ++i) {
    platform::ImageRecord rec;
    rec.uri = "img" + std::to_string(i);
    rec.location = geo::GeoPoint{rng.Uniform(region.min_lat, region.max_lat),
                                 rng.Uniform(region.min_lon, region.max_lon)};
    rec.captured_at = 1000 + i;
    rec.keywords = {"corpus"};
    auto id = tvdp.IngestImage(rec);
    ASSERT_TRUE(id.ok());
    all_ids.insert(*id);
  }
  auto spatial = tvdp.query().SpatialRange(region);
  auto temporal = tvdp.query().Temporal(1000, 1099);
  query::TextualPredicate pred;
  pred.keywords = {"corpus"};
  auto textual = tvdp.query().Textual(pred);
  ASSERT_TRUE(spatial.ok());
  ASSERT_TRUE(temporal.ok());
  ASSERT_TRUE(textual.ok());
  auto to_set = [](const std::vector<query::QueryHit>& hits) {
    std::set<int64_t> out;
    for (const auto& h : hits) out.insert(h.image_id);
    return out;
  };
  EXPECT_EQ(to_set(*spatial), all_ids);
  EXPECT_EQ(to_set(*temporal), all_ids);
  EXPECT_EQ(to_set(*textual), all_ids);
}

}  // namespace
}  // namespace tvdp
