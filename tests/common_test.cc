#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/json.h"
#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/timeutil.h"

namespace tvdp {
namespace {

// ---------- Status / Result ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  TVDP_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("must be positive");
  return x * 2;
}

Result<int> UsesAssignOrReturn(int x) {
  TVDP_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.value_or(-7), -7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = UsesAssignOrReturn(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 21);
  EXPECT_FALSE(UsesAssignOrReturn(0).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBoundsAndHitsAll) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RngTest, NormalMoments) {
  Rng rng(99);
  double sum = 0, sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(3);
  std::vector<double> w = {1, 0, 3};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.WeightedIndex(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / (counts[0] + counts[2]), 0.75,
              0.03);
}

TEST(RngTest, WeightedIndexDegenerate) {
  Rng rng(3);
  std::vector<double> all_zero = {0, 0, 0};
  EXPECT_EQ(rng.WeightedIndex(all_zero), 0u);
  std::vector<double> empty;
  EXPECT_EQ(rng.WeightedIndex(empty), 0u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(8);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(4);
  Rng child = a.Fork();
  EXPECT_NE(a.NextU64(), child.NextU64());
}

// ---------- Strings ----------

TEST(StringsTest, SplitBasic) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, SplitSkipEmpty) {
  auto parts = StrSplit("a,,c,", ',', /*skip_empty=*/true);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "c");
}

TEST(StringsTest, SplitJoinRoundtrip) {
  std::vector<std::string> parts = {"x", "yy", "zzz"};
  EXPECT_EQ(StrSplit(StrJoin(parts, "|"), '|'), parts);
}

TEST(StringsTest, CaseAndTrim) {
  EXPECT_EQ(ToLower("AbC9!"), "abc9!");
  EXPECT_EQ(StrTrim("  hi \t\n"), "hi");
  EXPECT_EQ(StrTrim("   "), "");
}

TEST(StringsTest, PrefixSuffix) {
  EXPECT_TRUE(StartsWith("tvdp_key", "tvdp_"));
  EXPECT_FALSE(StartsWith("tv", "tvdp_"));
  EXPECT_TRUE(EndsWith("image.ppm", ".ppm"));
  EXPECT_FALSE(EndsWith("ppm", ".ppm"));
}

TEST(StringsTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

TEST(StringsTest, TokenizeWords) {
  auto words = TokenizeWords("Hello, World! tent-city 42");
  ASSERT_EQ(words.size(), 5u);
  EXPECT_EQ(words[0], "hello");
  EXPECT_EQ(words[2], "tent");
  EXPECT_EQ(words[4], "42");
}

TEST(StringsTest, TokenizeEmpty) {
  EXPECT_TRUE(TokenizeWords("").empty());
  EXPECT_TRUE(TokenizeWords("!!! ...").empty());
}

// ---------- Json ----------

TEST(JsonTest, ScalarRoundtrip) {
  EXPECT_EQ(Json(42).Dump(), "42");
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
  EXPECT_EQ(Json().Dump(), "null");
  EXPECT_EQ(Json(2.5).Dump(), "2.5");
}

TEST(JsonTest, ObjectBuildAndAccess) {
  Json j = Json::MakeObject();
  j["name"] = "tvdp";
  j["count"] = 3;
  j["nested"]["flag"] = true;
  EXPECT_EQ(j["name"].AsString(), "tvdp");
  EXPECT_EQ(j["count"].AsInt(), 3);
  EXPECT_TRUE(j["nested"]["flag"].AsBool());
  EXPECT_TRUE(j["missing"].is_null());
  EXPECT_TRUE(j.Has("name"));
  EXPECT_FALSE(j.Has("nope"));
}

TEST(JsonTest, ArrayAppend) {
  Json j = Json::MakeArray();
  j.Append(1);
  j.Append("two");
  EXPECT_EQ(j.size(), 2u);
  EXPECT_EQ(j.AsArray()[1].AsString(), "two");
}

TEST(JsonTest, ParseRoundtrip) {
  const char* doc =
      R"({"a": [1, 2.5, "x"], "b": {"c": null, "d": false}, "e": "q\"uote"})";
  auto parsed = Json::Parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto reparsed = Json::Parse(parsed->Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*parsed, *reparsed);
  EXPECT_EQ((*parsed)["a"].AsArray()[1].AsDouble(), 2.5);
  EXPECT_EQ((*parsed)["e"].AsString(), "q\"uote");
}

TEST(JsonTest, ParseEscapes) {
  auto j = Json::Parse(R"("line\nbreak\tA")");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->AsString(), "line\nbreak\tA");
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1} extra").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
}

TEST(JsonTest, DeepNestingRejected) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonTest, PrettyIsReparseable) {
  Json j = Json::MakeObject();
  j["list"] = Json::Array{Json(1), Json(2)};
  auto re = Json::Parse(j.Pretty());
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(*re, j);
}

// ---------- Time ----------

TEST(TimeTest, FormatKnownInstant) {
  // 2019-01-01 00:00:00 UTC.
  EXPECT_EQ(FormatTimestamp(1546300800), "2019-01-01 00:00:00");
  EXPECT_EQ(FormatTimestamp(0), "1970-01-01 00:00:00");
}

TEST(TimeTest, ParseKnownInstant) {
  auto ts = ParseTimestamp("2019-01-01 00:00:00");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts.value(), 1546300800);
}

TEST(TimeTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseTimestamp("not a time").ok());
  EXPECT_FALSE(ParseTimestamp("2019-13-01 00:00:00").ok());
  EXPECT_FALSE(ParseTimestamp("2019-02-30 00:00:00").ok());
  EXPECT_FALSE(ParseTimestamp("2019-01-01 25:00:00").ok());
}

TEST(TimeTest, LeapYearHandling) {
  auto ts = ParseTimestamp("2020-02-29 12:00:00");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(FormatTimestamp(ts.value()), "2020-02-29 12:00:00");
}

class TimeRoundtripTest : public ::testing::TestWithParam<Timestamp> {};

TEST_P(TimeRoundtripTest, FormatParseRoundtrip) {
  Timestamp ts = GetParam();
  auto back = ParseTimestamp(FormatTimestamp(ts));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), ts);
}

INSTANTIATE_TEST_SUITE_P(Instants, TimeRoundtripTest,
                         ::testing::Values(0, 1, 86399, 86400, 946684800,
                                           1546300800, 1583020800, 2147483647,
                                           4102444800));

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  EXPECT_EQ(clock.Advance(50), 150);
  EXPECT_EQ(clock.Advance(-10), 150);  // negative advances ignored
}

TEST(LoggingTest, LevelGate) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  TVDP_LOG(Info) << "should be suppressed";
  SetLogLevel(before);
}

}  // namespace
}  // namespace tvdp
