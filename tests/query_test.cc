#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "geo/geo_point.h"
#include "platform/tvdp.h"
#include "query/engine.h"
#include "query/query.h"

namespace tvdp::query {
namespace {

using platform::AnnotationRecord;
using platform::ImageRecord;
using platform::Tvdp;

/// A platform pre-loaded with a deterministic corpus:
///  * 40 images on a grid across the region;
///  * even ids have keyword "tent" + "street", odd have "clean" + "street";
///  * even ids annotated encampment, odd annotated clean;
///  * all have a 4-d "cnn" feature: ~one-hot by quadrant;
///  * capture times spread at 1h intervals.
struct Fixture {
  Tvdp tvdp;
  std::vector<int64_t> ids;
  geo::BoundingBox region;

  static Fixture Make() {
    auto created = Tvdp::Create();
    EXPECT_TRUE(created.ok());
    Fixture f{std::move(created).value(), {}, geo::BoundingBox()};
    f.region = geo::BoundingBox::FromCorners({34.00, -118.30}, {34.10, -118.20});
    EXPECT_TRUE(f.tvdp
                    .RegisterClassification(
                        "street_cleanliness",
                        {"clean", "bulky_item", "illegal_dumping",
                         "encampment", "overgrown_vegetation"})
                    .ok());
    for (int i = 0; i < 40; ++i) {
      int row = i / 8, col = i % 8;
      ImageRecord rec;
      rec.uri = "img" + std::to_string(i);
      rec.location = geo::GeoPoint{34.00 + row * 0.02, -118.30 + col * 0.0125};
      auto fov = geo::FieldOfView::Make(rec.location, (i * 37) % 360, 60, 120);
      EXPECT_TRUE(fov.ok());
      rec.fov = *fov;
      rec.captured_at = 1546300800 + i * 3600;
      rec.keywords = i % 2 == 0
                         ? std::vector<std::string>{"tent", "street"}
                         : std::vector<std::string>{"clean", "street"};
      auto id = f.tvdp.IngestImage(rec);
      EXPECT_TRUE(id.ok()) << id.status();
      f.ids.push_back(*id);

      AnnotationRecord ann;
      ann.classification = "street_cleanliness";
      ann.label = i % 2 == 0 ? "encampment" : "clean";
      ann.confidence = 0.5 + 0.01 * i;
      ann.machine = true;
      EXPECT_TRUE(f.tvdp.AnnotateImage(*id, ann).ok());

      ml::FeatureVector feat(4, 0.1);
      feat[static_cast<size_t>(i % 4)] = 1.0;
      EXPECT_TRUE(f.tvdp.StoreFeature(*id, "cnn", feat).ok());
    }
    return f;
  }
};

class QueryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override { fixture_ = std::make_unique<Fixture>(Fixture::Make()); }
  QueryEngine& engine() { return fixture_->tvdp.query(); }
  Fixture& fixture() { return *fixture_; }
  std::unique_ptr<Fixture> fixture_;
};

// ---------- single-modality ----------

TEST_F(QueryEngineTest, SpatialRangeFindsSubsets) {
  auto all = engine().SpatialRange(fixture().region);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 40u);
  // A small box around the first image.
  geo::BoundingBox small = geo::BoundingBox::FromCenterRadius(
      geo::GeoPoint{34.00, -118.30}, 200);
  auto few = engine().SpatialRange(small);
  ASSERT_TRUE(few.ok());
  EXPECT_GE(few->size(), 1u);
  EXPECT_LT(few->size(), 40u);
  EXPECT_FALSE(engine().SpatialRange(geo::BoundingBox::Empty()).ok());
}

TEST_F(QueryEngineTest, SpatialRangeMatchesScanBaseline) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    geo::BoundingBox box = geo::BoundingBox::FromCenterRadius(
        geo::GeoPoint{rng.Uniform(34.0, 34.1), rng.Uniform(-118.3, -118.2)},
        rng.Uniform(300, 3000));
    auto indexed = engine().SpatialRange(box);
    auto scanned = engine().SpatialRangeScan(box);
    ASSERT_TRUE(indexed.ok());
    ASSERT_TRUE(scanned.ok());
    std::set<int64_t> a, b;
    for (const auto& h : *indexed) a.insert(h.image_id);
    for (const auto& h : *scanned) b.insert(h.image_id);
    EXPECT_EQ(a, b);
  }
}

TEST_F(QueryEngineTest, SpatialKnnOrdersByDistance) {
  geo::GeoPoint probe{34.05, -118.25};
  auto hits = engine().SpatialKnn(probe, 5);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 5u);
  EXPECT_FALSE(engine().SpatialKnn(probe, 0).ok());
}

TEST_F(QueryEngineTest, SpatialKnnRanksByGeodesicMeters) {
  // Off-grid probe: the nearest-k order by exact haversine meters differs
  // from naive degree-space ordering (a degree of longitude is ~17%
  // shorter than a degree of latitude at this latitude). The engine must
  // return the brute-force geodesic order.
  geo::GeoPoint probe{34.051, -118.256};
  const int k = 10;
  auto hits = engine().SpatialKnn(probe, k);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), static_cast<size_t>(k));
  std::vector<std::pair<double, int64_t>> expect;
  for (int i = 0; i < 40; ++i) {
    int row = i / 8, col = i % 8;
    geo::GeoPoint loc{34.00 + row * 0.02, -118.30 + col * 0.0125};
    expect.emplace_back(geo::HaversineMeters(probe, loc), fixture().ids[i]);
  }
  std::sort(expect.begin(), expect.end());
  for (int i = 0; i < k; ++i) {
    EXPECT_EQ((*hits)[static_cast<size_t>(i)].image_id,
              expect[static_cast<size_t>(i)].second)
        << "rank " << i;
  }
}

TEST_F(QueryEngineTest, VisibleAtUsesFovs) {
  // Pick an image's FOV interior point.
  auto hits = engine().VisibleAt(geo::GeoPoint{34.00, -118.30});
  ASSERT_TRUE(hits.ok());
  // The camera location itself is visible to its own FOV.
  bool found = false;
  for (const auto& h : *hits) {
    if (h.image_id == fixture().ids[0]) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(QueryEngineTest, VisualTopKReturnsExactDuplicateFirst) {
  ml::FeatureVector probe(4, 0.1);
  probe[2] = 1.0;
  auto hits = engine().VisualTopK("cnn", probe, 3);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  EXPECT_NEAR((*hits)[0].visual_distance, 0.0, 1e-12);
  // Unknown kind errors.
  EXPECT_FALSE(engine().VisualTopK("sift_bow", probe, 3).ok());
}

TEST_F(QueryEngineTest, VisualTopKAgreesWithScan) {
  ml::FeatureVector probe(4, 0.1);
  probe[1] = 1.0;
  auto approx = engine().VisualTopK("cnn", probe, 10);
  auto exact = engine().VisualTopKScan("cnn", probe, 10);
  ASSERT_TRUE(approx.ok());
  ASSERT_TRUE(exact.ok());
  ASSERT_EQ(exact->size(), 10u);
  // LSH recall on this small exact-match corpus should be high: compare
  // distance of last returned result.
  EXPECT_GE(approx->size(), 5u);
  EXPECT_NEAR((*approx)[0].visual_distance, (*exact)[0].visual_distance, 1e-9);
}

TEST_F(QueryEngineTest, CategoricalFiltersByLabelConfidenceSource) {
  CategoricalPredicate pred;
  pred.classification = "street_cleanliness";
  pred.label = "encampment";
  auto hits = engine().Categorical(pred);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 20u);
  pred.min_confidence = 0.8;  // only the later (higher-confidence) ones
  auto confident = engine().Categorical(pred);
  ASSERT_TRUE(confident.ok());
  EXPECT_LT(confident->size(), 20u);
  EXPECT_GT(confident->size(), 0u);
  pred.min_confidence = 0;
  pred.source = "manual";
  auto manual = engine().Categorical(pred);
  ASSERT_TRUE(manual.ok());
  EXPECT_TRUE(manual->empty());
  pred.label = "not_a_label";
  EXPECT_FALSE(engine().Categorical(pred).ok());
}

TEST_F(QueryEngineTest, TextualAndOrSemantics) {
  TextualPredicate tent_and;
  tent_and.keywords = {"tent", "street"};
  auto both = engine().Textual(tent_and);
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both->size(), 20u);
  TextualPredicate any;
  any.mode = TextualPredicate::Mode::kOr;
  any.keywords = {"tent", "clean"};
  auto either = engine().Textual(any);
  ASSERT_TRUE(either.ok());
  EXPECT_EQ(either->size(), 40u);
  TextualPredicate empty;
  EXPECT_FALSE(engine().Textual(empty).ok());
}

TEST_F(QueryEngineTest, TemporalRange) {
  auto first_ten = engine().Temporal(1546300800, 1546300800 + 9 * 3600);
  ASSERT_TRUE(first_ten.ok());
  EXPECT_EQ(first_ten->size(), 10u);
  EXPECT_FALSE(engine().Temporal(100, 50).ok());
}

TEST_F(QueryEngineTest, TemporalBoundariesAreInclusive) {
  // Fixture capture times are 1546300800 + i*3600. Both window boundaries
  // are part of the result ([begin, end] closed on both ends).
  const Timestamp t0 = 1546300800;
  auto exact = engine().Temporal(t0, t0);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->size(), 1u);
  auto both_ends = engine().Temporal(t0 + 3600, t0 + 2 * 3600);
  ASSERT_TRUE(both_ends.ok());
  EXPECT_EQ(both_ends->size(), 2u);
  // One second short of a capture time excludes it.
  auto short_of = engine().Temporal(t0 + 1, t0 + 3600 - 1);
  ASSERT_TRUE(short_of.ok());
  EXPECT_TRUE(short_of->empty());
  // An inverted range is InvalidArgument, not an empty (or full) scan —
  // even when inverted by a single tick.
  auto inverted = engine().Temporal(t0 + 1, t0);
  ASSERT_FALSE(inverted.ok());
  EXPECT_EQ(inverted.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(QueryEngineTest, HybridRejectsInvertedTemporal) {
  // Before the fix the planner silently treated an inverted window as
  // non-selective; it must fail the whole query up front instead.
  HybridQuery q;
  TextualPredicate tp;
  tp.keywords = {"tent"};
  q.textual = tp;
  q.temporal = TemporalPredicate{1546300800 + 3600, 1546300800};
  auto hits = engine().Execute(q);
  ASSERT_FALSE(hits.ok());
  EXPECT_EQ(hits.status().code(), StatusCode::kInvalidArgument);
}

// ---------- hybrid ----------

TEST_F(QueryEngineTest, HybridSpatialTextual) {
  HybridQuery q;
  SpatialPredicate sp;
  sp.kind = SpatialPredicate::Kind::kRange;
  sp.range = fixture().region;
  q.spatial = sp;
  TextualPredicate tp;
  tp.keywords = {"tent"};
  q.textual = tp;
  auto hits = engine().Execute(q);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 20u);
  EXPECT_FALSE(engine().last_plan().empty());
}

TEST_F(QueryEngineTest, HybridCategoricalTemporal) {
  HybridQuery q;
  CategoricalPredicate cp;
  cp.classification = "street_cleanliness";
  cp.label = "encampment";
  q.categorical = cp;
  q.temporal = TemporalPredicate{1546300800, 1546300800 + 9 * 3600};
  auto hits = engine().Execute(q);
  ASSERT_TRUE(hits.ok());
  // Even ids among the first 10 images -> 5.
  EXPECT_EQ(hits->size(), 5u);
}

TEST_F(QueryEngineTest, HybridVisualTopKWithCategoricalFilter) {
  HybridQuery q;
  VisualPredicate vp;
  vp.feature_kind = "cnn";
  vp.feature = ml::FeatureVector(4, 0.1);
  vp.feature[0] = 1.0;
  vp.k = 5;
  q.visual = vp;
  CategoricalPredicate cp;
  cp.classification = "street_cleanliness";
  cp.label = "encampment";
  q.categorical = cp;
  auto hits = engine().Execute(q);
  ASSERT_TRUE(hits.ok());
  EXPECT_LE(hits->size(), 5u);
  // Every hit must be annotated encampment (even id).
  for (const auto& h : *hits) {
    auto label = fixture().tvdp.GetLabel(h.image_id, "street_cleanliness");
    ASSERT_TRUE(label.ok());
    EXPECT_EQ(*label, "encampment");
  }
  // Results sorted by visual distance.
  for (size_t i = 1; i < hits->size(); ++i) {
    EXPECT_GE((*hits)[i].visual_distance, (*hits)[i - 1].visual_distance);
  }
}

TEST_F(QueryEngineTest, HybridReturnsEachImageOnce) {
  // An image with several stored vectors of the same kind used to surface
  // once per vector: the LSH/visual indexes keep one entry per insert, and
  // the hybrid executor verified (and emitted) every candidate entry.
  int64_t dup_id = fixture().ids[0];
  ml::FeatureVector near_first(4, 0.1);
  near_first[0] = 1.0;
  // Two more vectors for the same image, same kind, both close to probe.
  ml::FeatureVector v2 = near_first, v3 = near_first;
  v2[1] = 0.15;
  v3[2] = 0.15;
  ASSERT_TRUE(fixture().tvdp.StoreFeature(dup_id, "cnn", v2).ok());
  ASSERT_TRUE(fixture().tvdp.StoreFeature(dup_id, "cnn", v3).ok());

  auto count_of = [&](const std::vector<QueryHit>& hits, int64_t id) {
    return std::count_if(hits.begin(), hits.end(),
                         [&](const QueryHit& h) { return h.image_id == id; });
  };

  // Visual threshold: wide enough to pull in every stored vector.
  auto thr = engine().VisualThreshold("cnn", near_first, 10.0);
  ASSERT_TRUE(thr.ok());
  EXPECT_EQ(count_of(*thr, dup_id), 1) << "VisualThreshold duplicated a hit";

  // Visual top-k: k larger than the duplicate count.
  auto topk = engine().VisualTopK("cnn", near_first, 10);
  ASSERT_TRUE(topk.ok());
  EXPECT_EQ(count_of(*topk, dup_id), 1) << "VisualTopK duplicated a hit";

  // Hybrid visual + textual: the seed fans out over index entries but the
  // result must carry the image at most once.
  HybridQuery q;
  VisualPredicate vp;
  vp.kind = VisualPredicate::Kind::kThreshold;
  vp.feature_kind = "cnn";
  vp.feature = near_first;
  vp.threshold = 10.0;
  q.visual = vp;
  TextualPredicate tp;
  tp.keywords = {"tent"};
  q.textual = tp;
  auto hits = engine().Execute(q);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(count_of(*hits, dup_id), 1) << "hybrid Execute duplicated a hit";
  std::set<int64_t> unique_ids;
  for (const auto& h : *hits) unique_ids.insert(h.image_id);
  EXPECT_EQ(unique_ids.size(), hits->size());
}

TEST_F(QueryEngineTest, HybridRespectsLimit) {
  HybridQuery q;
  TextualPredicate tp;
  tp.keywords = {"street"};
  q.textual = tp;
  q.limit = 7;
  auto hits = engine().Execute(q);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 7u);
}

TEST_F(QueryEngineTest, EmptyHybridRejected) {
  EXPECT_FALSE(engine().Execute(HybridQuery{}).ok());
}

TEST_F(QueryEngineTest, PlannerSeedsWithMostSelectivePredicate) {
  // A very rare keyword should seed the plan rather than the broad
  // spatial range.
  ImageRecord rec;
  rec.uri = "special";
  rec.location = geo::GeoPoint{34.05, -118.25};
  rec.captured_at = 1546300800;
  rec.keywords = {"zebraunicorn"};
  auto id = fixture().tvdp.IngestImage(rec);
  ASSERT_TRUE(id.ok());

  HybridQuery q;
  SpatialPredicate sp;
  sp.kind = SpatialPredicate::Kind::kRange;
  sp.range = fixture().region;
  q.spatial = sp;
  TextualPredicate tp;
  tp.keywords = {"zebraunicorn"};
  q.textual = tp;
  auto hits = engine().Execute(q);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].image_id, *id);
  EXPECT_NE(engine().last_plan().find("seed=textual"), std::string::npos)
      << engine().last_plan();
}

TEST_F(QueryEngineTest, SpatialVisualTopKThroughHybridIndex) {
  ml::FeatureVector probe(4, 0.1);
  probe[0] = 1.0;
  auto hits = engine().SpatialVisualTopK(geo::GeoPoint{34.0, -118.3}, "cnn",
                                         probe, 5, 0.5);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 5u);
  EXPECT_FALSE(
      engine().SpatialVisualTopK(geo::GeoPoint{34.0, -118.3}, "nope", probe,
                                 5, 0.5)
          .ok());
}

TEST_F(QueryEngineTest, ScoreConventionIsUniformAcrossFamilies) {
  // Every family agrees on "ascending, lower is better, 0 = boolean
  // membership", so hits from different operators can be merged and
  // re-ranked with one comparator.
  geo::GeoPoint probe{34.051, -118.256};
  auto knn = engine().SpatialKnn(probe, 5);
  ASSERT_TRUE(knn.ok());
  ASSERT_EQ(knn->size(), 5u);
  for (size_t i = 0; i < knn->size(); ++i) {
    // kNN scores are exact geodesic meters.
    int idx = -1;
    for (size_t j = 0; j < fixture().ids.size(); ++j) {
      if (fixture().ids[j] == (*knn)[i].image_id) idx = static_cast<int>(j);
    }
    ASSERT_GE(idx, 0);
    geo::GeoPoint loc{34.00 + (idx / 8) * 0.02, -118.30 + (idx % 8) * 0.0125};
    EXPECT_NEAR((*knn)[i].score, geo::HaversineMeters(probe, loc), 1e-6);
    if (i > 0) {
      EXPECT_GE((*knn)[i].score, (*knn)[i - 1].score);
    }
  }

  ml::FeatureVector vfeat(4, 0.1);
  vfeat[1] = 1.0;
  auto topk = engine().VisualTopK("cnn", vfeat, 5);
  ASSERT_TRUE(topk.ok());
  for (size_t i = 0; i < topk->size(); ++i) {
    // Visual scores are the L2 feature distance.
    EXPECT_DOUBLE_EQ((*topk)[i].score, (*topk)[i].visual_distance);
    if (i > 0) {
      EXPECT_GE((*topk)[i].score, (*topk)[i - 1].score);
    }
  }

  // Boolean-membership families report score 0.
  auto range = engine().SpatialRange(fixture().region);
  ASSERT_TRUE(range.ok());
  for (const auto& h : *range) EXPECT_EQ(h.score, 0.0);
  TextualPredicate tp;
  tp.keywords = {"street"};
  auto textual = engine().Textual(tp);
  ASSERT_TRUE(textual.ok());
  for (const auto& h : *textual) EXPECT_EQ(h.score, 0.0);

  // Hybrid with a visual conjunct: score is the visual distance and the
  // result comes back already ordered by it.
  HybridQuery q;
  VisualPredicate vp;
  vp.kind = VisualPredicate::Kind::kThreshold;
  vp.feature_kind = "cnn";
  vp.feature = vfeat;
  vp.threshold = 10.0;
  q.visual = vp;
  q.textual = tp;
  auto hybrid = engine().Execute(q);
  ASSERT_TRUE(hybrid.ok());
  ASSERT_FALSE(hybrid->empty());
  for (size_t i = 0; i < hybrid->size(); ++i) {
    EXPECT_DOUBLE_EQ((*hybrid)[i].score, (*hybrid)[i].visual_distance);
    if (i > 0) {
      EXPECT_GE((*hybrid)[i].score, (*hybrid)[i - 1].score);
    }
  }

  // Cross-family merge: one comparator ranks a mixed hit list without
  // per-family cases (membership hits sort ahead at score 0).
  std::vector<QueryHit> merged;
  merged.insert(merged.end(), knn->begin(), knn->end());
  merged.insert(merged.end(), topk->begin(), topk->end());
  merged.insert(merged.end(), textual->begin(), textual->end());
  std::sort(merged.begin(), merged.end(),
            [](const QueryHit& a, const QueryHit& b) {
              return a.score < b.score;
            });
  for (size_t i = 1; i < merged.size(); ++i) {
    EXPECT_GE(merged[i].score, merged[i - 1].score);
  }
}

TEST(QueryDescribeTest, ListsFamilies) {
  HybridQuery q;
  EXPECT_EQ(DescribeQuery(q), "empty");
  q.spatial = SpatialPredicate{};
  q.visual = VisualPredicate{};
  EXPECT_EQ(DescribeQuery(q), "spatial+visual");
}

}  // namespace
}  // namespace tvdp::query
