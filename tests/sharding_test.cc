#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/file.h"
#include "common/json.h"
#include "geo/fov.h"
#include "platform/api.h"
#include "platform/model_registry.h"
#include "platform/sharding.h"
#include "platform/tvdp.h"
#include "query/query.h"
#include "query/scatter_gather.h"

namespace tvdp::platform {
namespace {

using query::HybridQuery;
using query::QueryBudget;
using query::ShardOutcome;

constexpr Timestamp kT0 = 1546300800;
constexpr int kCorpus = 500;

/// The PR 5 planner-suite corpus: 500 images on a 20x25 grid with skewed
/// keyword / label / feature selectivities. Templated so the identical
/// ingest sequence can be replayed into an unsharded Tvdp and a
/// ShardManager (both expose the same acquisition surface).
template <typename P>
void BuildCorpus(P& p) {
  ASSERT_TRUE(p.RegisterClassification("scene", {"clean", "dirty"}).ok());
  for (int i = 0; i < kCorpus; ++i) {
    int row = i / 25, col = i % 25;
    ImageRecord rec;
    rec.uri = "img" + std::to_string(i);
    rec.location = geo::GeoPoint{34.00 + row * 0.004, -118.30 + col * 0.004};
    rec.captured_at = kT0 + i * 60;
    rec.keywords = {"city"};
    if (i % 5 == 0) rec.keywords.push_back("market");
    if (i % 50 == 0) rec.keywords.push_back("needle");
    auto id = p.IngestImage(rec);
    ASSERT_TRUE(id.ok()) << id.status();

    AnnotationRecord ann;
    ann.classification = "scene";
    ann.label = i % 4 == 0 ? "dirty" : "clean";
    ann.confidence = 0.5 + (i % 50) * 0.01;
    ann.machine = true;
    ASSERT_TRUE(p.AnnotateImage(*id, ann).ok());

    ml::FeatureVector feat(8, 0.0);
    feat[static_cast<size_t>(i % 8)] = 1.0;
    ASSERT_TRUE(p.StoreFeature(*id, "cnn", feat).ok());
  }
}

/// The corpus region and a 2x2 grid over it.
geo::BoundingBox CorpusRegion() {
  return geo::BoundingBox::FromCorners({34.00, -118.30}, {34.08, -118.204});
}

ShardManagerOptions GridOptions(int shards, int rows, int cols) {
  ShardManagerOptions opts;
  opts.shard_count = shards;
  opts.grid_rows = rows;
  opts.grid_cols = cols;
  opts.region = CorpusRegion();
  return opts;
}

/// The property-query mix from the planner suite (every pair plus the
/// all-family conjunction), as request JSON bodies so they exercise the
/// full API parse path.
std::vector<Json> PropertyRequests() {
  std::vector<Json> out;
  {
    Json q = Json::MakeObject();
    q["bbox"] = Json(Json::Array{33.99, -118.31, 34.09, -118.25});
    q["keywords"] = Json(Json::Array{"market"});
    out.push_back(q);
  }
  {
    Json q = Json::MakeObject();
    q["classification"] = "scene";
    q["label"] = "dirty";
    q["min_confidence"] = 0.7;
    q["time_begin"] = Json(static_cast<int64_t>(kT0));
    q["time_end"] = Json(static_cast<int64_t>(kT0 + 250 * 60));
    out.push_back(q);
  }
  {
    Json q = Json::MakeObject();
    q["feature"] = Json(Json::Array{0, 0, 0, 1, 0, 0, 0, 0});
    q["feature_kind"] = "cnn";
    q["threshold"] = 0.5;
    q["keywords"] = Json(Json::Array{"market", "needle"});
    q["keyword_mode"] = "or";
    out.push_back(q);
  }
  {
    Json q = Json::MakeObject();
    q["bbox"] = Json(Json::Array{33.99, -118.31, 34.09, -118.25});
    q["time_begin"] = Json(static_cast<int64_t>(kT0));
    q["time_end"] = Json(static_cast<int64_t>(kT0 + 250 * 60));
    q["classification"] = "scene";
    q["label"] = "dirty";
    q["min_confidence"] = 0.7;
    out.push_back(q);
  }
  {
    Json q = Json::MakeObject();  // all five families
    q["bbox"] = Json(Json::Array{33.99, -118.31, 34.09, -118.25});
    q["feature"] = Json(Json::Array{0, 0, 0, 1, 0, 0, 0, 0});
    q["feature_kind"] = "cnn";
    q["threshold"] = 0.5;
    q["classification"] = "scene";
    q["label"] = "clean";
    q["min_confidence"] = 0.7;
    q["keywords"] = Json(Json::Array{"market"});
    q["time_begin"] = Json(static_cast<int64_t>(kT0));
    q["time_end"] = Json(static_cast<int64_t>(kT0 + 250 * 60));
    out.push_back(q);
  }
  {
    Json q = Json::MakeObject();  // visual top-k ranking
    q["feature"] = Json(Json::Array{0, 1, 0, 0, 0, 0, 0, 0});
    q["feature_kind"] = "cnn";
    q["k"] = 7;
    out.push_back(q);
  }
  {
    Json q = Json::MakeObject();  // limit-capped filter
    q["keywords"] = Json(Json::Array{"needle"});
    q["limit"] = 4;
    out.push_back(q);
  }
  return out;
}

std::set<std::string> UrisOf(const ShardManager& m,
                             const std::vector<query::QueryHit>& hits) {
  std::set<std::string> out;
  for (const auto& h : hits) {
    auto row = m.ImageRowJson(h.image_id);
    EXPECT_TRUE(row.ok()) << row.status();
    if (row.ok()) out.insert((*row)["uri"].AsString());
  }
  return out;
}

// ---------------------------------------------------------------------
// Satellite: kInvalidArgument guards for degenerate shard configs.
// ---------------------------------------------------------------------

TEST(ShardingConfigTest, RejectsDegenerateConfigs) {
  {
    ShardManagerOptions o = GridOptions(0, 1, 1);
    auto m = ShardManager::Create(o);
    EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
  }
  {
    ShardManagerOptions o = GridOptions(1, 0, 1);  // empty grid
    auto m = ShardManager::Create(o);
    EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
  }
  {
    ShardManagerOptions o = GridOptions(1, 1, 0);
    auto m = ShardManager::Create(o);
    EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
  }
  {
    ShardManagerOptions o = GridOptions(1, 1, 1);
    o.region = geo::BoundingBox::Empty();
    auto m = ShardManager::Create(o);
    EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
  }
  {
    ShardManagerOptions o = GridOptions(5, 2, 2);  // 5 shards, 4 cells
    auto m = ShardManager::Create(o);
    EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
  }
  {
    ShardManagerOptions o = GridOptions(2, 2, 2);
    o.cell_assignments = {{1, 0}, {1, 1}};  // duplicate cell
    auto m = ShardManager::Create(o);
    EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
  }
  {
    ShardManagerOptions o = GridOptions(2, 2, 2);
    o.cell_assignments = {{7, 0}};  // cell out of range
    auto m = ShardManager::Create(o);
    EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
  }
  {
    ShardManagerOptions o = GridOptions(2, 2, 2);
    o.cell_assignments = {{0, 5}};  // shard out of range
    auto m = ShardManager::Create(o);
    EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
  }
  {
    ShardManagerOptions o = GridOptions(2, 2, 2);
    o.gather.per_shard_deadline_fraction = 0;
    auto m = ShardManager::Create(o);
    EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
  }
  {
    ShardManagerOptions o = GridOptions(2, 2, 2);
    o.gather.degraded_keep_fraction = 1.5;
    auto m = ShardManager::Create(o);
    EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
  }
  {
    ShardManagerOptions o = GridOptions(2, 2, 2);
    o.breaker.failure_threshold = 0;
    auto m = ShardManager::Create(o);
    EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ShardingConfigTest, ScatterGatherFrontDoorGuards) {
  // No shards at all is kInvalidArgument at the scatter-gather door.
  auto r = query::ScatterGather::Execute({}, nullptr, HybridQuery(), nullptr,
                                         QueryBudget(),
                                         query::ScatterGatherOptions());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardingConfigTest, LifecycleAndFaultGuards) {
  auto m = ShardManager::Create(GridOptions(2, 1, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;

  EXPECT_EQ(mgr.KillShard(-1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(mgr.KillShard(2).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(mgr.RecoverShard(2).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(mgr.SetShardFaults(2, {}).code(), StatusCode::kInvalidArgument);

  ShardFaultProfile bad;
  bad.crash_prob = 1.5;
  EXPECT_EQ(mgr.SetShardFaults(0, bad).code(), StatusCode::kInvalidArgument);
  bad = {};
  bad.slow_ms = -1;
  EXPECT_EQ(mgr.SetShardFaults(0, bad).code(), StatusCode::kInvalidArgument);

  // Lifecycle: recover-while-alive and double-kill are preconditions.
  EXPECT_EQ(mgr.RecoverShard(0).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(mgr.KillShard(0).ok());
  EXPECT_EQ(mgr.KillShard(0).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(mgr.RecoverShard(0).ok());

  // Routing guards: invalid location, negative ids.
  ImageRecord rec;
  rec.location = geo::GeoPoint{200.0, 0.0};
  EXPECT_EQ(mgr.IngestImage(rec).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(mgr.GetFeature(-1, "cnn").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(mgr.ImageRowJson(-3).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// Routing and global id encoding.
// ---------------------------------------------------------------------

TEST(ShardingRoutingTest, RoutesByLocationAndEncodesShardInId) {
  auto m = ShardManager::Create(GridOptions(4, 2, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  ASSERT_TRUE(mgr.RegisterClassification("scene", {"clean", "dirty"}).ok());

  // One image per quadrant of the 2x2 grid.
  const geo::GeoPoint quadrants[4] = {
      {34.01, -118.29},  // row 0, col 0 -> cell 0
      {34.01, -118.22},  // row 0, col 1 -> cell 1
      {34.07, -118.29},  // row 1, col 0 -> cell 2
      {34.07, -118.22},  // row 1, col 1 -> cell 3
  };
  for (int i = 0; i < 4; ++i) {
    const int expect_shard = mgr.ShardForLocation(quadrants[i]);
    ImageRecord rec;
    rec.uri = "quad" + std::to_string(i);
    rec.location = quadrants[i];
    auto id = mgr.IngestImage(rec);
    ASSERT_TRUE(id.ok()) << id.status();
    EXPECT_EQ(*id % 4, expect_shard);

    ml::FeatureVector feat(4, 0.0);
    feat[static_cast<size_t>(i)] = 1.0;
    ASSERT_TRUE(mgr.StoreFeature(*id, "cnn", feat).ok());
    auto back = mgr.GetFeature(*id, "cnn");
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(*back, feat);

    auto row = mgr.ImageRowJson(*id);
    ASSERT_TRUE(row.ok()) << row.status();
    EXPECT_EQ((*row)["id"].AsInt(), *id);
    EXPECT_EQ((*row)["uri"].AsString(), rec.uri);

    AnnotationRecord ann;
    ann.classification = "scene";
    ann.label = "clean";
    EXPECT_TRUE(mgr.AnnotateImage(*id, ann).ok());
  }
  EXPECT_EQ(mgr.image_count(), 4u);
}

// ---------------------------------------------------------------------
// Multi-shard equivalence against the unsharded engine.
// ---------------------------------------------------------------------

TEST(ShardingEquivalenceTest, FourShardsMatchUnshardedResults) {
  auto unsharded = Tvdp::Create();
  ASSERT_TRUE(unsharded.ok());
  BuildCorpus(*unsharded);

  auto m = ShardManager::Create(GridOptions(4, 2, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  BuildCorpus(**m);
  EXPECT_EQ((*m)->image_count(), static_cast<size_t>(kCorpus));

  ModelRegistry reg;
  ApiService api_flat(&*unsharded, &reg);
  // Translate the property requests through the same parser both stacks
  // use, then compare result URI sets (global ids differ by design).
  for (const Json& request : PropertyRequests()) {
    // Ranked/limited queries truncate across ties by id, and global ids
    // order differently than local ids — set equality holds only for the
    // untruncated filter queries; for the others the count must agree.
    const bool truncated = request.Has("limit") || request.Has("k");
    std::string key = api_flat.CreateApiKey("test");
    Json flat_env =
        api_flat.HandleEnvelope(key, "search_datasets", request);
    ASSERT_EQ(flat_env["status"].AsString(), "ok") << flat_env.Dump();

    // Re-parse into a HybridQuery via the manager's own API service.
    ModelRegistry reg2;
    ApiService api_sharded((*m).get(), &reg2);
    std::string key2 = api_sharded.CreateApiKey("test");
    Json sharded_env =
        api_sharded.HandleEnvelope(key2, "search_datasets", request);
    ASSERT_EQ(sharded_env["status"].AsString(), "ok") << sharded_env.Dump();

    EXPECT_EQ(flat_env["data"]["count"].AsInt(),
              sharded_env["data"]["count"].AsInt())
        << request.Dump();
    EXPECT_TRUE(sharded_env["data"]["coverage"]["complete"].AsBool())
        << sharded_env["data"]["coverage"].Dump();
    if (truncated) continue;

    std::set<std::string> flat_uris, sharded_uris;
    for (const Json& idj : flat_env["data"]["image_ids"].AsArray()) {
      auto row = unsharded->ImageRowJson(idj.AsInt());
      ASSERT_TRUE(row.ok());
      flat_uris.insert((*row)["uri"].AsString());
    }
    for (const Json& idj : sharded_env["data"]["image_ids"].AsArray()) {
      auto row = (*m)->ImageRowJson(idj.AsInt());
      ASSERT_TRUE(row.ok());
      sharded_uris.insert((*row)["uri"].AsString());
    }
    EXPECT_EQ(flat_uris, sharded_uris) << request.Dump();
  }
}

TEST(ShardingEquivalenceTest, RegionPruningSkipsDisjointShards) {
  auto m = ShardManager::Create(GridOptions(4, 2, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  BuildCorpus(**m);

  // A box inside the south-west quadrant: the other three shards must be
  // pruned (exactly — coverage stays complete) and the result correct.
  HybridQuery q;
  query::SpatialPredicate sp;
  sp.kind = query::SpatialPredicate::Kind::kRange;
  sp.range = geo::BoundingBox::FromCorners({34.005, -118.295}, {34.02, -118.27});
  q.spatial = sp;
  auto r = (*m)->ExecuteQuery(q);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->coverage.complete());
  EXPECT_FALSE(r->hits.empty());
  size_t pruned = 0;
  for (const auto& rep : r->coverage.reports) {
    if (rep.outcome == ShardOutcome::kPruned) ++pruned;
  }
  EXPECT_GE(pruned, 2u);
}

TEST(ShardingEquivalenceTest, ProvablyEmptyEstimatePrunesExactly) {
  auto m = ShardManager::Create(GridOptions(4, 2, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  BuildCorpus(**m);

  // "needle" appears every 50th image; some shards have no posting for a
  // keyword that exists nowhere — the textual estimate is provably zero
  // everywhere, so every shard is pruned and the empty result is exact.
  HybridQuery q;
  query::TextualPredicate tp;
  tp.keywords = {"no_such_keyword"};
  q.textual = tp;
  auto r = (*m)->ExecuteQuery(q);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->hits.empty());
  EXPECT_TRUE(r->coverage.complete());
  for (const auto& rep : r->coverage.reports) {
    EXPECT_EQ(rep.outcome, ShardOutcome::kPruned);
  }
}

TEST(ShardingEquivalenceTest, FovSpilloverStillFoundUnderRegionPruning) {
  ShardManagerOptions opts = GridOptions(2, 1, 2);
  auto m = ShardManager::Create(opts);
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;

  // Camera sits just west of the cell boundary (shard 0) but its FOV
  // points east across it; the target point lies in shard 1's cell. The
  // shard-0 prune region must include the FOV spillover or the probe
  // that actually holds the hit would be skipped.
  const geo::GeoPoint camera{34.04, -118.253};
  const geo::GeoPoint target{34.04, -118.2505};
  ASSERT_EQ(mgr.ShardForLocation(camera), 0);
  ASSERT_EQ(mgr.ShardForLocation(target), 1);

  ImageRecord rec;
  rec.uri = "boundary_cam";
  rec.location = camera;
  auto fov = geo::FieldOfView::Make(camera, 90.0, 60.0, 300.0);
  ASSERT_TRUE(fov.ok());
  rec.fov = *fov;
  auto id = mgr.IngestImage(rec);
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_EQ(*id % 2, 0);

  HybridQuery q;
  query::SpatialPredicate sp;
  sp.kind = query::SpatialPredicate::Kind::kVisibleAt;
  sp.point = target;
  q.spatial = sp;
  auto r = mgr.ExecuteQuery(q);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->hits.size(), 1u);
  EXPECT_EQ(r->hits[0].image_id, *id);
  // Shard 0 must have been probed (not pruned) thanks to FOV expansion.
  EXPECT_EQ(r->coverage.reports[0].outcome, ShardOutcome::kProbed);
}

// ---------------------------------------------------------------------
// Satellite: single-shard degenerate mode is byte-identical.
// ---------------------------------------------------------------------

TEST(ShardingSingleShardTest, ByteIdenticalSearchEnvelopes) {
  auto unsharded = Tvdp::Create();
  ASSERT_TRUE(unsharded.ok());
  BuildCorpus(*unsharded);

  auto m = ShardManager::Create(GridOptions(1, 1, 1));
  ASSERT_TRUE(m.ok()) << m.status();
  BuildCorpus(**m);

  ModelRegistry reg_flat, reg_sharded;
  ApiService api_flat(&*unsharded, &reg_flat);
  ApiService api_sharded((*m).get(), &reg_sharded);
  // Key derivation is deterministic per (owner, counter), so both
  // services issue the same key and the request bytes are identical.
  std::string key_flat = api_flat.CreateApiKey("prop");
  std::string key_sharded = api_sharded.CreateApiKey("prop");
  ASSERT_EQ(key_flat, key_sharded);

  for (const Json& request : PropertyRequests()) {
    Json flat = api_flat.HandleEnvelope(key_flat, "search_datasets", request);
    Json sharded =
        api_sharded.HandleEnvelope(key_sharded, "search_datasets", request);
    ASSERT_EQ(sharded["status"].AsString(), "ok") << sharded.Dump();
    // The sharded envelope adds exactly one field: the coverage object.
    ASSERT_TRUE(sharded["data"].Has("coverage"));
    sharded["data"].AsObject().erase("coverage");
    EXPECT_EQ(flat.Dump(), sharded.Dump()) << request.Dump();
  }

  // explain_query carries no coverage and must match outright.
  for (const Json& request : PropertyRequests()) {
    Json flat = api_flat.HandleEnvelope(key_flat, "explain_query", request);
    Json sharded =
        api_sharded.HandleEnvelope(key_sharded, "explain_query", request);
    EXPECT_EQ(flat.Dump(), sharded.Dump()) << request.Dump();
  }

  // download_datasets: global ids coincide with local ids when N == 1.
  Json dl = Json::MakeObject();
  dl["image_ids"] = Json(Json::Array{0, 7, 249, 499});
  EXPECT_EQ(api_flat.HandleEnvelope(key_flat, "download_datasets", dl).Dump(),
            api_sharded.HandleEnvelope(key_sharded, "download_datasets", dl)
                .Dump());
}

// ---------------------------------------------------------------------
// Partial results, breakers, hedging, shedding.
// ---------------------------------------------------------------------

TEST(ShardingFaultTest, DeadShardDegradesCoverageNotAvailability) {
  auto m = ShardManager::Create(GridOptions(4, 2, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  BuildCorpus(mgr);

  HybridQuery q;
  query::TextualPredicate tp;
  tp.keywords = {"city"};  // all 500 images, spread over all shards
  q.textual = tp;
  auto before = mgr.ExecuteQuery(q);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->hits.size(), static_cast<size_t>(kCorpus));

  ASSERT_TRUE(mgr.KillShard(2).ok());
  auto after = mgr.ExecuteQuery(q);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_FALSE(after->coverage.complete());
  EXPECT_EQ(after->coverage.FailedShards(), std::vector<int>{2});
  EXPECT_LT(after->hits.size(), before->hits.size());
  EXPECT_FALSE(after->hits.empty());
  // The surviving hits are still well-ordered (ascending image id for a
  // pure filter) and none of them belong to the dead shard.
  for (size_t i = 1; i < after->hits.size(); ++i) {
    EXPECT_LT(after->hits[i - 1].image_id, after->hits[i].image_id);
  }
  for (const auto& h : after->hits) EXPECT_NE(h.image_id % 4, 2);
}

TEST(ShardingFaultTest, BreakerOpensHalfOpensAndRecloses) {
  auto clock = std::make_shared<double>(0.0);
  ShardManagerOptions opts = GridOptions(2, 1, 2);
  opts.now_ms = [clock] { return *clock; };
  opts.breaker.failure_threshold = 3;
  opts.breaker.open_cooldown_ms = 500;
  auto m = ShardManager::Create(opts);
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  BuildCorpus(mgr);

  HybridQuery q;
  query::TextualPredicate tp;
  tp.keywords = {"city"};
  q.textual = tp;

  ASSERT_TRUE(mgr.KillShard(0).ok());
  // Three failed probes trip the breaker closed -> open.
  for (int i = 0; i < 3; ++i) {
    auto r = mgr.ExecuteQuery(q);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->coverage.FailedShards(), std::vector<int>{0});
  }
  EXPECT_EQ(mgr.breaker_state(0), edge::CircuitState::kOpen);

  // While open, the shard is skipped without being probed at all.
  auto blocked = mgr.ExecuteQuery(q);
  ASSERT_TRUE(blocked.ok());
  EXPECT_EQ(blocked->coverage.reports[0].outcome, ShardOutcome::kBreakerOpen);
  EXPECT_EQ(blocked->coverage.reports[0].attempts, 0);

  // Recovery alone does not re-admit: the cooldown must elapse, then the
  // half-open state admits a single probe whose success closes the
  // circuit and restores full coverage.
  ASSERT_TRUE(mgr.RecoverShard(0).ok());
  *clock += 600;
  auto probe = mgr.ExecuteQuery(q);
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE(probe->coverage.complete()) << probe->coverage.ToJson().Dump();
  EXPECT_EQ(probe->hits.size(), static_cast<size_t>(kCorpus));
  EXPECT_EQ(mgr.breaker_state(0), edge::CircuitState::kClosed);
}

TEST(ShardingFaultTest, HedgedProbesBeatTransientCrashes) {
  // Two managers with identical fault seeds; only hedging differs.
  auto make = [](bool hedging) {
    ShardManagerOptions opts = GridOptions(2, 1, 2);
    opts.breakers = false;  // isolate the hedging effect
    opts.gather.hedging = hedging;
    opts.fault_seed = 7;
    auto m = ShardManager::Create(opts);
    EXPECT_TRUE(m.ok());
    BuildCorpus(**m);
    ShardFaultProfile faults;
    faults.crash_prob = 0.4;  // transient: each attempt re-draws
    EXPECT_TRUE((*m)->SetShardFaults(0, faults).ok());
    return std::move(m).value();
  };
  auto hedged = make(true);
  auto naive = make(false);

  HybridQuery q;
  query::TextualPredicate tp;
  tp.keywords = {"city"};
  q.textual = tp;

  int hedged_failures = 0, naive_failures = 0;
  for (int i = 0; i < 40; ++i) {
    auto rh = hedged->ExecuteQuery(q);
    ASSERT_TRUE(rh.ok());
    if (!rh->coverage.FailedShards().empty()) ++hedged_failures;
    auto rn = naive->ExecuteQuery(q);
    ASSERT_TRUE(rn.ok());
    if (!rn->coverage.FailedShards().empty()) ++naive_failures;
  }
  EXPECT_GT(naive_failures, 0);
  EXPECT_LT(hedged_failures, naive_failures);
}

TEST(ShardingFaultTest, DegradedBudgetShedsLowSelectivityShardsFirst) {
  auto m = ShardManager::Create(GridOptions(4, 2, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  BuildCorpus(mgr);

  // "market" density is uniform, so make the query textual "city" (every
  // shard matches) and rely on per-shard cardinality differences from the
  // grid split; the contract under test: with a degraded budget exactly
  // ceil(4 * 0.5) = 2 shards are probed and the shed ones have the
  // lowest estimates.
  HybridQuery q;
  query::TextualPredicate tp;
  tp.keywords = {"city"};
  q.textual = tp;
  auto r = mgr.ExecuteQuery(q, nullptr, QueryBudget(),
                            /*shed_shards_degraded=*/true);
  ASSERT_TRUE(r.ok()) << r.status();
  std::vector<const query::ShardReport*> shed, probed;
  for (const auto& rep : r->coverage.reports) {
    if (rep.outcome == ShardOutcome::kShed) shed.push_back(&rep);
    if (rep.outcome == ShardOutcome::kProbed) probed.push_back(&rep);
  }
  EXPECT_EQ(probed.size(), 2u);
  EXPECT_EQ(shed.size(), 2u);
  EXPECT_FALSE(r->coverage.complete());
  for (const auto* s : shed) {
    for (const auto* p : probed) {
      EXPECT_LE(s->estimated_rows, p->estimated_rows);
    }
  }
  EXPECT_FALSE(r->hits.empty());
}

TEST(ShardingFaultTest, AllShardsDownIsUnavailableWithRetryHint) {
  auto m = ShardManager::Create(GridOptions(2, 1, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  BuildCorpus(mgr);
  ASSERT_TRUE(mgr.KillShard(0).ok());
  ASSERT_TRUE(mgr.KillShard(1).ok());

  HybridQuery q;
  query::TextualPredicate tp;
  tp.keywords = {"city"};
  q.textual = tp;
  auto r = mgr.ExecuteQuery(q);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST(ShardingFaultTest, ApiEnvelopeCarriesCoverageWithFailedShards) {
  auto m = ShardManager::Create(GridOptions(4, 2, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  BuildCorpus(**m);
  ASSERT_TRUE((*m)->KillShard(1).ok());

  ModelRegistry reg;
  ApiService api((*m).get(), &reg);
  std::string key = api.CreateApiKey("ops");
  Json request = Json::MakeObject();
  request["keywords"] = Json(Json::Array{"city"});
  Json env = api.HandleEnvelope(key, "search_datasets", request);
  ASSERT_EQ(env["status"].AsString(), "ok") << env.Dump();
  const Json& cov = env["data"]["coverage"];
  EXPECT_FALSE(cov["complete"].AsBool());
  ASSERT_EQ(cov["failed_shards"].size(), 1u);
  EXPECT_EQ(cov["failed_shards"].AsArray()[0].AsInt(), 1);
  EXPECT_GT(env["data"]["count"].AsInt(), 0);
}

TEST(ShardingFaultTest, PlatformStatsExposesPerShardState) {
  auto m = ShardManager::Create(GridOptions(2, 1, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  BuildCorpus(**m);
  ModelRegistry reg;
  ApiService api((*m).get(), &reg);
  std::string key = api.CreateApiKey("ops");

  Json request = Json::MakeObject();
  request["keywords"] = Json(Json::Array{"city"});
  ASSERT_EQ(api.HandleEnvelope(key, "search_datasets", request)["status"]
                .AsString(),
            "ok");

  Json env = api.HandleEnvelope(key, "platform_stats", Json::MakeObject());
  ASSERT_EQ(env["status"].AsString(), "ok") << env.Dump();
  const Json& data = env["data"];
  EXPECT_TRUE(data["sharded"].AsBool());
  EXPECT_EQ(data["images"].AsInt(), kCorpus);
  const Json& shards = data["shards"];
  EXPECT_EQ(shards["shard_count"].AsInt(), 2);
  ASSERT_EQ(shards["shards"].size(), 2u);
  for (const Json& s : shards["shards"].AsArray()) {
    EXPECT_TRUE(s.Has("breaker"));
    EXPECT_TRUE(s.Has("wal_bytes"));
    EXPECT_TRUE(s.Has("probe_p50_ms"));
    EXPECT_TRUE(s.Has("probe_p99_ms"));
    EXPECT_EQ(s["breaker"].AsString(), "closed");
    EXPECT_GT(s["probes"].AsInt(), 0);
    EXPECT_TRUE(s["alive"].AsBool());
  }
}

// ---------------------------------------------------------------------
// Online recovery via WAL replay (kill -> query -> recover -> query).
// ---------------------------------------------------------------------

TEST(ShardingRecoveryTest, KilledDurableShardRecoversViaWalReplay) {
  std::string dir = ::testing::TempDir() + "tvdp_shardXXXXXX";
  ASSERT_NE(mkdtemp(dir.data()), nullptr);

  auto clock = std::make_shared<double>(0.0);
  ShardManagerOptions opts = GridOptions(2, 1, 2);
  opts.base_path = dir;
  opts.now_ms = [clock] { return *clock; };
  opts.breaker.failure_threshold = 1;  // first failure trips the breaker
  opts.breaker.open_cooldown_ms = 500;
  auto m = ShardManager::Create(opts);
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;

  ASSERT_TRUE(mgr.RegisterClassification("scene", {"clean", "dirty"}).ok());
  for (int i = 0; i < 40; ++i) {
    ImageRecord rec;
    rec.uri = "dur" + std::to_string(i);
    rec.location =
        geo::GeoPoint{34.01 + (i % 4) * 0.01, -118.29 + (i % 8) * 0.012};
    rec.captured_at = kT0 + i;
    rec.keywords = {"city"};
    ASSERT_TRUE(mgr.IngestImage(rec).ok());
  }
  EXPECT_EQ(mgr.replayed_records(0), 0u);  // fresh stores: nothing replayed

  HybridQuery q;
  query::TextualPredicate tp;
  tp.keywords = {"city"};
  q.textual = tp;
  auto baseline = mgr.ExecuteQuery(q);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(baseline->coverage.complete());
  const std::set<std::string> expect = UrisOf(mgr, baseline->hits);
  EXPECT_EQ(expect.size(), 40u);

  // Kill: the engine is dropped with no checkpoint, so every committed
  // record lives only in the WAL.
  ASSERT_TRUE(mgr.KillShard(0).ok());
  EXPECT_FALSE(mgr.shard_alive(0));
  auto partial = mgr.ExecuteQuery(q);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->coverage.FailedShards(), std::vector<int>{0});
  EXPECT_LT(partial->hits.size(), 40u);
  EXPECT_EQ(mgr.breaker_state(0), edge::CircuitState::kOpen);

  // Recover online: reopen from snapshot + WAL, no platform restart.
  ASSERT_TRUE(mgr.RecoverShard(0).ok());
  EXPECT_TRUE(mgr.shard_alive(0));
  EXPECT_GT(mgr.replayed_records(0), 0u);

  // Still gated: the breaker must walk open -> half-open -> closed.
  auto still_blocked = mgr.ExecuteQuery(q);
  ASSERT_TRUE(still_blocked.ok());
  EXPECT_EQ(still_blocked->coverage.reports[0].outcome,
            ShardOutcome::kBreakerOpen);

  *clock += 600;  // past the cooldown: half-open admits one probe
  auto recovered = mgr.ExecuteQuery(q);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->coverage.complete())
      << recovered->coverage.ToJson().Dump();
  EXPECT_EQ(mgr.breaker_state(0), edge::CircuitState::kClosed);
  EXPECT_EQ(UrisOf(mgr, recovered->hits), expect);
}

TEST(ShardingRecoveryTest, WalWriteFaultsSurfaceWithoutCorruptingShard) {
  std::string dir = ::testing::TempDir() + "tvdp_shardioXXXXXX";
  ASSERT_NE(mkdtemp(dir.data()), nullptr);

  FaultInjectingFs faulty(Fs::Default());
  ShardManagerOptions opts = GridOptions(2, 1, 2);
  opts.base_path = dir;
  opts.durable.fs = &faulty;
  auto m = ShardManager::Create(opts);
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;

  ImageRecord rec;
  rec.uri = "pre";
  rec.location = geo::GeoPoint{34.01, -118.29};
  rec.keywords = {"city"};
  ASSERT_TRUE(mgr.IngestImage(rec).ok());
  const size_t before = mgr.image_count();

  // The injected I/O fault aborts the WAL commit; the ingest fails loudly
  // instead of acknowledging an unpersisted write.
  faulty.InjectErrors(1);
  rec.uri = "faulted";
  auto failed = mgr.IngestImage(rec);
  EXPECT_FALSE(failed.ok());
  EXPECT_GT(faulty.injected_faults(), 0);
  EXPECT_EQ(mgr.image_count(), before);

  // With the disk healthy again the shard keeps serving and accepting.
  rec.uri = "post";
  ASSERT_TRUE(mgr.IngestImage(rec).ok());
  HybridQuery q;
  query::TextualPredicate tp;
  tp.keywords = {"city"};
  q.textual = tp;
  auto r = mgr.ExecuteQuery(q);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->coverage.complete());
  EXPECT_EQ(r->hits.size(), before + 1);
}

// ---------------------------------------------------------------------
// Stress: concurrent queries during kill/recover cycles (the tier-1
// ShardingStress.{asan,tsan} targets run exactly this suite).
// ---------------------------------------------------------------------

TEST(ShardingStressTest, ConcurrentQueriesDuringKillRecoverCycles) {
  auto m = ShardManager::Create(GridOptions(4, 2, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  BuildCorpus(mgr);

  std::atomic<bool> stop{false};
  std::atomic<int> queries{0}, answered{0}, malformed{0};

  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&, w] {
      HybridQuery q;
      query::TextualPredicate tp;
      tp.keywords = {w % 2 == 0 ? "city" : "market"};
      q.textual = tp;
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = mgr.ExecuteQuery(q);
        ++queries;
        if (r.ok()) {
          ++answered;
          // Structural invariant: every shard is accounted for exactly
          // once, whatever the kill/recover cycle did meanwhile.
          size_t accounted = r->coverage.ProbedShards().size() +
                             r->coverage.SkippedShards().size() +
                             r->coverage.FailedShards().size();
          if (accounted != 4u) ++malformed;
        } else if (r.status().code() != StatusCode::kUnavailable) {
          ++malformed;  // partial results may fail only as Unavailable
        }
      }
    });
  }
  std::thread ingester([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ImageRecord rec;
      rec.uri = "live" + std::to_string(i);
      rec.location =
          geo::GeoPoint{34.005 + (i % 19) * 0.004, -118.295 + (i % 23) * 0.004};
      rec.keywords = {"city"};
      auto id = mgr.IngestImage(rec);
      if (!id.ok() && id.status().code() != StatusCode::kUnavailable) {
        ++malformed;
      }
      ++i;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Kill/recover cycles over rotating shards while the fleet serves.
  for (int cycle = 0; cycle < 12; ++cycle) {
    int shard = cycle % 4;
    EXPECT_TRUE(mgr.KillShard(shard).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(mgr.RecoverShard(shard).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (auto& t : workers) t.join();
  ingester.join();

  EXPECT_GT(queries.load(), 0);
  EXPECT_GT(answered.load(), 0);
  EXPECT_EQ(malformed.load(), 0);
  // The platform survived: once the breaker cooldowns elapse, half-open
  // probes re-admit every recovered shard and coverage returns to full.
  HybridQuery q;
  query::TextualPredicate tp;
  tp.keywords = {"city"};
  q.textual = tp;
  bool full_coverage = false;
  for (int attempt = 0; attempt < 100 && !full_coverage; ++attempt) {
    auto final_r = mgr.ExecuteQuery(q);
    if (final_r.ok() && final_r->coverage.complete()) full_coverage = true;
    if (!full_coverage) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  EXPECT_TRUE(full_coverage);
}

// ---------------------------------------------------------------------
// Atomic cross-shard broadcasts: two-phase intent/commit, id-divergence
// detection, and crash reconciliation.
// ---------------------------------------------------------------------

/// Registers `extra` directly on one shard, bypassing the coordinator —
/// the id-skew the broadcast protocol must detect.
void SkewShard(ShardManager& mgr, int shard) {
  ASSERT_NE(mgr.shard(shard), nullptr);
  ASSERT_TRUE(
      mgr.shard(shard)->RegisterClassification("skew", {"x"}).ok());
}

TEST(BroadcastAtomicityTest, LegacyBroadcastIsBlindToIdDivergence) {
  // The pre-fix regression harness: with atomic broadcasts off, a skewed
  // shard silently assigns a different classification id and the
  // fire-and-forget loop reports success anyway.
  ShardManagerOptions opts = GridOptions(2, 1, 2);
  opts.atomic_broadcasts = false;
  auto m = ShardManager::Create(opts);
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  SkewShard(mgr, 1);

  auto id = mgr.RegisterClassification("scene", {"clean", "dirty"});
  ASSERT_TRUE(id.ok()) << id.status();  // the blind spot: no error
  auto id0 = mgr.shard(0)->ClassificationId("scene");
  auto id1 = mgr.shard(1)->ClassificationId("scene");
  ASSERT_TRUE(id0.ok());
  ASSERT_TRUE(id1.ok());
  EXPECT_NE(*id0, *id1);  // the fleet diverged and nobody noticed

  Json detail;
  Status s = mgr.VerifyClassificationConsistency(&detail);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_NE(s.message().find("shard"), std::string::npos);
}

TEST(BroadcastAtomicityTest, AtomicBroadcastDetectsIdDivergence) {
  auto m = ShardManager::Create(GridOptions(2, 1, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  SkewShard(mgr, 1);

  auto id = mgr.RegisterClassification("scene", {"clean", "dirty"});
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kDataLoss);
  // The divergent shard is named, and the broadcast is still resolved
  // (every shard applied; nothing is left pending).
  EXPECT_NE(id.status().message().find("shard"), std::string::npos);
  EXPECT_EQ(mgr.pending_broadcasts(0), 0u);
  EXPECT_EQ(mgr.pending_broadcasts(1), 0u);
  EXPECT_TRUE(mgr.shard(0)->ClassificationId("scene").ok());
  EXPECT_TRUE(mgr.shard(1)->ClassificationId("scene").ok());
}

TEST(BroadcastAtomicityTest, AgreementBroadcastCommitsCleanly) {
  auto m = ShardManager::Create(GridOptions(3, 1, 3));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;

  auto id = mgr.RegisterClassification("scene", {"clean", "dirty"});
  ASSERT_TRUE(id.ok()) << id.status();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(mgr.pending_broadcasts(i), 0u);
    auto sid = mgr.shard(i)->ClassificationId("scene");
    ASSERT_TRUE(sid.ok());
    EXPECT_EQ(*sid, *id);
  }
  EXPECT_TRUE(mgr.VerifyClassificationConsistency().ok());
  // Idempotent re-broadcast returns the same id.
  auto again = mgr.RegisterClassification("scene", {"clean", "dirty"});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *id);
}

TEST(BroadcastAtomicityTest, AbandonedBeforeAnyApplyRollsBack) {
  auto m = ShardManager::Create(GridOptions(2, 1, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;

  // Coordinator "crashes" after logging intents but before the first
  // apply: the classification must not exist anywhere afterwards.
  mgr.SetBroadcastHook([](const std::string& phase, int shard) {
    return !(phase == "apply" && shard == 0);
  });
  auto id = mgr.RegisterClassification("ghost", {"a"});
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(mgr.pending_broadcasts(0), 1u);
  EXPECT_EQ(mgr.pending_broadcasts(1), 1u);
  EXPECT_FALSE(mgr.shard(0)->ClassificationId("ghost").ok());

  mgr.SetBroadcastHook({});
  auto report = mgr.ReconcileBroadcasts();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ((*report)["rolled_back"].size(), 1u);
  EXPECT_EQ((*report)["completed"].size(), 0u);
  EXPECT_TRUE((*report)["consistent"].AsBool());
  EXPECT_EQ(mgr.pending_broadcasts(0), 0u);
  EXPECT_EQ(mgr.pending_broadcasts(1), 0u);
  EXPECT_FALSE(mgr.shard(0)->ClassificationId("ghost").ok());
  EXPECT_FALSE(mgr.shard(1)->ClassificationId("ghost").ok());
}

TEST(BroadcastAtomicityTest, AbandonedMidApplyCompletesForward) {
  auto m = ShardManager::Create(GridOptions(2, 1, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;

  // Crash after shard 0 applied: reconciliation must finish the job, not
  // roll back what shard 0 already holds.
  mgr.SetBroadcastHook([](const std::string& phase, int shard) {
    return !(phase == "apply" && shard == 1);
  });
  auto id = mgr.RegisterClassification("half", {"a", "b"});
  ASSERT_FALSE(id.ok());
  ASSERT_TRUE(mgr.shard(0)->ClassificationId("half").ok());
  ASSERT_FALSE(mgr.shard(1)->ClassificationId("half").ok());

  mgr.SetBroadcastHook({});
  auto report = mgr.ReconcileBroadcasts();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ((*report)["completed"].size(), 1u);
  EXPECT_EQ((*report)["rolled_back"].size(), 0u);
  EXPECT_TRUE((*report)["consistent"].AsBool());
  auto id0 = mgr.shard(0)->ClassificationId("half");
  auto id1 = mgr.shard(1)->ClassificationId("half");
  ASSERT_TRUE(id0.ok());
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(*id0, *id1);
  EXPECT_EQ(mgr.pending_broadcasts(0), 0u);
  EXPECT_EQ(mgr.pending_broadcasts(1), 0u);
}

TEST(BroadcastAtomicityTest, AbandonedBeforeCommitMarkersStillResolves) {
  auto m = ShardManager::Create(GridOptions(2, 1, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;

  // Applied everywhere, crashed before any commit marker: the commit is
  // re-derived from the applied evidence.
  mgr.SetBroadcastHook([](const std::string& phase, int shard) {
    return !(phase == "commit" && shard == 0);
  });
  auto id = mgr.RegisterClassification("done", {"a"});
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(mgr.pending_broadcasts(0), 1u);
  EXPECT_EQ(mgr.pending_broadcasts(1), 1u);

  mgr.SetBroadcastHook({});
  auto report = mgr.ReconcileBroadcasts();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ((*report)["completed"].size(), 1u);
  EXPECT_EQ(mgr.pending_broadcasts(0), 0u);
  EXPECT_EQ(mgr.pending_broadcasts(1), 0u);
  auto id0 = mgr.shard(0)->ClassificationId("done");
  auto id1 = mgr.shard(1)->ClassificationId("done");
  ASSERT_TRUE(id0.ok());
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(*id0, *id1);
}

TEST(BroadcastAtomicityTest, ReconcileEndpointReportsFleetState) {
  auto m = ShardManager::Create(GridOptions(2, 1, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ModelRegistry reg;
  ApiService api((*m).get(), &reg);
  std::string key = api.CreateApiKey("ops");

  Json env = api.HandleEnvelope(key, "reconcile", Json::MakeObject());
  ASSERT_EQ(env["status"].AsString(), "ok") << env.Dump();
  EXPECT_TRUE(env["data"]["consistent"].AsBool());
  EXPECT_EQ(env["data"]["completed"].size(), 0u);

  // Pending state shows up in platform_stats per shard.
  (*m)->SetBroadcastHook([](const std::string& phase, int) {
    return phase != "commit";
  });
  EXPECT_FALSE((*m)->RegisterClassification("p", {"a"}).ok());
  (*m)->SetBroadcastHook({});
  Json stats = api.HandleEnvelope(key, "platform_stats", Json::MakeObject());
  ASSERT_EQ(stats["status"].AsString(), "ok");
  EXPECT_TRUE(stats["data"]["shards"]["atomic_broadcasts"].AsBool());
  EXPECT_EQ(stats["data"]["shards"]["shards"]
                .AsArray()[0]["pending_broadcasts"]
                .AsInt(),
            1);

  env = api.HandleEnvelope(key, "reconcile", Json::MakeObject());
  ASSERT_EQ(env["status"].AsString(), "ok") << env.Dump();
  EXPECT_EQ(env["data"]["completed"].size(), 1u);
  EXPECT_TRUE(env["data"]["consistent"].AsBool());
}

// ---------------------------------------------------------------------
// Crash reconciliation with real shard kills and WAL replay.
// ---------------------------------------------------------------------

TEST(BroadcastRecoveryTest, ShardKilledMidBroadcastConvergesAfterWalReplay) {
  std::string dir = ::testing::TempDir() + "tvdp_bcastXXXXXX";
  ASSERT_NE(mkdtemp(dir.data()), nullptr);
  ShardManagerOptions opts = GridOptions(2, 1, 2);
  opts.base_path = dir;
  auto m = ShardManager::Create(opts);
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;

  // Identical pre-crash history on both shards, plus rows for the WAL to
  // replay on shard 1.
  ASSERT_TRUE(mgr.RegisterClassification("scene", {"clean", "dirty"}).ok());
  for (int i = 0; i < 10; ++i) {
    ImageRecord rec;
    rec.uri = "east" + std::to_string(i);
    rec.location = geo::GeoPoint{34.04, -118.21 - i * 0.0001};  // shard 1
    rec.keywords = {"city"};
    ASSERT_TRUE(mgr.IngestImage(rec).ok());
  }

  // Shard 1 dies between logging the intent and applying it: the intent
  // survives only in its broadcast log on disk.
  mgr.SetBroadcastHook([&mgr](const std::string& phase, int shard) {
    if (phase == "apply" && shard == 1) {
      EXPECT_TRUE(mgr.KillShard(1).ok());
      return false;
    }
    return true;
  });
  auto id = mgr.RegisterClassification("crash_task", {"a", "b"});
  ASSERT_FALSE(id.ok());
  mgr.SetBroadcastHook({});
  ASSERT_TRUE(mgr.shard(0)->ClassificationId("crash_task").ok());

  // With shard 1 down, reconciliation completes the live side and defers
  // the rest — it must NOT roll back while the evidence is offline.
  auto report = mgr.ReconcileBroadcasts();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ((*report)["rolled_back"].size(), 0u);
  EXPECT_EQ(mgr.pending_broadcasts(0), 0u);

  // Recovery replays shard 1's WAL, reloads the pending intent from its
  // broadcast log, and the reconciliation pass completes it forward.
  ASSERT_TRUE(mgr.RecoverShard(1).ok());
  EXPECT_GT(mgr.replayed_records(1), 0u);
  EXPECT_EQ(mgr.pending_broadcasts(1), 0u);
  auto id0 = mgr.shard(0)->ClassificationId("crash_task");
  auto id1 = mgr.shard(1)->ClassificationId("crash_task");
  ASSERT_TRUE(id0.ok());
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(*id0, *id1);  // identical ids, not just identical names
  // The whole table converges, not just the crashed broadcast.
  EXPECT_EQ(mgr.shard(0)->ClassificationTableJson().Dump(),
            mgr.shard(1)->ClassificationTableJson().Dump());
  EXPECT_TRUE(mgr.VerifyClassificationConsistency().ok());
}

TEST(BroadcastRecoveryTest, UnappliedIntentRolledBackAfterRecovery) {
  std::string dir = ::testing::TempDir() + "tvdp_bcastrbXXXXXX";
  ASSERT_NE(mkdtemp(dir.data()), nullptr);
  ShardManagerOptions opts = GridOptions(2, 1, 2);
  opts.base_path = dir;
  auto m = ShardManager::Create(opts);
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  ASSERT_TRUE(mgr.RegisterClassification("scene", {"clean"}).ok());

  // Shard 0 dies before ANY apply: the operation never happened anywhere,
  // but only shard 0's recovery can prove that.
  mgr.SetBroadcastHook([&mgr](const std::string& phase, int shard) {
    if (phase == "apply" && shard == 0) {
      EXPECT_TRUE(mgr.KillShard(0).ok());
      return false;
    }
    return true;
  });
  ASSERT_FALSE(mgr.RegisterClassification("ghost", {"a"}).ok());
  mgr.SetBroadcastHook({});

  // While shard 0 is down the intent must be deferred, not rolled back:
  // for all the coordinator knows, shard 0 applied it before dying.
  auto report = mgr.ReconcileBroadcasts();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ((*report)["rolled_back"].size(), 0u);
  EXPECT_EQ((*report)["deferred"].size(), 1u);
  EXPECT_EQ(mgr.pending_broadcasts(1), 1u);

  // Recovery proves shard 0 never applied it; the fleet rolls back.
  ASSERT_TRUE(mgr.RecoverShard(0).ok());
  EXPECT_EQ(mgr.pending_broadcasts(0), 0u);
  EXPECT_EQ(mgr.pending_broadcasts(1), 0u);
  EXPECT_FALSE(mgr.shard(0)->ClassificationId("ghost").ok());
  EXPECT_FALSE(mgr.shard(1)->ClassificationId("ghost").ok());
  EXPECT_EQ(mgr.shard(0)->ClassificationTableJson().Dump(),
            mgr.shard(1)->ClassificationTableJson().Dump());
  EXPECT_TRUE(mgr.VerifyClassificationConsistency().ok());
}

TEST(BroadcastRecoveryTest, StartupReconciliationAfterProcessCrash) {
  std::string dir = ::testing::TempDir() + "tvdp_bcastprXXXXXX";
  ASSERT_NE(mkdtemp(dir.data()), nullptr);
  ShardManagerOptions opts = GridOptions(2, 1, 2);
  opts.base_path = dir;
  {
    auto m = ShardManager::Create(opts);
    ASSERT_TRUE(m.ok()) << m.status();
    // Applied on every shard, crashed before any commit marker, then the
    // whole process dies.
    (*m)->SetBroadcastHook([](const std::string& phase, int) {
      return phase != "commit";
    });
    ASSERT_FALSE((*m)->RegisterClassification("boot", {"a"}).ok());
    EXPECT_EQ((*m)->pending_broadcasts(0), 1u);
  }
  // A fresh fleet over the same stores reconciles during Create, before
  // serving anything.
  auto m = ShardManager::Create(opts);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ((*m)->pending_broadcasts(0), 0u);
  EXPECT_EQ((*m)->pending_broadcasts(1), 0u);
  auto id0 = (*m)->shard(0)->ClassificationId("boot");
  auto id1 = (*m)->shard(1)->ClassificationId("boot");
  ASSERT_TRUE(id0.ok());
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(*id0, *id1);
  EXPECT_TRUE((*m)->VerifyClassificationConsistency().ok());
}

// ---------------------------------------------------------------------
// Satellite regressions: FOV margin across reopen, in-memory total loss.
// ---------------------------------------------------------------------

TEST(ShardingRecoveryTest, FovSpilloverMarginSurvivesDurableReopen) {
  std::string dir = ::testing::TempDir() + "tvdp_fovXXXXXX";
  ASSERT_NE(mkdtemp(dir.data()), nullptr);
  ShardManagerOptions opts = GridOptions(2, 1, 2);
  opts.base_path = dir;

  // Same geometry as FovSpilloverStillFoundUnderRegionPruning: camera in
  // shard 0, FOV reaching across the boundary into shard 1's cell.
  const geo::GeoPoint camera{34.04, -118.253};
  const geo::GeoPoint target{34.04, -118.2505};
  HybridQuery q;
  query::SpatialPredicate sp;
  sp.kind = query::SpatialPredicate::Kind::kVisibleAt;
  sp.point = target;
  q.spatial = sp;

  int64_t image_id = -1;
  {
    auto m = ShardManager::Create(opts);
    ASSERT_TRUE(m.ok()) << m.status();
    ImageRecord rec;
    rec.uri = "boundary_cam";
    rec.location = camera;
    auto fov = geo::FieldOfView::Make(camera, 90.0, 60.0, 300.0);
    ASSERT_TRUE(fov.ok());
    rec.fov = *fov;
    auto id = (*m)->IngestImage(rec);
    ASSERT_TRUE(id.ok()) << id.status();
    image_id = *id;
    auto r = (*m)->ExecuteQuery(q);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_EQ(r->hits.size(), 1u);
  }

  // Reopen: the prune margin must be recomputed from the recovered
  // catalog. Before the fix it silently reset to 0 and shard 0 was pruned
  // out of exactly the query that needs it.
  auto m = ShardManager::Create(opts);
  ASSERT_TRUE(m.ok()) << m.status();
  auto r = (*m)->ExecuteQuery(q);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->hits.size(), 1u) << "spillover image lost after reopen";
  EXPECT_EQ(r->hits[0].image_id, image_id);
  EXPECT_EQ(r->coverage.reports[0].outcome, ShardOutcome::kProbed);
}

TEST(ShardingRecoveryTest, InMemoryTotalLossCannotBeRecovered) {
  auto m = ShardManager::Create(GridOptions(2, 1, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;

  // Plain kill keeps the in-memory engine, so recovery revives it.
  ASSERT_TRUE(mgr.KillShard(0).ok());
  ASSERT_TRUE(mgr.RecoverShard(0).ok());
  EXPECT_TRUE(mgr.shard_alive(0));

  // Total loss drops the engine; there is no WAL behind an in-memory
  // shard, so RecoverShard must refuse instead of reviving a zombie that
  // silently lost every row.
  ASSERT_TRUE(mgr.KillShard(0, /*drop_state=*/true).ok());
  Status s = mgr.RecoverShard(0);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(mgr.shard_alive(0));
}

// ---------------------------------------------------------------------
// Stress: concurrent broadcasts racing kill/recover cycles (the tier-1
// BroadcastStress.{asan,tsan} targets run exactly this suite).
// ---------------------------------------------------------------------

TEST(BroadcastStressTest, ConcurrentBroadcastsVsKillRecoverConverge) {
  auto m = ShardManager::Create(GridOptions(4, 2, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  ASSERT_TRUE(mgr.RegisterClassification("scene", {"clean"}).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> committed{0}, rejected{0};

  std::vector<std::thread> broadcasters;
  for (int w = 0; w < 2; ++w) {
    broadcasters.emplace_back([&, w] {
      int n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::string name =
            "task_" + std::to_string(w) + "_" + std::to_string(n++ % 16);
        auto id = mgr.RegisterClassification(name, {"a", "b"});
        if (id.ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        } else {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)mgr.StatsJson();
      for (int i = 0; i < 4; ++i) (void)mgr.pending_broadcasts(i);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Kill/recover cycles racing the broadcast coordinator.
  for (int cycle = 0; cycle < 10; ++cycle) {
    int shard = cycle % 4;
    EXPECT_TRUE(mgr.KillShard(shard).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Status recovered = mgr.RecoverShard(shard);
    // Divergence is never acceptable here; transient FailedPrecondition
    // cannot happen (kill/recover run from this one thread).
    EXPECT_TRUE(recovered.ok()) << recovered.ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (auto& t : broadcasters) t.join();
  reader.join();
  EXPECT_GT(committed.load(), 0);

  // Quiesced: one reconciliation pass over the whole (live) fleet must
  // drain every pending intent and leave identical classification tables.
  auto report = mgr.ReconcileBroadcasts();
  ASSERT_TRUE(report.ok()) << report.status();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(mgr.pending_broadcasts(i), 0u) << "shard " << i;
  }
  Json detail;
  Status consistent = mgr.VerifyClassificationConsistency(&detail);
  EXPECT_TRUE(consistent.ok())
      << consistent.ToString() << "\n" << detail.Dump();
  const std::string table0 = mgr.shard(0)->ClassificationTableJson().Dump();
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(mgr.shard(i)->ClassificationTableJson().Dump(), table0);
  }
}

}  // namespace
}  // namespace tvdp::platform
