#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "geo/geo_point.h"
#include "ml/dataset.h"
#include "platform/tvdp.h"
#include "query/engine.h"
#include "query/plan.h"
#include "query/planner.h"
#include "query/query.h"

namespace tvdp::query {
namespace {

using platform::AnnotationRecord;
using platform::ImageRecord;
using platform::Tvdp;

/// Ground truth for one seeded image, kept outside the platform so the
/// brute-force oracle never touches the code under test.
struct TruthRow {
  int64_t id = 0;
  geo::GeoPoint loc;
  std::vector<std::string> keywords;
  Timestamp captured_at = 0;
  std::string label;
  double confidence = 0;
  ml::FeatureVector feature;
};

constexpr int kCorpus = 500;
constexpr Timestamp kT0 = 1546300800;

/// A platform pre-loaded with a deterministic 500-image corpus on a
/// 20x25 grid. Selectivities are deliberately skewed:
///  * every image has keyword "city";
///  * every 5th image has "market" (100 images);
///  * every 50th image has "needle" (10 images — the rare term);
///  * every 4th image is annotated "dirty" (125), the rest "clean";
///  * 8-d one-hot-by-(i%8) "cnn" features (63 exact matches per slot);
///  * capture times at one-minute intervals.
struct PlannerFixture {
  Tvdp tvdp;
  std::vector<TruthRow> truth;
  geo::BoundingBox region;

  static std::unique_ptr<PlannerFixture> Make() {
    auto created = Tvdp::Create();
    EXPECT_TRUE(created.ok());
    auto f = std::make_unique<PlannerFixture>(
        PlannerFixture{std::move(created).value(), {}, geo::BoundingBox()});
    f->region =
        geo::BoundingBox::FromCorners({34.00, -118.30}, {34.08, -118.20});
    EXPECT_TRUE(
        f->tvdp.RegisterClassification("scene", {"clean", "dirty"}).ok());
    for (int i = 0; i < kCorpus; ++i) {
      int row = i / 25, col = i % 25;
      TruthRow t;
      t.loc = geo::GeoPoint{34.00 + row * 0.004, -118.30 + col * 0.004};
      t.keywords = {"city"};
      if (i % 5 == 0) t.keywords.push_back("market");
      if (i % 50 == 0) t.keywords.push_back("needle");
      t.captured_at = kT0 + i * 60;
      t.label = i % 4 == 0 ? "dirty" : "clean";
      t.confidence = 0.5 + (i % 50) * 0.01;
      t.feature = ml::FeatureVector(8, 0.0);
      t.feature[static_cast<size_t>(i % 8)] = 1.0;

      ImageRecord rec;
      rec.uri = "img" + std::to_string(i);
      rec.location = t.loc;
      rec.captured_at = t.captured_at;
      rec.keywords = t.keywords;
      auto id = f->tvdp.IngestImage(rec);
      EXPECT_TRUE(id.ok()) << id.status();
      t.id = *id;

      AnnotationRecord ann;
      ann.classification = "scene";
      ann.label = t.label;
      ann.confidence = t.confidence;
      ann.machine = true;
      EXPECT_TRUE(f->tvdp.AnnotateImage(t.id, ann).ok());
      EXPECT_TRUE(f->tvdp.StoreFeature(t.id, "cnn", t.feature).ok());
      f->truth.push_back(std::move(t));
    }
    return f;
  }

  /// Brute-force oracle: evaluates every conjunct of `q` against the
  /// ground-truth rows, no indexes involved. Only handles the predicate
  /// shapes the property tests use (range / threshold / and-or keywords).
  std::set<int64_t> BruteForce(const HybridQuery& q) const {
    std::set<int64_t> out;
    for (const TruthRow& t : truth) {
      if (q.spatial) {
        EXPECT_EQ(q.spatial->kind, SpatialPredicate::Kind::kRange);
        if (!q.spatial->range.Contains(t.loc)) continue;
      }
      if (q.textual) {
        auto has = [&](const std::string& kw) {
          return std::find(t.keywords.begin(), t.keywords.end(), kw) !=
                 t.keywords.end();
        };
        bool ok = q.textual->mode == TextualPredicate::Mode::kAnd;
        for (const std::string& kw : q.textual->keywords) {
          if (q.textual->mode == TextualPredicate::Mode::kAnd) {
            ok = ok && has(kw);
          } else {
            ok = ok || has(kw);
          }
        }
        if (!ok) continue;
      }
      if (q.categorical) {
        if (t.label != q.categorical->label) continue;
        if (t.confidence < q.categorical->min_confidence) continue;
      }
      if (q.temporal) {
        if (t.captured_at < q.temporal->begin ||
            t.captured_at > q.temporal->end) {
          continue;
        }
      }
      if (q.visual) {
        EXPECT_EQ(q.visual->kind, VisualPredicate::Kind::kThreshold);
        if (ml::L2Distance(t.feature, q.visual->feature) >
            q.visual->threshold) {
          continue;
        }
      }
      out.insert(t.id);
    }
    return out;
  }
};

std::set<int64_t> IdSet(const std::vector<QueryHit>& hits) {
  std::set<int64_t> out;
  for (const QueryHit& h : hits) out.insert(h.image_id);
  return out;
}

std::vector<std::string> PresentFamilies(const HybridQuery& q) {
  std::vector<std::string> out;
  if (q.spatial) out.push_back("spatial");
  if (q.visual) out.push_back("visual");
  if (q.categorical) out.push_back("categorical");
  if (q.textual) out.push_back("textual");
  if (q.temporal) out.push_back("temporal");
  return out;
}

class PlannerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { fixture_ = PlannerFixture::Make().release(); }
  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }
  static QueryEngine& engine() { return fixture_->tvdp.query(); }
  static PlannerFixture& fixture() { return *fixture_; }
  static PlannerFixture* fixture_;
};
PlannerFixture* PlannerTest::fixture_ = nullptr;

/// The hybrid query mix the property tests sweep: every pair and the
/// all-families conjunction, built from skewed-selectivity predicates.
std::vector<HybridQuery> PropertyQueries(const PlannerFixture& f) {
  SpatialPredicate west;  // left half of the grid
  west.kind = SpatialPredicate::Kind::kRange;
  west.range = geo::BoundingBox::FromCorners({33.99, -118.31}, {34.09, -118.25});

  TextualPredicate market;
  market.keywords = {"market"};
  TextualPredicate market_or_needle;
  market_or_needle.mode = TextualPredicate::Mode::kOr;
  market_or_needle.keywords = {"market", "needle"};

  CategoricalPredicate dirty;
  dirty.classification = "scene";
  dirty.label = "dirty";
  dirty.min_confidence = 0.7;

  CategoricalPredicate clean;
  clean.classification = "scene";
  clean.label = "clean";
  clean.min_confidence = 0.7;

  TemporalPredicate first_half{kT0, kT0 + (kCorpus / 2) * 60};

  VisualPredicate near3;  // exact matches of the one-hot(3) slot
  near3.kind = VisualPredicate::Kind::kThreshold;
  near3.feature_kind = "cnn";
  near3.feature = ml::FeatureVector(8, 0.0);
  near3.feature[3] = 1.0;
  near3.threshold = 0.5;

  std::vector<HybridQuery> qs;
  {
    HybridQuery q;
    q.spatial = west;
    q.textual = market;
    qs.push_back(q);
  }
  {
    HybridQuery q;
    q.categorical = dirty;
    q.temporal = first_half;
    qs.push_back(q);
  }
  {
    HybridQuery q;
    q.visual = near3;
    q.textual = market_or_needle;
    qs.push_back(q);
  }
  {
    HybridQuery q;
    q.spatial = west;
    q.temporal = first_half;
    q.categorical = dirty;
    qs.push_back(q);
  }
  {
    HybridQuery q;  // all five families at once (a satisfiable conjunction:
                    // the one-hot(3) slot holds odd ids, which are "clean")
    q.spatial = west;
    q.visual = near3;
    q.categorical = clean;
    q.textual = market;
    q.temporal = first_half;
    qs.push_back(q);
  }
  (void)f;
  return qs;
}

// ---------- property: plan order never changes the result set ----------

TEST_F(PlannerTest, EveryForcedSeedMatchesBruteForce) {
  for (const HybridQuery& q : PropertyQueries(fixture())) {
    std::set<int64_t> expect = fixture().BruteForce(q);

    QueryPlan default_plan;
    auto base = engine().Execute(q, nullptr, QueryBudget(), &default_plan);
    ASSERT_TRUE(base.ok()) << base.status();
    EXPECT_EQ(IdSet(*base), expect)
        << "default plan diverged (seed=" << default_plan.seed_family << ")";

    for (const std::string& family : PresentFamilies(q)) {
      PlannerOptions options;
      options.force_seed = family;
      QueryPlan plan;
      auto hits = engine().Execute(q, nullptr, QueryBudget(), &plan, options);
      ASSERT_TRUE(hits.ok()) << hits.status() << " forcing seed " << family;
      EXPECT_EQ(plan.seed_family, family);
      EXPECT_EQ(IdSet(*hits), expect)
          << "seed=" << family << " changed the result set";
    }
  }
}

TEST_F(PlannerTest, ForcedSeedOfAbsentFamilyRejected) {
  HybridQuery q;
  TextualPredicate tp;
  tp.keywords = {"city"};
  q.textual = tp;
  PlannerOptions options;
  options.force_seed = "temporal";
  auto hits = engine().Execute(q, nullptr, QueryBudget(), nullptr, options);
  ASSERT_FALSE(hits.ok());
  EXPECT_EQ(hits.status().code(), StatusCode::kInvalidArgument);
}

// ---------- estimates ----------

TEST_F(PlannerTest, EstimatesTrackActualCardinalities) {
  // Temporal estimates are exact (order-statistic counting on the sorted
  // timestamp index); textual AND estimates are the minimum document
  // frequency, exact for a single term.
  HybridQuery q;
  TextualPredicate needle;
  needle.keywords = {"needle"};
  q.textual = needle;
  q.temporal = TemporalPredicate{kT0, kT0 + 99 * 60};  // first 100 images
  auto plan = engine().Explain(q);
  ASSERT_TRUE(plan.ok()) << plan.status();
  double textual_est = -1, temporal_est = -1;
  for (const ConjunctPlan& c : plan->conjuncts) {
    if (c.family == "textual") textual_est = c.estimated_rows;
    if (c.family == "temporal") temporal_est = c.estimated_rows;
  }
  EXPECT_DOUBLE_EQ(textual_est, 10.0);    // df("needle") = 10
  EXPECT_DOUBLE_EQ(temporal_est, 100.0);  // exact range count

  // The rare term must seed; temporal verifies.
  EXPECT_EQ(plan->seed_family, "textual");

  // Spatial estimates are heuristic (uniform density over node boxes) but
  // must stay within an order of magnitude on a uniform grid.
  HybridQuery sq;
  SpatialPredicate sp;
  sp.kind = SpatialPredicate::Kind::kRange;
  sp.range = fixture().region;
  sq.spatial = sp;
  TextualPredicate city;
  city.keywords = {"city"};
  sq.textual = city;
  auto splan = engine().Explain(sq);
  ASSERT_TRUE(splan.ok());
  double spatial_est = -1;
  for (const ConjunctPlan& c : splan->conjuncts) {
    if (c.family == "spatial") spatial_est = c.estimated_rows;
  }
  size_t actual = fixture().BruteForce([&] {
                    HybridQuery only;
                    only.spatial = sp;
                    return only;
                  }()).size();
  ASSERT_GT(actual, 0u);
  EXPECT_GT(spatial_est, static_cast<double>(actual) / 10.0);
  EXPECT_LT(spatial_est, static_cast<double>(actual) * 10.0);
}

TEST_F(PlannerTest, ExecutedPlanRecordsActualRows) {
  HybridQuery q;
  TextualPredicate needle;
  needle.keywords = {"needle"};
  q.textual = needle;
  q.temporal = TemporalPredicate{kT0, kT0 + 99 * 60};
  QueryPlan plan;
  auto hits = engine().Execute(q, nullptr, QueryBudget(), &plan);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(plan.executed);
  EXPECT_EQ(plan.seed_candidates, 10u);  // the 10 "needle" images
  // needle images are i % 50 == 0; the first 100 images hold i=0 and i=50.
  EXPECT_EQ(hits->size(), 2u);
  Json j = plan.ToJson();
  EXPECT_TRUE(j.Has("summary"));
  EXPECT_NE(j["summary"].AsString().find("seed=textual(10)"),
            std::string::npos)
      << j["summary"].AsString();
  // The Verify node on the spine carries the surviving-row count.
  const Json* node = &j["operators"];
  while (node->Has("children") && (*node)["op"].AsString() != "Verify") {
    node = &(*node)["children"].AsArray()[0];
  }
  ASSERT_EQ((*node)["op"].AsString(), "Verify");
  EXPECT_EQ((*node)["actual_rows"].AsInt(), 2);
}

// ---------- EXPLAIN ----------

TEST_F(PlannerTest, ExplainIsDeterministic) {
  for (const HybridQuery& q : PropertyQueries(fixture())) {
    auto a = engine().Explain(q);
    ASSERT_TRUE(a.ok()) << a.status();
    // Executing queries in between must not perturb later explains.
    ASSERT_TRUE(engine().Execute(q).ok());
    auto b = engine().Explain(q);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->ToJson().Dump(), b->ToJson().Dump());
    EXPECT_FALSE(a->executed);
    EXPECT_FALSE(a->ToJson().Has("summary"));
  }
}

TEST_F(PlannerTest, ExplainNeverTouchesLastPlan) {
  HybridQuery q;
  TextualPredicate tp;
  tp.keywords = {"market"};
  q.textual = tp;
  q.temporal = TemporalPredicate{kT0, kT0 + 10 * 60};
  ASSERT_TRUE(engine().Execute(q).ok());
  std::string sentinel = engine().last_plan();
  ASSERT_TRUE(engine().Explain(q).ok());
  EXPECT_EQ(engine().last_plan(), sentinel);
}

// ---------- budget ----------

TEST_F(PlannerTest, BudgetCapsCandidatesAndMarksPlan) {
  HybridQuery q;
  TextualPredicate tp;
  tp.keywords = {"market"};  // 100 candidates
  q.textual = tp;
  QueryBudget budget;
  budget.max_candidates = 7;
  QueryPlan plan;
  auto hits = engine().Execute(q, nullptr, budget, &plan);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 7u);
  EXPECT_TRUE(plan.degraded);
  EXPECT_EQ(plan.seed_candidates, 7u);
  EXPECT_EQ(plan.capped_from, 100u);
  EXPECT_NE(plan.LegacySummary().find("cap=7/100"), std::string::npos)
      << plan.LegacySummary();
  EXPECT_NE(plan.LegacySummary().find("degraded"), std::string::npos);
}

// ---------- degenerate arguments, uniformly through every door ----------

TEST_F(PlannerTest, DegenerateArgumentsRejectedEverywhere) {
  const geo::GeoPoint p{34.0, -118.25};
  const ml::FeatureVector probe(8, 0.1);
  const ml::FeatureVector empty_feature;

  // Single-family doors.
  EXPECT_EQ(engine().SpatialKnn(p, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine().SpatialKnn(p, -3).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine().VisualTopK("cnn", probe, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine().VisualTopK("cnn", empty_feature, 5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      engine().VisualThreshold("cnn", empty_feature, 0.5).status().code(),
      StatusCode::kInvalidArgument);
  TextualPredicate blank;
  blank.keywords = {""};
  EXPECT_EQ(engine().Textual(blank).status().code(),
            StatusCode::kInvalidArgument);

  // The hybrid front door applies identical guards before planning.
  {
    HybridQuery q;
    SpatialPredicate sp;
    sp.kind = SpatialPredicate::Kind::kKnn;
    sp.point = p;
    sp.k = 0;
    q.spatial = sp;
    EXPECT_EQ(engine().Execute(q).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(engine().Explain(q).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    HybridQuery q;
    VisualPredicate vp;
    vp.feature_kind = "cnn";
    vp.k = 0;
    vp.feature = probe;
    q.visual = vp;
    EXPECT_EQ(engine().Execute(q).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    HybridQuery q;
    VisualPredicate vp;
    vp.feature_kind = "cnn";
    vp.feature = empty_feature;
    q.visual = vp;
    EXPECT_EQ(engine().Execute(q).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(engine().Explain(q).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    HybridQuery q;
    q.textual = blank;
    EXPECT_EQ(engine().Execute(q).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(engine().Explain(q).status().code(),
              StatusCode::kInvalidArgument);
  }
}

// ---------- concurrent stress (also run under ASan/TSan as tier-1) ----------

class PlannerStressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { fixture_ = PlannerFixture::Make().release(); }
  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }
  static PlannerFixture* fixture_;
};
PlannerFixture* PlannerStressTest::fixture_ = nullptr;

TEST_F(PlannerStressTest, ConcurrentMixedSeedsAgree) {
  QueryEngine& engine = fixture_->tvdp.query();
  std::vector<HybridQuery> queries = PropertyQueries(*fixture_);
  std::vector<std::set<int64_t>> expect;
  expect.reserve(queries.size());
  for (const HybridQuery& q : queries) {
    expect.push_back(fixture_->BruteForce(q));
  }

  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int iter = 0; iter < kItersPerThread; ++iter) {
        size_t qi = static_cast<size_t>(w + iter) % queries.size();
        const HybridQuery& q = queries[qi];
        std::vector<std::string> families = PresentFamilies(q);
        PlannerOptions options;
        // Rotate through every seed order plus the planner's own choice.
        size_t pick = static_cast<size_t>(w * kItersPerThread + iter) %
                      (families.size() + 1);
        if (pick < families.size()) options.force_seed = families[pick];
        QueryPlan plan;
        auto hits =
            engine.Execute(q, nullptr, QueryBudget(), &plan, options);
        if (!hits.ok() || IdSet(*hits) != expect[qi]) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // Interleave explains: read-only planning must be safe alongside
        // concurrent execution.
        auto explain = engine.Explain(q);
        if (!explain.ok()) failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace tvdp::query
