// Overload-resilience suite: RequestContext semantics, cooperative
// cancellation in ParallelFor (instrumented work counter), the admission
// controller (rate limiting, LIFO shedding, staleness, degradation), and
// the API-level envelope contract under deadlines and shedding. Runs
// plain, under ASan and under TSan (tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/context.h"
#include "common/retry.h"
#include "common/thread_pool.h"
#include "platform/admission.h"
#include "platform/api.h"
#include "platform/model_registry.h"
#include "platform/tvdp.h"
#include "query/engine.h"
#include "query/query.h"

namespace tvdp {
namespace {

using platform::AdmissionController;
using platform::AdmissionOptions;
using platform::AdmissionTicket;
using platform::ApiService;
using platform::ImageRecord;
using platform::ModelRegistry;
using platform::OverloadState;
using platform::Priority;
using platform::Tvdp;

// ---------- RequestContext ----------

TEST(OverloadContextTest, BackgroundNeverFails) {
  RequestContext ctx = RequestContext::Background();
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.expired());
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_TRUE(ctx.Check().ok());
  EXPECT_TRUE(std::isinf(ctx.remaining_ms()));
}

TEST(OverloadContextTest, ZeroOrNegativeDeadlineIsExpired) {
  EXPECT_EQ(RequestContext::WithDeadlineMs(0).Check().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(RequestContext::WithDeadlineMs(-5).Check().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(RequestContext::WithDeadlineMs(60000).Check().ok());
}

TEST(OverloadContextTest, CancellationSharedAcrossCopies) {
  CancelToken token;
  RequestContext ctx = RequestContext::WithCancel(token);
  RequestContext copy = ctx;
  EXPECT_TRUE(copy.Check().ok());
  token.Cancel();
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
  EXPECT_EQ(copy.Check().code(), StatusCode::kCancelled);
}

TEST(OverloadContextTest, CancellationWinsOverExpiredDeadline) {
  CancelToken token;
  token.Cancel();
  RequestContext ctx = RequestContext::WithDeadlineMs(0).WithCancelToken(token);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
}

TEST(OverloadContextTest, WithDeadlineInTightensButNeverLoosens) {
  RequestContext loose = RequestContext::WithDeadlineMs(60000);
  EXPECT_EQ(loose.WithDeadlineIn(0).Check().code(),
            StatusCode::kDeadlineExceeded);
  RequestContext tight = RequestContext::WithDeadlineMs(0);
  EXPECT_EQ(tight.WithDeadlineIn(60000).Check().code(),
            StatusCode::kDeadlineExceeded);
  // Attaching a token keeps the deadline, and vice versa.
  CancelToken token;
  RequestContext both = loose.WithCancelToken(token).WithDeadlineIn(30000);
  EXPECT_TRUE(both.has_deadline());
  token.Cancel();
  EXPECT_EQ(both.Check().code(), StatusCode::kCancelled);
}

// ---------- cooperative ParallelFor ----------

TEST(OverloadParallelForTest, AlreadyFailedContextRunsNothing) {
  ThreadPool pool(2);
  std::atomic<size_t> work{0};
  Status s = pool.ParallelFor(RequestContext::WithDeadlineMs(0), 1000, 1,
                              [&](size_t begin, size_t end) {
                                work.fetch_add(end - begin);
                                return Status::OK();
                              });
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(work.load(), 0u);
}

TEST(OverloadParallelForTest, ContextVariantCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> seen(2000);
  Status s = pool.ParallelFor(RequestContext::Background(), seen.size(), 16,
                              [&](size_t begin, size_t end) {
                                for (size_t i = begin; i < end; ++i) {
                                  seen[i].fetch_add(1);
                                }
                                return Status::OK();
                              });
  ASSERT_TRUE(s.ok()) << s;
  for (const auto& count : seen) EXPECT_EQ(count.load(), 1);
}

TEST(OverloadParallelForTest, CancellationStopsWithinOneChunkPerThread) {
  // Geometry: 3 workers + the caller = 4 participants; with n = 4000 and
  // min_per_chunk = 1 the dynamic-cursor chunk size is
  // max(1, 4000 / (4 * 4)) = 250. After Cancel() becomes visible no new
  // chunk starts, so each participant finishes at most the chunk it is in
  // plus one fetched-but-unchecked chunk:
  //   bound = threshold + (participants + 1) * chunk = 50 + 5*250 = 1300.
  constexpr size_t kN = 4000;
  constexpr size_t kThreshold = 50;
  constexpr size_t kBound = 1300;
  ThreadPool pool(3);
  CancelToken token;
  RequestContext ctx = RequestContext::WithCancel(token);
  std::atomic<size_t> work{0};
  Status s = pool.ParallelFor(ctx, kN, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (work.fetch_add(1) == kThreshold) token.Cancel();
    }
    return Status::OK();
  });
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_GT(work.load(), kThreshold);  // it did run until the cancel
  EXPECT_LE(work.load(), kBound) << "cancelled ParallelFor kept executing";
}

TEST(OverloadParallelForTest, DeadlineExpiryStopsMidFlight) {
  ThreadPool pool(2);
  RequestContext ctx = RequestContext::WithDeadlineMs(5);
  std::atomic<size_t> work{0};
  // Each element sleeps ~1ms, so the 5ms deadline expires long before the
  // 10k-element range completes.
  Status s = pool.ParallelFor(ctx, 10000, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      work.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Status::OK();
  });
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(work.load(), 10000u);
}

// ---------- retry classification (satellite: hint-gated retries) ----------

TEST(OverloadRetryTest, ShedResponsesRetryableOnlyWithHint) {
  Status bare = Status::ResourceExhausted("queue full");
  EXPECT_FALSE(IsRetryableStatus(bare));
  EXPECT_FALSE(RetryAfterHintMs(bare).has_value());

  Status hinted = WithRetryAfterHint(bare, 120);
  EXPECT_TRUE(IsRetryableStatus(hinted));
  auto hint = RetryAfterHintMs(hinted);
  ASSERT_TRUE(hint.has_value());
  EXPECT_DOUBLE_EQ(*hint, 120);

  // The code-only overload stays permissive (edge retry policies budget
  // their own backoff); only the Status overload is hint-gated.
  EXPECT_TRUE(IsRetryableStatus(StatusCode::kResourceExhausted));
}

TEST(OverloadRetryTest, CancelledIsNeverRetryable) {
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kCancelled));
  EXPECT_FALSE(IsRetryableStatus(Status::Cancelled("caller went away")));
  EXPECT_TRUE(IsRetryableStatus(Status::DeadlineExceeded("slow")));
  EXPECT_TRUE(IsRetryableStatus(Status::Unavailable("down")));
}

TEST(OverloadRetryTest, HintSurvivesNegativeAndMalformedInput) {
  EXPECT_DOUBLE_EQ(*RetryAfterHintMs(WithRetryAfterHint(
                       Status::ResourceExhausted("x"), -5)),
                   0);
  EXPECT_FALSE(
      RetryAfterHintMs(Status::ResourceExhausted("[retry_after_ms=oops"))
          .has_value());
}

// ---------- admission controller ----------

TEST(OverloadAdmissionTest, AdmitsUnderCapacityAndCounts) {
  AdmissionController ctrl(AdmissionOptions{});
  auto t = ctrl.Admit("key", Priority::kInteractive);
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_FALSE(t->degraded());
  auto stats = ctrl.stats();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.in_flight, 1);
  t->Release();
  EXPECT_EQ(ctrl.stats().completed, 1u);
  EXPECT_EQ(ctrl.stats().in_flight, 0);
}

TEST(OverloadAdmissionTest, RateLimiterRejectsWithRetryAfterHint) {
  double fake_now = 0;
  AdmissionOptions opt;
  opt.rate_per_sec = 100;  // one token per 10ms
  opt.burst = 2;
  opt.now_ms = [&fake_now] { return fake_now; };
  AdmissionController ctrl(opt);

  ASSERT_TRUE(ctrl.Admit("k", Priority::kInteractive).ok());
  ASSERT_TRUE(ctrl.Admit("k", Priority::kInteractive).ok());
  auto rejected = ctrl.Admit("k", Priority::kInteractive);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  auto hint = RetryAfterHintMs(rejected.status());
  ASSERT_TRUE(hint.has_value());
  EXPECT_NEAR(*hint, 10, 1);
  EXPECT_TRUE(IsRetryableStatus(rejected.status()));
  EXPECT_EQ(ctrl.stats().rate_limited, 1u);

  // Buckets are per key: a different key is untouched.
  EXPECT_TRUE(ctrl.Admit("other", Priority::kInteractive).ok());

  fake_now += 10;  // one token refilled
  EXPECT_TRUE(ctrl.Admit("k", Priority::kInteractive).ok());
}

TEST(OverloadAdmissionTest, StaleWaiterIsShedWithHint) {
  AdmissionOptions opt;
  opt.max_concurrent = 1;
  opt.max_queue_interactive = 4;
  opt.max_queue_wait_ms = 40;
  AdmissionController ctrl(opt);
  auto held = ctrl.Admit("a", Priority::kInteractive);
  ASSERT_TRUE(held.ok());
  auto shed = ctrl.Admit("b", Priority::kInteractive);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(RetryAfterHintMs(shed.status()).has_value());
  EXPECT_EQ(ctrl.stats().shed_stale, 1u);
}

TEST(OverloadAdmissionTest, FullQueueShedsOldestWaiterLifo) {
  AdmissionOptions opt;
  opt.max_concurrent = 1;
  opt.max_queue_interactive = 1;
  opt.max_queue_wait_ms = 5000;
  AdmissionController ctrl(opt);
  auto held = ctrl.Admit("hold", Priority::kInteractive);
  ASSERT_TRUE(held.ok());

  auto first = std::async(std::launch::async, [&] {
    return ctrl.Admit("first", Priority::kInteractive);
  });
  while (ctrl.stats().queue_depth_interactive < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The queue (capacity 1) is full: this arrival displaces "first".
  auto second = std::async(std::launch::async, [&] {
    return ctrl.Admit("second", Priority::kInteractive);
  });
  auto displaced = first.get();
  ASSERT_FALSE(displaced.ok());
  EXPECT_EQ(displaced.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctrl.stats().shed_queue_full, 1u);

  held->Release();
  auto granted = second.get();
  ASSERT_TRUE(granted.ok()) << granted.status();
}

TEST(OverloadAdmissionTest, DeadlineAndCancellationWhileQueued) {
  AdmissionOptions opt;
  opt.max_concurrent = 1;
  opt.max_queue_wait_ms = 10000;
  AdmissionController ctrl(opt);
  auto held = ctrl.Admit("hold", Priority::kInteractive);
  ASSERT_TRUE(held.ok());

  auto expired =
      ctrl.Admit("d", Priority::kInteractive, RequestContext::WithDeadlineMs(30));
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ctrl.stats().expired, 1u);

  CancelToken token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.Cancel();
  });
  auto cancelled =
      ctrl.Admit("c", Priority::kInteractive, RequestContext::WithCancel(token));
  canceller.join();
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  EXPECT_FALSE(IsRetryableStatus(cancelled.status()));
  EXPECT_EQ(ctrl.stats().cancelled, 1u);
}

TEST(OverloadAdmissionTest, WaiterGrantedUnderPressureIsDegraded) {
  AdmissionOptions opt;
  opt.max_concurrent = 1;
  opt.max_queue_interactive = 8;
  opt.max_queue_batch = 8;
  opt.degrade_occupancy = 0.05;  // one waiter is enough to degrade
  opt.max_queue_wait_ms = 5000;
  AdmissionController ctrl(opt);
  auto held = ctrl.Admit("hold", Priority::kInteractive);
  ASSERT_TRUE(held.ok());

  auto older = std::async(std::launch::async, [&] {
    return ctrl.Admit("older", Priority::kInteractive);
  });
  while (ctrl.stats().queue_depth_interactive < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto newer = std::async(std::launch::async, [&] {
    return ctrl.Admit("newer", Priority::kInteractive);
  });
  while (ctrl.stats().queue_depth_interactive < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ctrl.state(), OverloadState::kDegraded);

  // Releasing the slot grants the NEWEST waiter. Both waiters were granted
  // out of a backlog — having had to queue is the overload signal — so
  // both run degraded, even the final one with nobody left behind it.
  held->Release();
  auto newer_ticket = newer.get();
  ASSERT_TRUE(newer_ticket.ok()) << newer_ticket.status();
  EXPECT_TRUE(newer_ticket->degraded());
  newer_ticket->Release();
  auto older_ticket = older.get();
  ASSERT_TRUE(older_ticket.ok()) << older_ticket.status();
  EXPECT_TRUE(older_ticket->degraded());
  older_ticket->Release();
  EXPECT_EQ(ctrl.stats().admitted_degraded, 2u);

  // With the backlog drained, an immediate grant is full fidelity again.
  auto calm = ctrl.Admit("calm", Priority::kInteractive);
  ASSERT_TRUE(calm.ok());
  EXPECT_FALSE(calm->degraded());
}

TEST(OverloadAdmissionTest, DegradedHoldKeepsCheapPlansAfterBacklogDrains) {
  double fake_now = 0;
  AdmissionOptions opt;
  opt.max_concurrent = 1;
  opt.max_queue_interactive = 8;
  opt.max_queue_batch = 8;
  opt.degraded_hold_ms = 100;
  opt.max_queue_wait_ms = 5000;
  opt.now_ms = [&fake_now] { return fake_now; };
  AdmissionController ctrl(opt);

  auto held = ctrl.Admit("hold", Priority::kInteractive);
  ASSERT_TRUE(held.ok());
  // A waiter queues (recording the backlog on the fake clock) and then
  // gives up on its own deadline, leaving the queues empty again.
  auto gone = ctrl.Admit("impatient", Priority::kInteractive,
                         RequestContext::WithDeadlineMs(5));
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kDeadlineExceeded);
  ASSERT_EQ(ctrl.stats().queue_depth_interactive, 0u);
  held->Release();

  // Inside the hold window the controller still reports kDegraded and an
  // immediate grant runs a cheap plan, even though nothing is queued.
  fake_now = 50;
  EXPECT_EQ(ctrl.state(), OverloadState::kDegraded);
  auto during_hold = ctrl.Admit("during", Priority::kInteractive);
  ASSERT_TRUE(during_hold.ok());
  EXPECT_TRUE(during_hold->degraded());
  during_hold->Release();

  // Past the hold window, full fidelity returns.
  fake_now = 201;
  EXPECT_EQ(ctrl.state(), OverloadState::kNormal);
  auto after_hold = ctrl.Admit("after", Priority::kInteractive);
  ASSERT_TRUE(after_hold.ok());
  EXPECT_FALSE(after_hold->degraded());
}

TEST(OverloadAdmissionTest, StatsJsonShape) {
  AdmissionController ctrl(AdmissionOptions{});
  { auto t = ctrl.Admit("k", Priority::kInteractive); }
  ctrl.RecordLatency("search_datasets", 12.5);
  ctrl.RecordLatency("search_datasets", 2.5);
  Json j = ctrl.StatsJson();
  EXPECT_EQ(j["admitted"].AsInt(), 1);
  EXPECT_EQ(j["completed"].AsInt(), 1);
  EXPECT_EQ(j["state"].AsString(), "normal");
  ASSERT_TRUE(j["endpoints"].Has("search_datasets"));
  EXPECT_EQ(j["endpoints"]["search_datasets"]["count"].AsInt(), 2);
  EXPECT_GE(j["endpoints"]["search_datasets"]["p99_ms"].AsDouble(),
            j["endpoints"]["search_datasets"]["p50_ms"].AsDouble());
}

// ---------- engine deadline/budget semantics ----------

class OverloadEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = Tvdp::Create();
    ASSERT_TRUE(t.ok());
    tvdp_ = std::make_unique<Tvdp>(std::move(*t));
    for (int i = 0; i < 24; ++i) {
      ImageRecord rec;
      rec.uri = "img" + std::to_string(i);
      rec.location = geo::GeoPoint{34.00 + (i / 8) * 0.01,
                                   -118.30 + (i % 8) * 0.0125};
      rec.captured_at = 1546300800 + i * 3600;
      rec.keywords = {"street", i % 2 == 0 ? "tent" : "clean"};
      auto id = tvdp_->IngestImage(rec);
      ASSERT_TRUE(id.ok()) << id.status();
      ml::FeatureVector feat(4, 0.1);
      feat[static_cast<size_t>(i % 4)] = 1.0;
      ASSERT_TRUE(tvdp_->StoreFeature(*id, "cnn", feat).ok());
    }
  }

  query::HybridQuery VisualQuery(int k) const {
    query::HybridQuery q;
    query::VisualPredicate vp;
    vp.kind = query::VisualPredicate::Kind::kTopK;
    vp.feature_kind = "cnn";
    vp.feature = ml::FeatureVector{1.0, 0.1, 0.1, 0.1};
    vp.k = k;
    q.visual = vp;
    return q;
  }

  std::unique_ptr<Tvdp> tvdp_;
};

TEST_F(OverloadEngineTest, ExpiredDeadlineRejectsBeforeTouchingIndexes) {
  query::QueryEngine& engine = tvdp_->query();
  // Plant a sentinel plan, then fail a different query on its deadline:
  // the plan must be untouched, proving the seed index never ran.
  query::HybridQuery textual;
  query::TextualPredicate tp;
  tp.keywords = {"tent"};
  textual.textual = tp;
  ASSERT_TRUE(engine.Execute(textual).ok());
  std::string sentinel = engine.last_plan();
  ASSERT_NE(sentinel.find("seed=textual"), std::string::npos);

  RequestContext expired = RequestContext::WithDeadlineMs(0);
  auto r = engine.Execute(VisualQuery(5), &expired);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine.last_plan(), sentinel);

  // Single-modality paths reject up front too.
  EXPECT_EQ(engine
                .VisualTopK("cnn", ml::FeatureVector{1, 0, 0, 0}, 3, &expired)
                .status()
                .code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine.SpatialKnn(geo::GeoPoint{34.0, -118.3}, 3, &expired)
                .status()
                .code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine.last_plan(), sentinel);
}

TEST_F(OverloadEngineTest, CancelledQueryReportsCancelled) {
  CancelToken token;
  token.Cancel();
  RequestContext ctx = RequestContext::WithCancel(token);
  auto r = tvdp_->ExecuteQuery(VisualQuery(5), &ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST_F(OverloadEngineTest, DegradedBudgetCapsPlanAndStillAnswers) {
  query::QueryBudget budget;
  budget.lsh_probes = 0;
  budget.max_candidates = 4;
  auto r = tvdp_->ExecuteQuery(VisualQuery(3), nullptr, budget);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_LE(r->size(), 4u);
  EXPECT_NE(tvdp_->query().last_plan().find("degraded"), std::string::npos)
      << tvdp_->query().last_plan();

  // Unbudgeted runs stay full fidelity.
  auto full = tvdp_->ExecuteQuery(VisualQuery(3));
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(tvdp_->query().last_plan().find("degraded"), std::string::npos);
}

// ---------- API integration ----------

class OverloadApiTest : public ::testing::Test {
 protected:
  void Init(AdmissionOptions opt, bool seed = true) {
    auto t = Tvdp::Create();
    ASSERT_TRUE(t.ok());
    tvdp_ = std::make_unique<Tvdp>(std::move(*t));
    registry_ = std::make_unique<ModelRegistry>();
    admission_ = std::make_unique<AdmissionController>(opt);
    api_ = std::make_unique<ApiService>(tvdp_.get(), registry_.get(),
                                        admission_.get());
    key_ = api_->CreateApiKey("lasan");
    if (!seed) return;
    for (int i = 0; i < 8; ++i) {
      Json req = Json::MakeObject();
      req["lat"] = 34.05 + i * 0.001;
      req["lon"] = -118.25;
      req["captured_at"] = 1546300800;
      auto resp = api_->HandleRequest(key_, "add_data", req);
      ASSERT_TRUE(resp.ok()) << resp.status();
    }
  }

  Json SearchRequest() const {
    Json search = Json::MakeObject();
    Json bbox = Json::MakeArray();
    bbox.Append(34.0);
    bbox.Append(-118.3);
    bbox.Append(34.1);
    bbox.Append(-118.2);
    search["bbox"] = std::move(bbox);
    return search;
  }

  std::unique_ptr<Tvdp> tvdp_;
  std::unique_ptr<ModelRegistry> registry_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<ApiService> api_;
  std::string key_;
};

TEST_F(OverloadApiTest, ExpiredDeadlineFieldYieldsRetryableEnvelope) {
  Init(AdmissionOptions{});
  Json req = SearchRequest();
  req["deadline_ms"] = 0;
  Json env = api_->HandleEnvelope(key_, "search_datasets", req);
  EXPECT_EQ(env["status"].AsString(), "error");
  EXPECT_EQ(env["code"].AsString(), "DeadlineExceeded");
  EXPECT_EQ(env["error_code"].AsInt(),
            static_cast<int>(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(env["retryable"].AsBool());
}

TEST_F(OverloadApiTest, ShedRequestCarriesRetryAfterHint) {
  AdmissionOptions opt;
  opt.max_concurrent = 1;
  opt.max_queue_interactive = 2;
  opt.max_queue_wait_ms = 40;
  Init(opt);
  auto held = admission_->Admit("occupier", Priority::kInteractive);
  ASSERT_TRUE(held.ok());
  Json env = api_->HandleEnvelope(key_, "search_datasets", SearchRequest());
  EXPECT_EQ(env["status"].AsString(), "error");
  EXPECT_EQ(env["code"].AsString(), "ResourceExhausted");
  EXPECT_EQ(env["error_code"].AsInt(),
            static_cast<int>(StatusCode::kResourceExhausted));
  EXPECT_TRUE(env["retryable"].AsBool());
  EXPECT_TRUE(env.Has("retry_after_ms"));
  EXPECT_GT(env["retry_after_ms"].AsDouble(), 0);

  held->Release();
  Json ok_env = api_->HandleEnvelope(key_, "search_datasets", SearchRequest());
  EXPECT_EQ(ok_env["status"].AsString(), "ok") << ok_env.Dump();
}

TEST_F(OverloadApiTest, RateLimitedKeyDoesNotStarveOthers) {
  double fake_now = 0;
  AdmissionOptions opt;
  opt.rate_per_sec = 100;
  opt.burst = 1;
  opt.now_ms = [&fake_now] { return fake_now; };
  // No seeding: every admitted request spends a token, and the frozen
  // clock never refills the bucket. Searching an empty corpus is fine.
  Init(opt, /*seed=*/false);
  std::string other = api_->CreateApiKey("usc_research");

  ASSERT_EQ(api_->HandleEnvelope(key_, "search_datasets", SearchRequest())
                ["status"]
                    .AsString(),
            "ok");
  Json limited = api_->HandleEnvelope(key_, "search_datasets", SearchRequest());
  EXPECT_EQ(limited["code"].AsString(), "ResourceExhausted");
  EXPECT_TRUE(limited.Has("retry_after_ms"));
  // A different key still gets through.
  EXPECT_EQ(api_->HandleEnvelope(other, "search_datasets", SearchRequest())
                ["status"]
                    .AsString(),
            "ok");
}

TEST_F(OverloadApiTest, DegradedGrantMarksEnvelopeAndPlan) {
  AdmissionOptions opt;
  opt.max_concurrent = 1;
  opt.max_queue_interactive = 8;
  opt.max_queue_batch = 8;  // degrade_at = max(1, 0.05 * 16) = 1 waiter
  opt.degrade_occupancy = 0.05;
  opt.max_queue_wait_ms = 5000;
  Init(opt);
  auto held = admission_->Admit("occupier", Priority::kInteractive);
  ASSERT_TRUE(held.ok());

  auto older = std::async(std::launch::async, [&] {
    return api_->HandleEnvelope(key_, "search_datasets", SearchRequest());
  });
  while (admission_->stats().queue_depth_interactive < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto newer = std::async(std::launch::async, [&] {
    return api_->HandleEnvelope(key_, "search_datasets", SearchRequest());
  });
  while (admission_->stats().queue_depth_interactive < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  held->Release();
  Json newer_env = newer.get();
  Json older_env = older.get();
  ASSERT_EQ(newer_env["status"].AsString(), "ok") << newer_env.Dump();
  ASSERT_EQ(older_env["status"].AsString(), "ok") << older_env.Dump();
  // Both requests had to queue behind the held slot, so both answers are
  // degraded — marked in the envelope and inside the data payload.
  EXPECT_TRUE(newer_env["degraded"].AsBool()) << newer_env.Dump();
  EXPECT_TRUE(newer_env["data"]["degraded"].AsBool());
  EXPECT_TRUE(older_env["degraded"].AsBool()) << older_env.Dump();

  // Once the backlog is gone, responses go back to full fidelity.
  Json calm_env = api_->HandleEnvelope(key_, "search_datasets",
                                       SearchRequest());
  ASSERT_EQ(calm_env["status"].AsString(), "ok");
  EXPECT_FALSE(calm_env.Has("degraded"));
}

TEST_F(OverloadApiTest, ServerStatsExported) {
  Init(AdmissionOptions{});
  ASSERT_EQ(api_->HandleEnvelope(key_, "search_datasets", SearchRequest())
                ["status"]
                    .AsString(),
            "ok");
  Json stats = api_->ServerStatsJson();
  EXPECT_GE(stats["admitted"].AsInt(), 1);
  EXPECT_TRUE(stats["endpoints"].Has("search_datasets"));
  EXPECT_TRUE(stats.Has("state"));
}

TEST_F(OverloadApiTest, BatchPriorityUsesBatchQueue) {
  AdmissionOptions opt;
  opt.max_concurrent = 1;
  opt.max_queue_batch = 0;  // batch work is rejected outright when busy
  opt.max_queue_wait_ms = 1000;
  Init(opt);
  auto held = admission_->Admit("occupier", Priority::kInteractive);
  ASSERT_TRUE(held.ok());
  Json req = SearchRequest();
  req["priority"] = "batch";
  Json env = api_->HandleEnvelope(key_, "search_datasets", req);
  EXPECT_EQ(env["code"].AsString(), "ResourceExhausted") << env.Dump();
  EXPECT_EQ(admission_->stats().shed_queue_full, 1u);
}

}  // namespace
}  // namespace tvdp
