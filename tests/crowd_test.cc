#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "crowd/acquisition.h"
#include "crowd/assignment.h"
#include "crowd/campaign.h"
#include "crowd/worker.h"

namespace tvdp::crowd {
namespace {

geo::BoundingBox TestRegion() {
  return geo::BoundingBox::FromCorners({34.00, -118.30}, {34.06, -118.24});
}

// ---------- Tasks from gaps ----------

TEST(CampaignTest, TasksFromGapsCoversAllMissingSectors) {
  auto grid = geo::CoverageGrid::Make(TestRegion(), 2, 2, 4);
  ASSERT_TRUE(grid.ok());
  std::vector<Task> tasks = TasksFromGaps(*grid, 7, 100);
  EXPECT_EQ(tasks.size(), 16u);  // 4 cells x 4 sectors, nothing covered
  std::set<int64_t> ids;
  for (const Task& t : tasks) {
    EXPECT_EQ(t.campaign_id, 7);
    EXPECT_EQ(t.state, Task::State::kOpen);
    EXPECT_TRUE(TestRegion().Contains(t.location));
    ids.insert(t.id);
  }
  EXPECT_EQ(ids.size(), tasks.size());
  EXPECT_EQ(*ids.begin(), 100);
}

TEST(CampaignTest, MaxTasksCap) {
  auto grid = geo::CoverageGrid::Make(TestRegion(), 4, 4, 4);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(TasksFromGaps(*grid, 1, 1, 5).size(), 5u);
  EXPECT_EQ(TasksFromGaps(*grid, 1, 1, 0).size(), 64u);
}

// ---------- WorkerPool ----------

TEST(WorkerPoolTest, UniformPlacementInsideRegion) {
  Rng rng(1);
  WorkerPool pool = WorkerPool::MakeUniform(TestRegion(), 50, rng);
  EXPECT_EQ(pool.size(), 50u);
  for (const Worker& w : pool.workers()) {
    EXPECT_TRUE(TestRegion().Contains(w.location));
    EXPECT_GT(w.capacity, 0);
    EXPECT_GT(w.acceptance_prob, 0.5);
  }
}

TEST(WorkerPoolTest, DriftStaysInRegion) {
  Rng rng(2);
  WorkerPool pool = WorkerPool::MakeUniform(TestRegion(), 30, rng);
  for (int i = 0; i < 10; ++i) pool.Drift(TestRegion(), 500, rng);
  for (const Worker& w : pool.workers()) {
    EXPECT_TRUE(TestRegion().Contains(w.location));
  }
}

// ---------- Assignment ----------

class AssignmentPolicyTest
    : public ::testing::TestWithParam<AssignmentPolicy> {};

TEST_P(AssignmentPolicyTest, RespectsCapacityAndRange) {
  Rng rng(3);
  auto grid = geo::CoverageGrid::Make(TestRegion(), 4, 4, 4);
  ASSERT_TRUE(grid.ok());
  std::vector<Task> tasks = TasksFromGaps(*grid, 1, 1);
  WorkerPool pool = WorkerPool::MakeUniform(TestRegion(), 10, rng);

  auto assignments = AssignTasks(tasks, pool.workers(), GetParam());
  std::map<int64_t, int> per_worker;
  std::map<int64_t, const Worker*> worker_by_id;
  for (const Worker& w : pool.workers()) worker_by_id[w.id] = &w;
  std::map<int64_t, const Task*> task_by_id;
  for (const Task& t : tasks) task_by_id[t.id] = &t;
  std::set<int64_t> assigned_tasks;
  for (const Assignment& a : assignments) {
    ++per_worker[a.worker_id];
    const Worker* w = worker_by_id[a.worker_id];
    ASSERT_NE(w, nullptr);
    EXPECT_LE(a.travel_m, w->max_travel_m);
    EXPECT_NEAR(a.travel_m,
                geo::HaversineMeters(w->location,
                                     task_by_id[a.task_id]->location),
                1.0);
    EXPECT_TRUE(assigned_tasks.insert(a.task_id).second)
        << "task assigned twice";
  }
  for (const auto& [wid, count] : per_worker) {
    EXPECT_LE(count, worker_by_id[wid]->capacity);
  }
}

TEST_P(AssignmentPolicyTest, NoFeasibleWorkersMeansNoAssignments) {
  Rng rng(4);
  auto grid = geo::CoverageGrid::Make(TestRegion(), 2, 2, 2);
  ASSERT_TRUE(grid.ok());
  std::vector<Task> tasks = TasksFromGaps(*grid, 1, 1);
  // Workers far outside their travel range.
  WorkerPool pool = WorkerPool::MakeUniform(
      geo::BoundingBox::FromCorners({36.0, -120.0}, {36.1, -119.9}), 5, rng);
  EXPECT_TRUE(AssignTasks(tasks, pool.workers(), GetParam()).empty());
}

INSTANTIATE_TEST_SUITE_P(Policies, AssignmentPolicyTest,
                         ::testing::Values(AssignmentPolicy::kGreedyNearest,
                                           AssignmentPolicy::kBatchedMatching),
                         [](const auto& info) {
                           return info.param ==
                                          AssignmentPolicy::kGreedyNearest
                                      ? "greedy"
                                      : "matching";
                         });

TEST(AssignmentTest, MatchingTravelNoWorseThanGreedyOnAverage) {
  Rng rng(5);
  auto grid = geo::CoverageGrid::Make(TestRegion(), 6, 6, 4);
  ASSERT_TRUE(grid.ok());
  std::vector<Task> tasks = TasksFromGaps(*grid, 1, 1);
  WorkerPool pool = WorkerPool::MakeUniform(TestRegion(), 20, rng);
  auto greedy = AssignTasks(tasks, pool.workers(),
                            AssignmentPolicy::kGreedyNearest);
  auto matching = AssignTasks(tasks, pool.workers(),
                              AssignmentPolicy::kBatchedMatching);
  ASSERT_FALSE(greedy.empty());
  ASSERT_FALSE(matching.empty());
  double greedy_avg = TotalTravelMeters(greedy) / greedy.size();
  double matching_avg = TotalTravelMeters(matching) / matching.size();
  // Shortest-edge-first matching should not be meaningfully worse.
  EXPECT_LE(matching_avg, greedy_avg * 1.05);
  EXPECT_GE(matching.size(), greedy.size());
}

TEST(AssignmentTest, ApplyAssignmentsMarksTasks) {
  Rng rng(6);
  auto grid = geo::CoverageGrid::Make(TestRegion(), 2, 2, 2);
  ASSERT_TRUE(grid.ok());
  std::vector<Task> tasks = TasksFromGaps(*grid, 1, 1);
  WorkerPool pool = WorkerPool::MakeUniform(TestRegion(), 10, rng);
  auto assignments =
      AssignTasks(tasks, pool.workers(), AssignmentPolicy::kBatchedMatching);
  ApplyAssignments(assignments, tasks);
  int assigned = 0;
  for (const Task& t : tasks) {
    if (t.state == Task::State::kAssigned) {
      ++assigned;
      EXPECT_GT(t.assigned_worker, 0);
    }
  }
  EXPECT_EQ(assigned, static_cast<int>(assignments.size()));
}

// ---------- Iterative acquisition ----------

TEST(AcquisitionTest, CoverageRisesMonotonically) {
  Rng rng(7);
  auto grid = geo::CoverageGrid::Make(TestRegion(), 6, 6, 4);
  ASSERT_TRUE(grid.ok());
  WorkerPool pool = WorkerPool::MakeUniform(TestRegion(), 40, rng);
  Campaign campaign;
  campaign.id = 1;
  campaign.name = "test";
  campaign.region = TestRegion();
  campaign.target_coverage = 0.9;
  IterativeAcquisition::Options opts;
  opts.max_rounds = 15;
  IterativeAcquisition acq(campaign, std::move(*grid), std::move(pool), opts,
                           99);
  int captures = 0;
  auto history = acq.Run([&](const Capture& c) {
    ++captures;
    EXPECT_GT(c.worker_id, 0);
    EXPECT_GT(c.task_id, 0);
    EXPECT_GT(c.captured_at, 0);
  });
  ASSERT_FALSE(history.empty());
  double prev = 0;
  for (const RoundStats& r : history) {
    EXPECT_GE(r.coverage_after, prev);
    prev = r.coverage_after;
    EXPECT_LE(r.tasks_completed, r.tasks_assigned);
    EXPECT_LE(r.tasks_assigned, r.tasks_issued);
  }
  EXPECT_GT(captures, 0);
  EXPECT_GT(history.back().coverage_after, 0.5);
}

TEST(AcquisitionTest, StopsWhenTargetReached) {
  Rng rng(8);
  auto grid = geo::CoverageGrid::Make(TestRegion(), 2, 2, 2);
  ASSERT_TRUE(grid.ok());
  WorkerPool pool = WorkerPool::MakeUniform(TestRegion(), 60, rng);
  Campaign campaign;
  campaign.id = 2;
  campaign.region = TestRegion();
  campaign.target_coverage = 0.3;  // trivially reachable
  IterativeAcquisition::Options opts;
  opts.max_rounds = 50;
  IterativeAcquisition acq(campaign, std::move(*grid), std::move(pool), opts,
                           100);
  auto history = acq.Run();
  EXPECT_LT(history.size(), 50u);
  EXPECT_GE(acq.grid().CoverageRatio(), 0.3);
}

TEST(AcquisitionTest, DeterministicForSeed) {
  auto run_once = [](uint64_t seed) {
    Rng rng(9);
    auto grid = geo::CoverageGrid::Make(TestRegion(), 4, 4, 4);
    WorkerPool pool = WorkerPool::MakeUniform(TestRegion(), 20, rng);
    Campaign campaign;
    campaign.id = 3;
    campaign.region = TestRegion();
    campaign.target_coverage = 0.95;
    IterativeAcquisition::Options opts;
    opts.max_rounds = 5;
    IterativeAcquisition acq(campaign, std::move(*grid), std::move(pool),
                             opts, seed);
    return acq.Run();
  };
  auto a = run_once(42), b = run_once(42), c = run_once(43);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tasks_completed, b[i].tasks_completed);
    EXPECT_DOUBLE_EQ(a[i].coverage_after, b[i].coverage_after);
  }
  // A different seed should (almost surely) differ somewhere.
  bool any_diff = a.size() != c.size();
  for (size_t i = 0; !any_diff && i < std::min(a.size(), c.size()); ++i) {
    any_diff = a[i].tasks_completed != c[i].tasks_completed;
  }
  EXPECT_TRUE(any_diff);
}

TEST(AcquisitionTest, ExpiredTasksAreRequeuedWithBoundedRetries) {
  auto run_with_retries = [](int max_task_retries) {
    Rng rng(11);
    auto grid = geo::CoverageGrid::Make(TestRegion(), 3, 3, 4);
    WorkerPool pool = WorkerPool::MakeUniform(TestRegion(), 30, rng);
    // Every worker declines every task, so every assigned task expires.
    for (Worker& w : pool.workers()) w.acceptance_prob = 0.0;
    Campaign campaign;
    campaign.id = 4;
    campaign.region = TestRegion();
    campaign.target_coverage = 0.9;
    IterativeAcquisition::Options opts;
    opts.max_rounds = 4;
    opts.max_task_retries = max_task_retries;
    IterativeAcquisition acq(campaign, std::move(*grid), std::move(pool),
                             opts, 5);
    return acq.Run();
  };

  auto with_retries = run_with_retries(2);
  ASSERT_EQ(with_retries.size(), 4u);
  EXPECT_EQ(with_retries[0].tasks_requeued, 0);  // nothing expired yet
  EXPECT_GT(with_retries[1].tasks_requeued, 0);  // round 1 expiries re-open
  int total_requeued = 0;
  for (const RoundStats& r : with_retries) {
    EXPECT_LE(r.tasks_requeued, r.tasks_issued);
    EXPECT_EQ(r.tasks_completed, 0);
    total_requeued += r.tasks_requeued;
  }
  EXPECT_GT(total_requeued, 0);

  // max_task_retries = 0 makes expiry terminal: the pre-retry behaviour.
  auto no_retries = run_with_retries(0);
  for (const RoundStats& r : no_retries) {
    EXPECT_EQ(r.tasks_requeued, 0);
  }
}

TEST(AcquisitionTest, RequeuedTasksDoNotDuplicateGapTasks) {
  Rng rng(12);
  auto grid = geo::CoverageGrid::Make(TestRegion(), 2, 2, 4);
  WorkerPool pool = WorkerPool::MakeUniform(TestRegion(), 20, rng);
  for (Worker& w : pool.workers()) w.acceptance_prob = 0.0;
  Campaign campaign;
  campaign.id = 5;
  campaign.region = TestRegion();
  campaign.target_coverage = 0.9;
  IterativeAcquisition::Options opts;
  opts.max_rounds = 3;
  opts.max_task_retries = 2;
  IterativeAcquisition acq(campaign, std::move(*grid), std::move(pool), opts,
                           6);
  auto history = acq.Run();
  ASSERT_EQ(history.size(), 3u);
  // The grid has 16 (cell, direction) gaps and nothing ever completes, so a
  // round may never issue more than one task per gap — requeued tasks must
  // replace, not duplicate, the fresh tasks for their gap.
  for (const RoundStats& r : history) {
    EXPECT_LE(r.tasks_issued, 16);
  }
}

}  // namespace
}  // namespace tvdp::crowd
