#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "index/inverted_index.h"
#include "index/lsh.h"
#include "index/oriented_rtree.h"
#include "index/rtree.h"
#include "index/temporal_index.h"
#include "index/visual_rtree.h"

namespace tvdp::index {
namespace {

geo::BoundingBox RandomBox(Rng& rng, double max_extent = 0.01) {
  double lat = rng.Uniform(33.9, 34.2);
  double lon = rng.Uniform(-118.5, -118.1);
  geo::BoundingBox box;
  box.min_lat = lat;
  box.min_lon = lon;
  box.max_lat = lat + rng.Uniform(0, max_extent);
  box.max_lon = lon + rng.Uniform(0, max_extent);
  return box;
}

// ---------- RTree ----------

TEST(RTreeTest, InsertValidation) {
  RTree tree;
  EXPECT_FALSE(tree.Insert(geo::BoundingBox::Empty(), 1).ok());
  EXPECT_TRUE(tree.Insert(geo::BoundingBox::FromCorners({34, -118.3},
                                                        {34.01, -118.29}),
                          1)
                  .ok());
  EXPECT_EQ(tree.size(), 1u);
}

class RTreeRandomizedTest : public ::testing::TestWithParam<int> {};

TEST_P(RTreeRandomizedTest, RangeSearchMatchesBruteForce) {
  const int n = GetParam();
  Rng rng(100 + n);
  RTree tree;
  std::vector<geo::BoundingBox> boxes;
  for (int i = 0; i < n; ++i) {
    geo::BoundingBox box = RandomBox(rng);
    boxes.push_back(box);
    ASSERT_TRUE(tree.Insert(box, i).ok());
  }
  EXPECT_TRUE(tree.CheckInvariants());
  for (int q = 0; q < 25; ++q) {
    geo::BoundingBox query = RandomBox(rng, 0.05);
    std::set<RecordId> expected;
    for (int i = 0; i < n; ++i) {
      if (boxes[static_cast<size_t>(i)].Intersects(query)) expected.insert(i);
    }
    std::vector<RecordId> got = tree.RangeSearch(query);
    std::set<RecordId> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set, expected) << "n=" << n << " query " << query.ToString();
    EXPECT_EQ(got.size(), got_set.size()) << "duplicates returned";
  }
}

TEST_P(RTreeRandomizedTest, KNearestMatchesBruteForce) {
  const int n = GetParam();
  Rng rng(200 + n);
  RTree tree;
  std::vector<geo::GeoPoint> points;
  for (int i = 0; i < n; ++i) {
    geo::GeoPoint p{rng.Uniform(33.9, 34.2), rng.Uniform(-118.5, -118.1)};
    points.push_back(p);
    geo::BoundingBox box;
    box.min_lat = box.max_lat = p.lat;
    box.min_lon = box.max_lon = p.lon;
    ASSERT_TRUE(tree.Insert(box, i).ok());
  }
  for (int q = 0; q < 10; ++q) {
    geo::GeoPoint probe{rng.Uniform(33.9, 34.2), rng.Uniform(-118.5, -118.1)};
    int k = static_cast<int>(rng.UniformInt(1, std::min(n, 20)));
    std::vector<RecordId> got = tree.KNearest(probe, k);
    ASSERT_EQ(got.size(), static_cast<size_t>(std::min(k, n)));
    // Verify against brute force by distance.
    std::vector<std::pair<double, RecordId>> dist;
    for (int i = 0; i < n; ++i) {
      geo::BoundingBox b;
      b.min_lat = b.max_lat = points[static_cast<size_t>(i)].lat;
      b.min_lon = b.max_lon = points[static_cast<size_t>(i)].lon;
      dist.push_back({MinDistDeg(probe, b), i});
    }
    std::sort(dist.begin(), dist.end());
    double kth = dist[static_cast<size_t>(k) - 1].first;
    for (RecordId id : got) {
      geo::BoundingBox b;
      b.min_lat = b.max_lat = points[static_cast<size_t>(id)].lat;
      b.min_lon = b.max_lon = points[static_cast<size_t>(id)].lon;
      EXPECT_LE(MinDistDeg(probe, b), kth + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RTreeRandomizedTest,
                         ::testing::Values(1, 10, 60, 300, 1500));

TEST(RTreeTest, RemoveThenSearch) {
  Rng rng(7);
  RTree tree;
  std::vector<geo::BoundingBox> boxes;
  for (int i = 0; i < 100; ++i) {
    boxes.push_back(RandomBox(rng));
    ASSERT_TRUE(tree.Insert(boxes.back(), i).ok());
  }
  // Remove the even ids.
  for (int i = 0; i < 100; i += 2) {
    EXPECT_TRUE(tree.Remove(boxes[static_cast<size_t>(i)], i).ok());
  }
  EXPECT_EQ(tree.size(), 50u);
  geo::BoundingBox everything =
      geo::BoundingBox::FromCorners({33, -119}, {35, -117});
  std::vector<RecordId> all = tree.RangeSearch(everything);
  EXPECT_EQ(all.size(), 50u);
  for (RecordId id : all) EXPECT_EQ(id % 2, 1);
  // Removing again fails.
  EXPECT_FALSE(tree.Remove(boxes[0], 0).ok());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RTreeTest, HeightGrowsLogarithmically) {
  Rng rng(8);
  RTree tree;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree.Insert(RandomBox(rng), i).ok());
  }
  EXPECT_GE(tree.height(), 2);
  EXPECT_LE(tree.height(), 8);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(MinDistTest, ZeroInsideBox) {
  geo::BoundingBox box = geo::BoundingBox::FromCorners({34, -118.3},
                                                       {34.1, -118.2});
  EXPECT_DOUBLE_EQ(MinDistDeg(geo::GeoPoint{34.05, -118.25}, box), 0.0);
  EXPECT_GT(MinDistDeg(geo::GeoPoint{35.0, -118.25}, box), 0.0);
}

// ---------- OrientedRTree ----------

TEST(OrientedRTreeTest, RangeSearchRefinesByExactSector) {
  OrientedRTree tree;
  geo::GeoPoint cam{34.05, -118.25};
  // FOV looking north.
  auto north = geo::FieldOfView::Make(cam, 0, 60, 300);
  ASSERT_TRUE(north.ok());
  ASSERT_TRUE(tree.Insert(*north, 1).ok());
  // Box north of the camera: hit.
  geo::BoundingBox north_box = geo::BoundingBox::FromCenterRadius(
      geo::Destination(cam, 0, 150), 30);
  EXPECT_EQ(tree.RangeSearch(north_box).size(), 1u);
  // Box south: the scene MBR may or may not contain it, but exact
  // refinement must reject it.
  geo::BoundingBox south_box = geo::BoundingBox::FromCenterRadius(
      geo::Destination(cam, 180, 150), 30);
  EXPECT_TRUE(tree.RangeSearch(south_box).empty());
}

TEST(OrientedRTreeTest, DirectedSearchFiltersDirection) {
  OrientedRTree tree;
  geo::GeoPoint cam{34.05, -118.25};
  for (int d = 0; d < 360; d += 45) {
    auto fov = geo::FieldOfView::Make(
        geo::Destination(cam, d, 10), d, 60, 300);
    ASSERT_TRUE(fov.ok());
    ASSERT_TRUE(tree.Insert(*fov, d).ok());
  }
  geo::BoundingBox everything = geo::BoundingBox::FromCenterRadius(cam, 2000);
  EXPECT_EQ(tree.RangeSearch(everything).size(), 8u);
  DirectionRange north{0, 30};
  std::vector<RecordId> north_hits =
      tree.RangeSearchDirected(everything, north);
  ASSERT_EQ(north_hits.size(), 1u);
  EXPECT_EQ(north_hits[0], 0);
  DirectionRange wide{90, 60};
  EXPECT_EQ(tree.RangeSearchDirected(everything, wide).size(), 3u);
}

TEST(OrientedRTreeTest, PointQueryMatchesFovContainment) {
  Rng rng(44);
  OrientedRTree tree;
  std::vector<geo::FieldOfView> fovs;
  for (int i = 0; i < 300; ++i) {
    geo::GeoPoint cam{rng.Uniform(34.0, 34.1), rng.Uniform(-118.3, -118.2)};
    auto fov = geo::FieldOfView::Make(cam, rng.Uniform(0, 360),
                                      rng.Uniform(30, 120),
                                      rng.Uniform(50, 400));
    ASSERT_TRUE(fov.ok());
    fovs.push_back(*fov);
    ASSERT_TRUE(tree.Insert(*fov, i).ok());
  }
  for (int q = 0; q < 30; ++q) {
    geo::GeoPoint probe{rng.Uniform(34.0, 34.1), rng.Uniform(-118.3, -118.2)};
    std::set<RecordId> expected;
    for (int i = 0; i < 300; ++i) {
      if (fovs[static_cast<size_t>(i)].ContainsPoint(probe)) expected.insert(i);
    }
    std::vector<RecordId> got = tree.PointQuery(probe);
    EXPECT_EQ(std::set<RecordId>(got.begin(), got.end()), expected);
    EXPECT_LE(static_cast<size_t>(tree.last_candidates()), tree.size());
  }
}

TEST(DirectionRangeTest, WrapsAroundNorth) {
  DirectionRange r{350, 20};
  EXPECT_TRUE(r.Contains(350));
  EXPECT_TRUE(r.Contains(5));
  EXPECT_TRUE(r.Contains(335));
  EXPECT_FALSE(r.Contains(180));
}

// Seam sweep: every direction-sector predicate must behave identically for
// headings that straddle the 0°/360° wraparound as for interior headings.
// A camera looking theta=350° with a 30° aperture sees bearings on BOTH
// sides of north ([335°, 5°]); naive |bearing - theta| comparisons break
// exactly here.
class SeamHeadingTest : public ::testing::TestWithParam<double> {};

TEST_P(SeamHeadingTest, DirectionRangeContains) {
  const double theta = GetParam();
  DirectionRange r{theta, 15};
  for (double off : {-14.0, 0.0, 14.0}) {
    EXPECT_TRUE(r.Contains(geo::NormalizeBearing(theta + off)))
        << "theta=" << theta << " off=" << off;
  }
  for (double off : {-20.0, 20.0, 90.0, 180.0}) {
    EXPECT_FALSE(r.Contains(geo::NormalizeBearing(theta + off)))
        << "theta=" << theta << " off=" << off;
  }
}

TEST_P(SeamHeadingTest, FovCoversBearing) {
  const double theta = GetParam();
  auto fov =
      geo::FieldOfView::Make(geo::GeoPoint{34.05, -118.25}, theta, 30, 300);
  ASSERT_TRUE(fov.ok());
  for (double off : {-14.0, 0.0, 14.0}) {
    EXPECT_TRUE(fov->CoversBearing(geo::NormalizeBearing(theta + off)))
        << "theta=" << theta << " off=" << off;
  }
  for (double off : {-20.0, 20.0, 180.0}) {
    EXPECT_FALSE(fov->CoversBearing(geo::NormalizeBearing(theta + off)))
        << "theta=" << theta << " off=" << off;
  }
}

TEST_P(SeamHeadingTest, PointQueryAcrossSeam) {
  const double theta = GetParam();
  geo::GeoPoint cam{34.05, -118.25};
  auto fov = geo::FieldOfView::Make(cam, theta, 30, 300);
  ASSERT_TRUE(fov.ok());
  OrientedRTree tree;
  ASSERT_TRUE(tree.Insert(*fov, 7).ok());
  // Probes just inside each sector edge — for seam-straddling headings one
  // of these lies on the far side of north from the heading itself.
  for (double off : {-12.0, 0.0, 12.0}) {
    geo::GeoPoint p =
        geo::Destination(cam, geo::NormalizeBearing(theta + off), 150);
    EXPECT_EQ(tree.PointQuery(p), std::vector<RecordId>{7})
        << "theta=" << theta << " off=" << off;
  }
  // Probes safely outside the aperture (and one behind the camera).
  for (double off : {-30.0, 30.0, 180.0}) {
    geo::GeoPoint p =
        geo::Destination(cam, geo::NormalizeBearing(theta + off), 150);
    EXPECT_TRUE(tree.PointQuery(p).empty())
        << "theta=" << theta << " off=" << off;
  }
}

TEST_P(SeamHeadingTest, DirectedSearchAcrossSeam) {
  const double theta = GetParam();
  geo::GeoPoint cam{34.05, -118.25};
  OrientedRTree tree;
  auto fov = geo::FieldOfView::Make(cam, theta, 30, 300);
  ASSERT_TRUE(fov.ok());
  ASSERT_TRUE(tree.Insert(*fov, 1).ok());
  auto south = geo::FieldOfView::Make(cam, 180, 30, 300);
  ASSERT_TRUE(south.ok());
  ASSERT_TRUE(tree.Insert(*south, 2).ok());
  geo::BoundingBox everything = geo::BoundingBox::FromCenterRadius(cam, 2000);
  // A query sector offset across the seam from the heading still matches it.
  DirectionRange probe{geo::NormalizeBearing(theta + 20), 25};
  std::vector<RecordId> hits = tree.RangeSearchDirected(everything, probe);
  EXPECT_EQ(hits, std::vector<RecordId>{1}) << "theta=" << theta;
  DirectionRange away{geo::NormalizeBearing(theta + 90), 20};
  EXPECT_TRUE(tree.RangeSearchDirected(everything, away).empty())
      << "theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(SeamCrossingHeadings, SeamHeadingTest,
                         ::testing::Values(345.0, 350.0, 355.0, 358.0, 0.0,
                                           2.0, 5.0, 15.0));

// ---------- LSH ----------

TEST(LshTest, InsertValidatesDimension) {
  LshIndex lsh(4);
  EXPECT_TRUE(lsh.Insert({1, 2, 3, 4}, 1).ok());
  EXPECT_FALSE(lsh.Insert({1, 2}, 2).ok());
}

TEST(LshTest, ExactDuplicateAlwaysFound) {
  Rng rng(3);
  LshIndex lsh(16);
  std::vector<ml::FeatureVector> vectors;
  for (int i = 0; i < 500; ++i) {
    ml::FeatureVector v(16);
    for (double& x : v) x = rng.Normal();
    vectors.push_back(v);
    ASSERT_TRUE(lsh.Insert(v, i).ok());
  }
  // Querying with a stored vector must return it first at distance 0.
  for (int i = 0; i < 100; i += 10) {
    auto hits = lsh.KNearest(vectors[static_cast<size_t>(i)], 3);
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(hits[0].first, i);
    EXPECT_NEAR(hits[0].second, 0.0, 1e-12);
  }
}

TEST(LshTest, RecallAtTenOnClusteredData) {
  // LSH is approximate; measure recall@10 against brute force on data
  // with genuine near-neighbour structure.
  Rng rng(5);
  const size_t dim = 32;
  LshIndex::Options opts;
  // Intra-cluster pairwise distances are ~sqrt(2)*0.3*sqrt(32) ~ 2.4;
  // w=10 with k=6 gives a per-table same-cluster collision probability of
  // ~0.25 (so ~0.9 recall over 8 tables) while the far-apart cluster
  // centers (~30 units) essentially never collide across all 6 hashes.
  opts.bucket_width = 10.0;
  opts.hashes_per_table = 6;
  LshIndex lsh(dim, opts);
  std::vector<ml::FeatureVector> vectors;
  for (int c = 0; c < 20; ++c) {
    ml::FeatureVector center(dim);
    for (double& x : center) x = rng.Normal(0, 4);
    for (int i = 0; i < 50; ++i) {
      ml::FeatureVector v(dim);
      for (size_t d = 0; d < dim; ++d) v[d] = center[d] + rng.Normal(0, 0.3);
      vectors.push_back(v);
      ASSERT_TRUE(lsh.Insert(v, static_cast<RecordId>(vectors.size() - 1)).ok());
    }
  }
  double recall_sum = 0;
  int queries = 30;
  for (int q = 0; q < queries; ++q) {
    const ml::FeatureVector& probe =
        vectors[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(vectors.size()) - 1))];
    auto approx = lsh.KNearest(probe, 10);
    std::vector<std::pair<double, RecordId>> exact;
    for (size_t i = 0; i < vectors.size(); ++i) {
      exact.push_back({ml::L2Distance(probe, vectors[i]),
                       static_cast<RecordId>(i)});
    }
    std::sort(exact.begin(), exact.end());
    std::set<RecordId> truth;
    for (int i = 0; i < 10; ++i) truth.insert(exact[static_cast<size_t>(i)].second);
    int found = 0;
    for (const auto& [id, d] : approx) found += truth.count(id);
    recall_sum += static_cast<double>(found) / 10.0;
  }
  EXPECT_GT(recall_sum / queries, 0.7);
}

TEST(LshTest, RangeSearchRespectsThreshold) {
  Rng rng(6);
  LshIndex lsh(8);
  for (int i = 0; i < 200; ++i) {
    ml::FeatureVector v(8);
    for (double& x : v) x = rng.Normal();
    ASSERT_TRUE(lsh.Insert(v, i).ok());
  }
  ml::FeatureVector probe(8, 0.0);
  for (const auto& [id, d] : lsh.RangeSearch(probe, 1.5)) {
    EXPECT_LE(d, 1.5);
  }
}

// ---------- InvertedIndex ----------

TEST(InvertedIndexTest, BooleanQueries) {
  InvertedIndex idx;
  ASSERT_TRUE(idx.AddDocument(1, {"tent", "street"}).ok());
  ASSERT_TRUE(idx.AddDocument(2, {"tent", "graffiti"}).ok());
  ASSERT_TRUE(idx.AddDocument(3, {"clean", "street"}).ok());
  EXPECT_EQ(idx.QueryAnd({"tent", "street"}), std::vector<RecordId>{1});
  EXPECT_EQ(idx.QueryAnd({"tent"}).size(), 2u);
  EXPECT_EQ(idx.QueryOr({"tent", "clean"}).size(), 3u);
  EXPECT_TRUE(idx.QueryAnd({"tent", "nonexistent"}).empty());
  EXPECT_TRUE(idx.QueryAnd({}).empty());
}

TEST(InvertedIndexTest, DocumentFrequencyAndVocab) {
  InvertedIndex idx;
  idx.AddDocument(1, {"a", "b"}).ok();
  idx.AddDocument(2, {"a"}).ok();
  EXPECT_EQ(idx.DocumentFrequency("a"), 2u);
  EXPECT_EQ(idx.DocumentFrequency("b"), 1u);
  EXPECT_EQ(idx.DocumentFrequency("z"), 0u);
  EXPECT_EQ(idx.vocabulary_size(), 2u);
  EXPECT_EQ(idx.document_count(), 2u);
}

TEST(InvertedIndexTest, RankedPrefersRareTermsAndHighTf) {
  InvertedIndex idx;
  // "encampment" is rare, "street" is everywhere.
  for (int i = 1; i <= 20; ++i) {
    std::vector<std::string> terms = {"street"};
    if (i == 7) terms.push_back("encampment");
    idx.AddDocument(i, terms).ok();
  }
  auto ranked = idx.QueryRanked({"encampment", "street"}, 5);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked[0].first, 7);
  EXPECT_GT(ranked[0].second, ranked[1].second);
}

TEST(InvertedIndexTest, ReAddingDocAccumulatesTf) {
  InvertedIndex idx;
  idx.AddDocument(1, {"x"}).ok();
  idx.AddDocument(1, {"x", "y"}).ok();
  EXPECT_EQ(idx.DocumentFrequency("x"), 1u);
  EXPECT_EQ(idx.QueryAnd({"x", "y"}), std::vector<RecordId>{1});
}

TEST(InvertedIndexTest, RejectsEmptyTermList) {
  InvertedIndex idx;
  EXPECT_FALSE(idx.AddDocument(1, {}).ok());
}

// ---------- TemporalIndex ----------

TEST(TemporalIndexTest, RangeInclusive) {
  TemporalIndex idx;
  idx.Insert(100, 1);
  idx.Insert(200, 2);
  idx.Insert(300, 3);
  EXPECT_EQ(idx.RangeSearch(100, 300).size(), 3u);
  EXPECT_EQ(idx.RangeSearch(101, 299), std::vector<RecordId>{2});
  EXPECT_TRUE(idx.RangeSearch(400, 500).empty());
  EXPECT_TRUE(idx.RangeSearch(300, 100).empty());
}

TEST(TemporalIndexTest, BoundarySemantics) {
  // Contract: [begin, end] closed on BOTH ends.
  TemporalIndex idx({{100, 1}, {200, 2}, {300, 3}});
  // Exact-boundary timestamps are included.
  EXPECT_EQ(idx.RangeSearch(100, 100), std::vector<RecordId>{1});
  EXPECT_EQ(idx.RangeSearch(300, 300), std::vector<RecordId>{3});
  EXPECT_EQ(idx.RangeSearch(200, 300), (std::vector<RecordId>{2, 3}));
  // One past either boundary excludes it.
  EXPECT_TRUE(idx.RangeSearch(99, 99).empty());
  EXPECT_TRUE(idx.RangeSearch(301, 400).empty());
  // Degenerate begin == end between entries.
  EXPECT_TRUE(idx.RangeSearch(150, 150).empty());
  // Inverted ranges never scan, including the one-off case.
  EXPECT_TRUE(idx.RangeSearch(101, 100).empty());
  EXPECT_TRUE(idx.RangeSearch(1000, 0).empty());
}

TEST(TemporalIndexTest, BulkConstructorSorts) {
  TemporalIndex idx({{300, 3}, {100, 1}, {200, 2}});
  EXPECT_EQ(idx.min_timestamp(), 100);
  EXPECT_EQ(idx.max_timestamp(), 300);
  auto all = idx.RangeSearch(0, 1000);
  EXPECT_EQ(all, (std::vector<RecordId>{1, 2, 3}));
}

TEST(TemporalIndexTest, MostRecent) {
  TemporalIndex idx({{100, 1}, {200, 2}, {300, 3}, {400, 4}});
  auto recent = idx.MostRecent(350, 2);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0], 3);
  EXPECT_EQ(recent[1], 2);
  EXPECT_TRUE(idx.MostRecent(50, 3).empty());
  EXPECT_EQ(idx.MostRecent(1000, 99).size(), 4u);
}

// ---------- VisualRTree ----------

TEST(VisualRTreeTest, InsertValidation) {
  VisualRTree tree(4);
  EXPECT_FALSE(tree.Insert(geo::GeoPoint{34, -118}, {1, 2}, 1).ok());
  EXPECT_FALSE(tree.Insert(geo::GeoPoint{99, -118}, {1, 2, 3, 4}, 1).ok());
  EXPECT_TRUE(tree.Insert(geo::GeoPoint{34, -118}, {1, 2, 3, 4}, 1).ok());
}

TEST(VisualRTreeTest, TopKExactUnderBlendedScore) {
  Rng rng(9);
  const size_t dim = 8;
  VisualRTree::Options opts;
  opts.spatial_norm_deg = 0.1;
  opts.visual_norm = 4.0;
  VisualRTree tree(dim, opts);
  struct Item {
    geo::GeoPoint loc;
    ml::FeatureVector feat;
  };
  std::vector<Item> items;
  for (int i = 0; i < 400; ++i) {
    Item item;
    item.loc = geo::GeoPoint{rng.Uniform(34.0, 34.2),
                             rng.Uniform(-118.4, -118.2)};
    item.feat.resize(dim);
    for (double& x : item.feat) x = rng.Normal();
    items.push_back(item);
    ASSERT_TRUE(tree.Insert(item.loc, item.feat, i).ok());
  }
  for (double alpha : {0.0, 0.3, 0.7, 1.0}) {
    geo::GeoPoint probe{34.1, -118.3};
    ml::FeatureVector qfeat(dim, 0.0);
    auto hits = tree.TopK(probe, qfeat, 10, alpha);
    ASSERT_EQ(hits.size(), 10u);
    // Brute-force the same score.
    std::vector<std::pair<double, RecordId>> exact;
    for (int i = 0; i < 400; ++i) {
      const Item& item = items[static_cast<size_t>(i)];
      geo::BoundingBox b;
      b.min_lat = b.max_lat = item.loc.lat;
      b.min_lon = b.max_lon = item.loc.lon;
      double score = alpha * MinDistDeg(probe, b) / opts.spatial_norm_deg +
                     (1 - alpha) * ml::L2Distance(qfeat, item.feat) /
                         opts.visual_norm;
      exact.push_back({score, i});
    }
    std::sort(exact.begin(), exact.end());
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_NEAR(hits[i].score, exact[i].first, 1e-9)
          << "alpha=" << alpha << " rank " << i;
    }
  }
}

TEST(VisualRTreeTest, TopKPrunesNodes) {
  Rng rng(10);
  const size_t dim = 8;
  VisualRTree tree(dim);
  for (int i = 0; i < 2000; ++i) {
    ml::FeatureVector f(dim);
    for (double& x : f) x = rng.Normal();
    ASSERT_TRUE(tree.Insert(geo::GeoPoint{rng.Uniform(34.0, 34.2),
                                          rng.Uniform(-118.4, -118.2)},
                            f, i)
                    .ok());
  }
  ml::FeatureVector q(dim, 0.0);
  tree.TopK(geo::GeoPoint{34.1, -118.3}, q, 5, 0.8);
  // With heavy spatial weighting, the search should not visit every node.
  EXPECT_LT(tree.last_nodes_visited(),
            static_cast<int64_t>(tree.size()) / 4);
}

TEST(VisualRTreeTest, RangeSearchFiltersBoth) {
  VisualRTree tree(2);
  ASSERT_TRUE(tree.Insert(geo::GeoPoint{34.05, -118.25}, {0, 0}, 1).ok());
  ASSERT_TRUE(tree.Insert(geo::GeoPoint{34.05, -118.25}, {5, 5}, 2).ok());
  ASSERT_TRUE(tree.Insert(geo::GeoPoint{35.00, -118.25}, {0, 0}, 3).ok());
  geo::BoundingBox box =
      geo::BoundingBox::FromCenterRadius(geo::GeoPoint{34.05, -118.25}, 500);
  auto hits = tree.RangeSearch(box, {0, 0}, 1.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 1);
}

}  // namespace
}  // namespace tvdp::index
