#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geo/bbox.h"
#include "geo/coverage.h"
#include "geo/fov.h"
#include "geo/geo_point.h"
#include "geo/polyline.h"

namespace tvdp::geo {
namespace {

constexpr double kLaLat = 34.05;
constexpr double kLaLon = -118.25;

// ---------- GeoPoint / geodesy ----------

TEST(GeodesyTest, HaversineZeroForSamePoint) {
  GeoPoint p{kLaLat, kLaLon};
  EXPECT_DOUBLE_EQ(HaversineMeters(p, p), 0.0);
}

TEST(GeodesyTest, HaversineKnownDistance) {
  // LAX (33.9416, -118.4085) to SFO (37.6213, -122.3790) ~ 543 km.
  GeoPoint lax{33.9416, -118.4085}, sfo{37.6213, -122.3790};
  EXPECT_NEAR(HaversineMeters(lax, sfo), 543000, 5000);
}

TEST(GeodesyTest, HaversineSymmetry) {
  GeoPoint a{34.0, -118.0}, b{34.3, -118.4};
  EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
}

TEST(GeodesyTest, BearingCardinalDirections) {
  GeoPoint origin{34.0, -118.0};
  EXPECT_NEAR(InitialBearingDeg(origin, GeoPoint{34.1, -118.0}), 0.0, 0.1);
  EXPECT_NEAR(InitialBearingDeg(origin, GeoPoint{34.0, -117.9}), 90.0, 0.1);
  EXPECT_NEAR(InitialBearingDeg(origin, GeoPoint{33.9, -118.0}), 180.0, 0.1);
  EXPECT_NEAR(InitialBearingDeg(origin, GeoPoint{34.0, -118.1}), 270.0, 0.1);
}

TEST(GeodesyTest, DestinationRoundtrip) {
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    GeoPoint start{rng.Uniform(33.5, 34.5), rng.Uniform(-118.9, -117.9)};
    double bearing = rng.Uniform(0, 360);
    double dist = rng.Uniform(10, 5000);
    GeoPoint end = Destination(start, bearing, dist);
    EXPECT_NEAR(HaversineMeters(start, end), dist, dist * 0.001 + 0.01);
    EXPECT_NEAR(AngularDifference(InitialBearingDeg(start, end), bearing), 0.0,
                0.5);
  }
}

TEST(GeodesyTest, NormalizeBearing) {
  EXPECT_DOUBLE_EQ(NormalizeBearing(0), 0);
  EXPECT_DOUBLE_EQ(NormalizeBearing(360), 0);
  EXPECT_DOUBLE_EQ(NormalizeBearing(-90), 270);
  EXPECT_DOUBLE_EQ(NormalizeBearing(725), 5);
}

TEST(GeodesyTest, AngularDifferenceWraps) {
  EXPECT_NEAR(AngularDifference(350, 10), -20, 1e-9);
  EXPECT_NEAR(AngularDifference(10, 350), 20, 1e-9);
  EXPECT_NEAR(AngularDifference(180, 0), 180, 1e-9);
}

TEST(GeodesyTest, Validity) {
  EXPECT_TRUE(IsValid(GeoPoint{0, 0}));
  EXPECT_TRUE(IsValid(GeoPoint{-90, 180}));
  EXPECT_FALSE(IsValid(GeoPoint{91, 0}));
  EXPECT_FALSE(IsValid(GeoPoint{0, -181}));
}

TEST(ProjectionTest, RoundtripCityScale) {
  LocalProjection proj(GeoPoint{kLaLat, kLaLon});
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    GeoPoint p{kLaLat + rng.Uniform(-0.1, 0.1),
               kLaLon + rng.Uniform(-0.1, 0.1)};
    GeoPoint back = proj.Unproject(proj.Project(p));
    EXPECT_NEAR(back.lat, p.lat, 1e-9);
    EXPECT_NEAR(back.lon, p.lon, 1e-9);
  }
}

TEST(ProjectionTest, DistancePreservedApproximately) {
  LocalProjection proj(GeoPoint{kLaLat, kLaLon});
  GeoPoint a{34.05, -118.25}, b{34.06, -118.24};
  double planar = Distance(proj.Project(a), proj.Project(b));
  double sphere = HaversineMeters(a, b);
  EXPECT_NEAR(planar / sphere, 1.0, 0.01);
}

// ---------- BoundingBox ----------

TEST(BBoxTest, EmptyBehaviour) {
  BoundingBox box = BoundingBox::Empty();
  EXPECT_TRUE(box.IsEmpty());
  EXPECT_FALSE(box.Contains(GeoPoint{0, 0}));
  EXPECT_EQ(box.AreaDeg2(), 0.0);
}

TEST(BBoxTest, ExtendAndContain) {
  BoundingBox box = BoundingBox::Empty();
  box.Extend(GeoPoint{34.0, -118.3});
  box.Extend(GeoPoint{34.1, -118.2});
  EXPECT_TRUE(box.Contains(GeoPoint{34.05, -118.25}));
  EXPECT_FALSE(box.Contains(GeoPoint{34.2, -118.25}));
  EXPECT_TRUE(box.Contains(GeoPoint{34.0, -118.3}));  // boundary inclusive
}

TEST(BBoxTest, IntersectionCases) {
  BoundingBox a = BoundingBox::FromCorners({34.0, -118.3}, {34.1, -118.2});
  BoundingBox b = BoundingBox::FromCorners({34.05, -118.25}, {34.2, -118.1});
  BoundingBox c = BoundingBox::FromCorners({35.0, -118.3}, {35.1, -118.2});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  BoundingBox inter = a.Intersection(b);
  EXPECT_NEAR(inter.min_lat, 34.05, 1e-12);
  EXPECT_NEAR(inter.max_lat, 34.1, 1e-12);
  EXPECT_TRUE(a.Intersection(c).IsEmpty());
}

TEST(BBoxTest, ContainsBox) {
  BoundingBox outer = BoundingBox::FromCorners({34.0, -118.4}, {34.2, -118.0});
  BoundingBox inner = BoundingBox::FromCorners({34.05, -118.3}, {34.1, -118.2});
  EXPECT_TRUE(outer.Contains(inner));
  EXPECT_FALSE(inner.Contains(outer));
}

TEST(BBoxTest, FromCenterRadiusCoversCircle) {
  GeoPoint center{34.05, -118.25};
  BoundingBox box = BoundingBox::FromCenterRadius(center, 500);
  for (double bearing = 0; bearing < 360; bearing += 30) {
    EXPECT_TRUE(box.Contains(Destination(center, bearing, 499)));
  }
  // And it is not wildly larger than needed.
  EXPECT_FALSE(box.Contains(Destination(center, 45, 1200)));
}

TEST(BBoxTest, PerimeterAndArea) {
  BoundingBox box = BoundingBox::FromCorners({0, 0}, {2, 3});
  EXPECT_DOUBLE_EQ(box.AreaDeg2(), 6.0);
  EXPECT_DOUBLE_EQ(box.PerimeterDeg(), 10.0);
}

// ---------- FieldOfView ----------

TEST(FovTest, MakeValidation) {
  GeoPoint cam{34.05, -118.25};
  EXPECT_TRUE(FieldOfView::Make(cam, 90, 60, 100).ok());
  EXPECT_FALSE(FieldOfView::Make(GeoPoint{100, 0}, 90, 60, 100).ok());
  EXPECT_FALSE(FieldOfView::Make(cam, 90, 0, 100).ok());
  EXPECT_FALSE(FieldOfView::Make(cam, 90, 361, 100).ok());
  EXPECT_FALSE(FieldOfView::Make(cam, 90, 60, 0).ok());
  auto wrapped = FieldOfView::Make(cam, -90, 60, 100);
  ASSERT_TRUE(wrapped.ok());
  EXPECT_DOUBLE_EQ(wrapped->direction_deg, 270);
}

TEST(FovTest, ContainsPointGeometry) {
  GeoPoint cam{34.05, -118.25};
  auto fov = FieldOfView::Make(cam, 0 /*north*/, 60, 200);
  ASSERT_TRUE(fov.ok());
  EXPECT_TRUE(fov->ContainsPoint(Destination(cam, 0, 100)));
  EXPECT_TRUE(fov->ContainsPoint(Destination(cam, 25, 150)));
  EXPECT_FALSE(fov->ContainsPoint(Destination(cam, 45, 100)));  // outside angle
  EXPECT_FALSE(fov->ContainsPoint(Destination(cam, 0, 250)));   // beyond R
  EXPECT_FALSE(fov->ContainsPoint(Destination(cam, 180, 50)));  // behind
  EXPECT_TRUE(fov->ContainsPoint(cam));  // camera location itself
}

TEST(FovTest, FullCircleFovSeesAllDirectionsWithinRadius) {
  GeoPoint cam{34.05, -118.25};
  auto fov = FieldOfView::Make(cam, 123, 360, 100);
  ASSERT_TRUE(fov.ok());
  for (double b = 0; b < 360; b += 20) {
    EXPECT_TRUE(fov->ContainsPoint(Destination(cam, b, 90)));
  }
}

TEST(FovTest, SceneLocationContainsSectorSamples) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    GeoPoint cam{rng.Uniform(33.9, 34.2), rng.Uniform(-118.5, -118.0)};
    auto fov = FieldOfView::Make(cam, rng.Uniform(0, 360),
                                 rng.Uniform(20, 120), rng.Uniform(50, 400));
    ASSERT_TRUE(fov.ok());
    BoundingBox scene = fov->SceneLocation();
    EXPECT_TRUE(scene.Contains(cam));
    double half = fov->angle_deg / 2;
    for (int i = 0; i <= 10; ++i) {
      double b = fov->direction_deg - half + fov->angle_deg * i / 10.0;
      double r = fov->radius_m * (i % 2 == 0 ? 1.0 : 0.5);
      EXPECT_TRUE(scene.Contains(Destination(cam, b, r)))
          << fov->ToString() << " sample bearing " << b;
    }
  }
}

TEST(FovTest, SceneLocationTightOnCardinalCrossing) {
  GeoPoint cam{34.05, -118.25};
  // FOV sweeping across north: the northmost point is at full radius due
  // north, not at the boundary rays.
  auto fov = FieldOfView::Make(cam, 0, 90, 300);
  ASSERT_TRUE(fov.ok());
  BoundingBox scene = fov->SceneLocation();
  GeoPoint north = Destination(cam, 0, 300);
  EXPECT_NEAR(scene.max_lat, north.lat, 1e-9);
}

TEST(FovTest, IntersectsBBoxAgreesWithContainment) {
  GeoPoint cam{34.05, -118.25};
  auto fov = FieldOfView::Make(cam, 90, 60, 300);
  ASSERT_TRUE(fov.ok());
  // A box around a point inside the sector.
  GeoPoint inside = Destination(cam, 90, 150);
  EXPECT_TRUE(fov->IntersectsBBox(BoundingBox::FromCenterRadius(inside, 20)));
  // A box far behind the camera.
  GeoPoint behind = Destination(cam, 270, 400);
  EXPECT_FALSE(fov->IntersectsBBox(BoundingBox::FromCenterRadius(behind, 20)));
  // A giant box containing the camera.
  EXPECT_TRUE(fov->IntersectsBBox(BoundingBox::FromCenterRadius(cam, 1000)));
}

TEST(FovTest, CoversBearing) {
  GeoPoint cam{34.05, -118.25};
  auto fov = FieldOfView::Make(cam, 350, 40, 100);
  ASSERT_TRUE(fov.ok());
  EXPECT_TRUE(fov->CoversBearing(350));
  EXPECT_TRUE(fov->CoversBearing(5));    // wraps through north
  EXPECT_TRUE(fov->CoversBearing(330));
  EXPECT_FALSE(fov->CoversBearing(90));
}

TEST(FovTest, SectorFractionInsideBBox) {
  GeoPoint cam{34.05, -118.25};
  auto fov = FieldOfView::Make(cam, 0, 60, 200);
  ASSERT_TRUE(fov.ok());
  // Whole scene box => fraction ~1.
  EXPECT_GT(SectorFractionInsideBBox(*fov, fov->SceneLocation()), 0.95);
  // Disjoint box => 0.
  BoundingBox far_box =
      BoundingBox::FromCenterRadius(Destination(cam, 180, 5000), 100);
  EXPECT_DOUBLE_EQ(SectorFractionInsideBBox(*fov, far_box), 0.0);
}

// ---------- Polyline / StreetNetwork ----------

TEST(PolylineTest, LengthAndPointAt) {
  GeoPoint a{34.0, -118.25};
  GeoPoint b = Destination(a, 90, 1000);
  Polyline line({a, b});
  EXPECT_NEAR(line.LengthMeters(), 1000, 1);
  GeoPoint mid = line.PointAt(500);
  EXPECT_NEAR(HaversineMeters(a, mid), 500, 5);
  EXPECT_EQ(line.PointAt(-5), a);
  EXPECT_EQ(line.PointAt(99999), b);
}

TEST(PolylineTest, BearingFollowsSegments) {
  GeoPoint a{34.0, -118.25};
  GeoPoint b = Destination(a, 90, 500);
  GeoPoint c = Destination(b, 0, 500);
  Polyline line({a, b, c});
  EXPECT_NEAR(line.BearingAt(100), 90, 1);
  EXPECT_NEAR(line.BearingAt(700), 0, 1);
}

TEST(StreetNetworkTest, GridShape) {
  Rng rng(5);
  BoundingBox region = BoundingBox::FromCorners({34.0, -118.3}, {34.1, -118.2});
  StreetNetwork net = StreetNetwork::MakeGrid(region, 4, 3, rng);
  EXPECT_EQ(net.streets().size(), 7u);
  EXPECT_GT(net.TotalLengthMeters(), 0);
}

TEST(StreetNetworkTest, SamplesLieInRegionEnvelope) {
  Rng rng(6);
  BoundingBox region = BoundingBox::FromCorners({34.0, -118.3}, {34.1, -118.2});
  StreetNetwork net = StreetNetwork::MakeGrid(region, 5, 5, rng);
  // Allow jitter margin.
  BoundingBox envelope = region;
  envelope.Extend(GeoPoint{region.min_lat - 0.01, region.min_lon - 0.01});
  envelope.Extend(GeoPoint{region.max_lat + 0.01, region.max_lon + 0.01});
  for (int i = 0; i < 300; ++i) {
    auto s = net.Sample(rng);
    EXPECT_TRUE(envelope.Contains(s.location));
    EXPECT_LT(s.street_index, net.streets().size());
  }
}

TEST(StreetNetworkTest, EmptyForDegenerateInput) {
  Rng rng(1);
  StreetNetwork net = StreetNetwork::MakeGrid(BoundingBox::Empty(), 3, 3, rng);
  EXPECT_TRUE(net.streets().empty());
}

// ---------- CoverageGrid ----------

TEST(CoverageTest, MakeValidation) {
  BoundingBox region = BoundingBox::FromCorners({34.0, -118.3}, {34.1, -118.2});
  EXPECT_TRUE(CoverageGrid::Make(region, 4, 4, 4).ok());
  EXPECT_FALSE(CoverageGrid::Make(BoundingBox::Empty(), 4, 4).ok());
  EXPECT_FALSE(CoverageGrid::Make(region, 0, 4).ok());
  EXPECT_FALSE(CoverageGrid::Make(region, 4, 4, 0).ok());
  EXPECT_FALSE(CoverageGrid::Make(region, 4, 4, 999).ok());
}

TEST(CoverageTest, StartsEmpty) {
  BoundingBox region = BoundingBox::FromCorners({34.0, -118.3}, {34.1, -118.2});
  auto grid = CoverageGrid::Make(region, 4, 4, 4);
  ASSERT_TRUE(grid.ok());
  EXPECT_DOUBLE_EQ(grid->CoverageRatio(), 0.0);
  EXPECT_EQ(grid->FindGaps().size(), 16u);
}

TEST(CoverageTest, SingleFovCoversSomething) {
  BoundingBox region = BoundingBox::FromCorners({34.0, -118.3}, {34.1, -118.2});
  auto grid = CoverageGrid::Make(region, 8, 8, 4);
  ASSERT_TRUE(grid.ok());
  auto fov = FieldOfView::Make(region.Center(), 0, 90, 500);
  ASSERT_TRUE(fov.ok());
  int gained = grid->AddFov(*fov);
  EXPECT_GT(gained, 0);
  EXPECT_GT(grid->CoverageRatio(), 0.0);
  EXPECT_GE(grid->CellCoverageRatio(), grid->CoverageRatio());
}

TEST(CoverageTest, MarginalGainIsMonotonicInformation) {
  BoundingBox region = BoundingBox::FromCorners({34.0, -118.3}, {34.1, -118.2});
  auto grid = CoverageGrid::Make(region, 8, 8, 4);
  ASSERT_TRUE(grid.ok());
  auto fov = FieldOfView::Make(region.Center(), 0, 90, 500);
  ASSERT_TRUE(fov.ok());
  int first = grid->AddFov(*fov);
  int second = grid->AddFov(*fov);  // identical FOV adds nothing new
  EXPECT_GT(first, 0);
  EXPECT_EQ(second, 0);
  EXPECT_EQ(grid->fov_count(), 2);
}

TEST(CoverageTest, OutOfRegionFovIgnored) {
  BoundingBox region = BoundingBox::FromCorners({34.0, -118.3}, {34.1, -118.2});
  auto grid = CoverageGrid::Make(region, 4, 4, 4);
  ASSERT_TRUE(grid.ok());
  auto fov = FieldOfView::Make(GeoPoint{35.0, -118.25}, 0, 60, 100);
  ASSERT_TRUE(fov.ok());
  EXPECT_EQ(grid->AddFov(*fov), 0);
  EXPECT_DOUBLE_EQ(grid->CoverageRatio(), 0.0);
}

TEST(CoverageTest, ManyFovsApproachFullCoverage) {
  BoundingBox region = BoundingBox::FromCorners({34.0, -118.3}, {34.05, -118.25});
  auto grid = CoverageGrid::Make(region, 4, 4, 4);
  ASSERT_TRUE(grid.ok());
  Rng rng(9);
  double prev = 0;
  for (int i = 0; i < 600; ++i) {
    GeoPoint cam{rng.Uniform(region.min_lat, region.max_lat),
                 rng.Uniform(region.min_lon, region.max_lon)};
    auto fov = FieldOfView::Make(cam, rng.Uniform(0, 360), 70, 600);
    ASSERT_TRUE(fov.ok());
    grid->AddFov(*fov);
    double cur = grid->CoverageRatio();
    EXPECT_GE(cur, prev);  // coverage never decreases
    prev = cur;
  }
  EXPECT_GT(grid->CoverageRatio(), 0.9);
  EXPECT_LT(grid->FindGaps().size(), 16u);
}

TEST(CoverageTest, GapsReportMissingBearings) {
  BoundingBox region = BoundingBox::FromCorners({34.0, -118.3}, {34.1, -118.2});
  auto grid = CoverageGrid::Make(region, 1, 1, 4);
  ASSERT_TRUE(grid.ok());
  // Cover from the south looking north => bearing ~0 sector covered.
  GeoPoint south{region.min_lat + 0.001, -118.25};
  auto fov = FieldOfView::Make(south, 0, 90, 9000);
  ASSERT_TRUE(fov.ok());
  grid->AddFov(*fov);
  auto gaps = grid->FindGaps();
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].missing_bearings_deg.size(), 3u);
}

}  // namespace
}  // namespace tvdp::geo
