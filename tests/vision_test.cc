#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "image/augment.h"
#include "image/draw.h"
#include "image/scene_gen.h"
#include "ml/cross_validation.h"
#include "ml/linear_svm.h"
#include "vision/bow.h"
#include "vision/cnn.h"
#include "vision/color_histogram.h"
#include "vision/feature.h"
#include "vision/sift.h"

namespace tvdp::vision {
namespace {

/// A labelled toy corpus from the street-scene generator.
void MakeCorpus(int per_class, uint64_t seed, std::vector<image::Image>* images,
                std::vector<int>* labels) {
  Rng rng(seed);
  image::StreetSceneGenerator gen;
  for (int c = 0; c < image::kNumCleanlinessClasses; ++c) {
    for (int i = 0; i < per_class; ++i) {
      images->push_back(
          gen.Generate(static_cast<image::SceneClass>(c), rng).image);
      labels->push_back(c);
    }
  }
}

// ---------- FeatureKind ----------

TEST(FeatureKindTest, Names) {
  EXPECT_EQ(FeatureKindName(FeatureKind::kColorHistogram), "color_histogram");
  EXPECT_EQ(FeatureKindName(FeatureKind::kSiftBow), "sift_bow");
  EXPECT_EQ(FeatureKindName(FeatureKind::kCnn), "cnn");
}

// ---------- Color histogram ----------

TEST(ColorHistogramTest, PaperConfiguration) {
  ColorHistogramExtractor ex;
  EXPECT_EQ(ex.dim(), 50u);  // 20 + 20 + 10
  EXPECT_EQ(ex.name(), "color_histogram");
  EXPECT_TRUE(ex.ready());
}

TEST(ColorHistogramTest, MarginalsEachSumToOne) {
  ColorHistogramExtractor ex;
  Rng rng(1);
  image::Image img(32, 32);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      img.at(x, y) = image::Rgb{static_cast<uint8_t>(rng.UniformInt(0, 255)),
                                static_cast<uint8_t>(rng.UniformInt(0, 255)),
                                static_cast<uint8_t>(rng.UniformInt(0, 255))};
    }
  }
  auto feat = ex.Extract(img);
  ASSERT_TRUE(feat.ok());
  double h = 0, s = 0, v = 0;
  for (int i = 0; i < 20; ++i) h += (*feat)[static_cast<size_t>(i)];
  for (int i = 20; i < 40; ++i) s += (*feat)[static_cast<size_t>(i)];
  for (int i = 40; i < 50; ++i) v += (*feat)[static_cast<size_t>(i)];
  EXPECT_NEAR(h, 1.0, 1e-9);
  EXPECT_NEAR(s, 1.0, 1e-9);
  EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(ColorHistogramTest, PureColorConcentratesHueBin) {
  ColorHistogramExtractor ex;
  image::Image green(8, 8, image::Rgb{0, 255, 0});
  auto feat = ex.Extract(green);
  ASSERT_TRUE(feat.ok());
  // Hue 120 of 360 with 20 bins -> bin 6.
  EXPECT_NEAR((*feat)[6], 1.0, 1e-9);
}

TEST(ColorHistogramTest, RejectsEmptyImage) {
  ColorHistogramExtractor ex;
  EXPECT_FALSE(ex.Extract(image::Image()).ok());
}

TEST(ColorHistogramTest, InvariantToPixelShuffle) {
  // A histogram ignores layout: the same pixels in any order give the
  // same descriptor.
  Rng rng(2);
  image::Image img(16, 16);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      img.at(x, y) = image::Rgb{static_cast<uint8_t>(rng.UniformInt(0, 255)),
                                static_cast<uint8_t>(rng.UniformInt(0, 255)),
                                static_cast<uint8_t>(rng.UniformInt(0, 255))};
    }
  }
  image::Image flipped = image::FlipHorizontal(img);
  ColorHistogramExtractor ex;
  auto f1 = ex.Extract(img);
  auto f2 = ex.Extract(flipped);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  for (size_t i = 0; i < f1->size(); ++i) {
    EXPECT_NEAR((*f1)[i], (*f2)[i], 1e-12);
  }
}

// ---------- SIFT ----------

TEST(SiftTest, RejectsTinyImages) {
  SiftDetector det;
  EXPECT_FALSE(det.DetectAndDescribe(image::Image(8, 8)).ok());
  EXPECT_FALSE(det.DetectAndDescribe(image::Image()).ok());
}

TEST(SiftTest, FlatImageHasNoKeypoints) {
  SiftDetector det;
  auto feats = det.DetectAndDescribe(image::Image(64, 64, image::Rgb{128, 128, 128}));
  ASSERT_TRUE(feats.ok());
  EXPECT_TRUE(feats->empty());
}

TEST(SiftTest, BlobsProduceKeypointsNearBlobs) {
  image::Image img(64, 64, image::Rgb{220, 220, 220});
  image::FillCircle(img, 16, 16, 4, image::Rgb{20, 20, 20});
  image::FillCircle(img, 48, 48, 4, image::Rgb{20, 20, 20});
  SiftDetector det;
  auto feats = det.DetectAndDescribe(img);
  ASSERT_TRUE(feats.ok());
  ASSERT_FALSE(feats->empty());
  // Every keypoint should be near one of the two blobs (DoG responds to
  // the blobs, not the flat background).
  for (const auto& f : *feats) {
    double d1 = std::hypot(f.keypoint.x - 16, f.keypoint.y - 16);
    double d2 = std::hypot(f.keypoint.x - 48, f.keypoint.y - 48);
    EXPECT_LT(std::min(d1, d2), 12.0);
  }
}

TEST(SiftTest, DescriptorsAreUnitNormClipped) {
  Rng rng(3);
  image::StreetSceneGenerator gen;
  image::Image img = gen.Generate(image::SceneClass::kBulkyItem, rng).image;
  SiftDetector det;
  auto feats = det.DetectAndDescribe(img);
  ASSERT_TRUE(feats.ok());
  ASSERT_FALSE(feats->empty());
  for (const auto& f : *feats) {
    ASSERT_EQ(f.descriptor.size(), 128u);
    EXPECT_NEAR(ml::L2Norm(f.descriptor), 1.0, 1e-6);
    for (double v : f.descriptor) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 0.2 / 0.2 + 1e-6);  // post-renormalization bound is loose
    }
  }
}

TEST(SiftTest, MaxKeypointsCapRespected) {
  Rng rng(4);
  image::StreetSceneGenerator gen;
  image::Image img = gen.Generate(image::SceneClass::kIllegalDumping, rng).image;
  SiftDetector::Options opts;
  opts.max_keypoints = 10;
  SiftDetector det(opts);
  auto feats = det.DetectAndDescribe(img);
  ASSERT_TRUE(feats.ok());
  EXPECT_LE(feats->size(), 10u);
}

TEST(SiftTest, GaussianBlurReducesVariance) {
  Rng rng(5);
  GrayImage img;
  img.width = 32;
  img.height = 32;
  img.data.resize(32 * 32);
  for (float& v : img.data) v = static_cast<float>(rng.Uniform());
  GrayImage blurred = GaussianBlur(img, 2.0);
  auto variance = [](const GrayImage& g) {
    double mean = 0;
    for (float v : g.data) mean += v;
    mean /= g.data.size();
    double var = 0;
    for (float v : g.data) var += (v - mean) * (v - mean);
    return var / g.data.size();
  };
  EXPECT_LT(variance(blurred), variance(img) * 0.5);
}

TEST(SiftTest, DownsampleHalvesDimensions) {
  GrayImage img;
  img.width = 33;
  img.height = 20;
  img.data.resize(33 * 20, 0.5f);
  GrayImage down = Downsample2x(img);
  EXPECT_EQ(down.width, 16);
  EXPECT_EQ(down.height, 10);
}

// ---------- BoW ----------

TEST(BowTest, FitRequiresEnoughDescriptors) {
  BowEncoder::Options opts;
  opts.vocabulary_size = 8;
  BowEncoder enc(opts);
  EXPECT_FALSE(enc.Fit({{}}).ok());
  EXPECT_FALSE(enc.fitted());
  EXPECT_FALSE(enc.Encode({}).ok());
}

TEST(BowTest, EncodeProducesNormalizedHistogram) {
  Rng rng(6);
  BowEncoder::Options opts;
  opts.vocabulary_size = 8;
  BowEncoder enc(opts);
  std::vector<std::vector<ml::FeatureVector>> sets(4);
  for (auto& s : sets) {
    for (int i = 0; i < 20; ++i) {
      ml::FeatureVector d(16);
      for (double& x : d) x = rng.Normal();
      s.push_back(std::move(d));
    }
  }
  ASSERT_TRUE(enc.Fit(sets).ok());
  EXPECT_EQ(enc.vocabulary_size(), 8u);
  auto hist = enc.Encode(sets[0]);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->size(), 8u);
  EXPECT_NEAR(ml::L2Norm(*hist), 1.0, 1e-9);
  // Empty descriptor set encodes to the zero vector (no crash).
  auto empty = enc.Encode({});
  ASSERT_TRUE(empty.ok());
  EXPECT_NEAR(ml::L2Norm(*empty), 0.0, 1e-12);
}

TEST(SiftBowExtractorTest, FitThenExtract) {
  std::vector<image::Image> images;
  std::vector<int> labels;
  MakeCorpus(8, 77, &images, &labels);
  BowEncoder::Options bow;
  bow.vocabulary_size = 32;
  SiftBowExtractor ex(SiftDetector::Options{}, bow);
  EXPECT_FALSE(ex.ready());
  EXPECT_FALSE(ex.Extract(images[0]).ok());  // must fit first
  ASSERT_TRUE(ex.Fit(images, labels).ok());
  EXPECT_TRUE(ex.ready());
  EXPECT_EQ(ex.dim(), 32u);
  auto feat = ex.Extract(images[0]);
  ASSERT_TRUE(feat.ok());
  EXPECT_EQ(feat->size(), 32u);
}

// ---------- CNN ----------

TEST(CnnTest, RawFeatureDimensions) {
  CnnFeatureExtractor cnn;
  EXPECT_EQ(cnn.raw_dim(), 32u * 5);
  EXPECT_EQ(cnn.dim(), cnn.raw_dim());  // not fine-tuned yet
  EXPECT_FALSE(cnn.fine_tuned());
  Rng rng(8);
  image::StreetSceneGenerator gen;
  image::Image img = gen.Generate(image::SceneClass::kClean, rng).image;
  auto feat = cnn.Extract(img);
  ASSERT_TRUE(feat.ok());
  EXPECT_EQ(feat->size(), cnn.raw_dim());
  EXPECT_NEAR(ml::L2Norm(*feat), 1.0, 1e-6);
}

TEST(CnnTest, FineTuneChangesOutputDim) {
  std::vector<image::Image> images;
  std::vector<int> labels;
  MakeCorpus(10, 88, &images, &labels);
  CnnFeatureExtractor::Options opts;
  opts.finetune_units = 24;
  opts.finetune_epochs = 10;
  CnnFeatureExtractor cnn(opts);
  ASSERT_TRUE(cnn.Fit(images, labels).ok());
  EXPECT_TRUE(cnn.fine_tuned());
  EXPECT_EQ(cnn.dim(), 24u);
  auto feat = cnn.Extract(images[0]);
  ASSERT_TRUE(feat.ok());
  EXPECT_EQ(feat->size(), 24u);
}

TEST(CnnTest, FitValidatesInput) {
  CnnFeatureExtractor cnn;
  EXPECT_FALSE(cnn.Fit({}, {}).ok());
  std::vector<image::Image> one{image::Image(32, 32)};
  EXPECT_FALSE(cnn.Fit(one, {0, 1}).ok());
}

TEST(CnnTest, DeterministicExtraction) {
  CnnFeatureExtractor a, b;
  Rng rng(9);
  image::StreetSceneGenerator gen;
  image::Image img = gen.Generate(image::SceneClass::kGraffiti, rng).image;
  auto fa = a.Extract(img);
  auto fb = b.Extract(img);
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  EXPECT_EQ(*fa, *fb);
}

TEST(CnnTest, HandlesNonSquareInputByResizing) {
  CnnFeatureExtractor cnn;
  image::Image img(100, 40, image::Rgb{120, 90, 60});
  auto feat = cnn.Extract(img);
  ASSERT_TRUE(feat.ok());
  EXPECT_EQ(feat->size(), cnn.raw_dim());
}

// ---------- The paper's Fig. 6 shape, in miniature ----------

TEST(FeatureQualityTest, CnnBeatsColorHistogramAfterFineTuning) {
  std::vector<image::Image> images;
  std::vector<int> labels;
  MakeCorpus(70, 2019, &images, &labels);

  // Train/test split indices (80/20 interleaved for stratification).
  std::vector<image::Image> train_imgs, test_imgs;
  std::vector<int> train_labels, test_labels;
  for (size_t i = 0; i < images.size(); ++i) {
    if (i % 5 == 4) {
      test_imgs.push_back(images[i]);
      test_labels.push_back(labels[i]);
    } else {
      train_imgs.push_back(images[i]);
      train_labels.push_back(labels[i]);
    }
  }

  auto evaluate = [&](FeatureExtractor& ex) {
    ml::Dataset train, test;
    for (size_t i = 0; i < train_imgs.size(); ++i) {
      auto f = ex.Extract(train_imgs[i]);
      EXPECT_TRUE(f.ok());
      train.Add(std::move(*f), train_labels[i]).ok();
    }
    for (size_t i = 0; i < test_imgs.size(); ++i) {
      auto f = ex.Extract(test_imgs[i]);
      EXPECT_TRUE(f.ok());
      test.Add(std::move(*f), test_labels[i]).ok();
    }
    ml::LinearSvmClassifier svm;
    auto cm = ml::TrainAndEvaluate(svm, train, test);
    EXPECT_TRUE(cm.ok());
    return cm->MacroF1();
  };

  ColorHistogramExtractor color;
  double color_f1 = evaluate(color);

  CnnFeatureExtractor::Options copts;
  copts.finetune_epochs = 40;
  CnnFeatureExtractor cnn(copts);
  ASSERT_TRUE(cnn.Fit(train_imgs, train_labels).ok());
  double cnn_f1 = evaluate(cnn);

  EXPECT_GT(cnn_f1, color_f1 + 0.1)
      << "cnn=" << cnn_f1 << " color=" << color_f1;
  // The full bench corpus reaches ~0.85; this deliberately small test
  // corpus (280 train images) clears a lower bar.
  EXPECT_GT(cnn_f1, 0.65);
}

}  // namespace
}  // namespace tvdp::vision
