#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "ml/classifier.h"
#include "ml/cross_validation.h"
#include "ml/dataset.h"
#include "ml/kmeans.h"
#include "ml/knn.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"

namespace tvdp::ml {
namespace {

/// Three well-separated Gaussian blobs in `dim` dimensions.
Dataset MakeBlobs(int per_class, int num_classes, size_t dim, double spread,
                  uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  for (int c = 0; c < num_classes; ++c) {
    FeatureVector center(dim, 0.0);
    for (size_t d = 0; d < dim; ++d) {
      center[d] = (d % static_cast<size_t>(num_classes)) ==
                          static_cast<size_t>(c)
                      ? 4.0
                      : 0.0;
    }
    for (int i = 0; i < per_class; ++i) {
      FeatureVector x(dim);
      for (size_t d = 0; d < dim; ++d) x[d] = center[d] + rng.Normal(0, spread);
      EXPECT_TRUE(data.Add(std::move(x), c).ok());
    }
  }
  return data;
}

// ---------- Dataset ----------

TEST(DatasetTest, AddValidatesDimensionality) {
  Dataset d;
  EXPECT_TRUE(d.Add({1, 2}, 0).ok());
  EXPECT_FALSE(d.Add({1, 2, 3}, 0).ok());
  EXPECT_FALSE(d.Add({1, 2}, -1).ok());
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.dim(), 2u);
}

TEST(DatasetTest, ClassCountsAndNumClasses) {
  Dataset d;
  d.Add({0.0}, 0).ok();
  d.Add({1.0}, 2).ok();
  d.Add({2.0}, 2).ok();
  EXPECT_EQ(d.NumClasses(), 3);
  auto counts = d.ClassCounts();
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 0);
  EXPECT_EQ(counts[2], 2);
}

TEST(DatasetTest, StratifiedSplitPreservesProportions) {
  Dataset d = MakeBlobs(50, 4, 3, 1.0, 1);
  Rng rng(2);
  auto [train, test] = d.StratifiedSplit(0.8, rng);
  EXPECT_EQ(train.size(), 160u);
  EXPECT_EQ(test.size(), 40u);
  for (int count : train.ClassCounts()) EXPECT_EQ(count, 40);
  for (int count : test.ClassCounts()) EXPECT_EQ(count, 10);
}

TEST(DatasetTest, StandardizeCentersData) {
  Dataset d = MakeBlobs(100, 2, 4, 2.0, 3);
  auto m = d.ComputeMoments();
  d.Standardize(m);
  auto m2 = d.ComputeMoments();
  for (size_t i = 0; i < m2.mean.size(); ++i) {
    EXPECT_NEAR(m2.mean[i], 0.0, 1e-9);
    EXPECT_NEAR(m2.stddev[i], 1.0, 1e-9);
  }
}

TEST(DatasetTest, VectorMath) {
  FeatureVector a{3, 4}, b{0, 0};
  EXPECT_DOUBLE_EQ(L2Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(L2DistanceSquared(a, b), 25.0);
  EXPECT_DOUBLE_EQ(Dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(L2Norm(a), 5.0);
  FeatureVector c = a;
  L2NormalizeInPlace(c);
  EXPECT_NEAR(L2Norm(c), 1.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity(a, c), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
}

// ---------- Metrics ----------

TEST(MetricsTest, PerfectPredictions) {
  ConfusionMatrix cm(3);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 10; ++i) cm.Add(c, c);
  }
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.MacroF1(), 1.0);
  for (int c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(cm.Precision(c), 1.0);
    EXPECT_DOUBLE_EQ(cm.Recall(c), 1.0);
  }
}

TEST(MetricsTest, KnownValues) {
  // Binary: class0 tp=8 fn=2; class1: 5 correct, 2->0 errors... construct:
  ConfusionMatrix cm(2);
  for (int i = 0; i < 8; ++i) cm.Add(0, 0);
  for (int i = 0; i < 2; ++i) cm.Add(0, 1);
  for (int i = 0; i < 5; ++i) cm.Add(1, 1);
  for (int i = 0; i < 1; ++i) cm.Add(1, 0);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 13.0 / 16.0);
  EXPECT_DOUBLE_EQ(cm.Precision(0), 8.0 / 9.0);
  EXPECT_DOUBLE_EQ(cm.Recall(0), 8.0 / 10.0);
  double p = 8.0 / 9.0, r = 0.8;
  EXPECT_DOUBLE_EQ(cm.F1(0), 2 * p * r / (p + r));
}

TEST(MetricsTest, NeverPredictedClassHasZeroF1) {
  ConfusionMatrix cm(3);
  cm.Add(0, 0);
  cm.Add(1, 0);
  cm.Add(2, 0);
  EXPECT_DOUBLE_EQ(cm.F1(1), 0.0);
  EXPECT_DOUBLE_EQ(cm.F1(2), 0.0);
  EXPECT_GT(cm.MacroF1(), 0.0);
  EXPECT_LT(cm.MacroF1(), 0.4);
}

TEST(MetricsTest, OutOfRangeCountedAsOverflow) {
  ConfusionMatrix cm(2);
  cm.Add(0, 0);
  cm.Add(5, 1);  // overflow
  EXPECT_EQ(cm.total(), 2);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 1.0);  // overflow excluded
}

TEST(MetricsTest, BuildConfusionValidates) {
  EXPECT_FALSE(BuildConfusion({0, 1}, {0}, 2).ok());
  EXPECT_FALSE(BuildConfusion({0}, {0}, 0).ok());
  auto cm = BuildConfusion({0, 1, 1}, {0, 1, 0}, 2);
  ASSERT_TRUE(cm.ok());
  EXPECT_EQ(cm->At(1, 0), 1);
}

// ---------- KMeans ----------

TEST(KMeansTest, RecoverWellSeparatedClusters) {
  Rng rng(5);
  std::vector<FeatureVector> points;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 50; ++i) {
      points.push_back({c * 10.0 + rng.Normal(0, 0.5),
                        c * -10.0 + rng.Normal(0, 0.5)});
    }
  }
  KMeans::Options opts;
  opts.k = 3;
  auto model = KMeans::Fit(points, opts, rng);
  ASSERT_TRUE(model.ok());
  EXPECT_LT(model->Inertia(points), 1.0);
  // All three centers distinct and near the blob centers.
  std::set<size_t> assignments;
  for (const auto& p : points) assignments.insert(model->Assign(p));
  EXPECT_EQ(assignments.size(), 3u);
}

TEST(KMeansTest, Validation) {
  Rng rng(1);
  std::vector<FeatureVector> two = {{0.0}, {1.0}};
  KMeans::Options opts;
  opts.k = 3;
  EXPECT_FALSE(KMeans::Fit(two, opts, rng).ok());
  opts.k = 0;
  EXPECT_FALSE(KMeans::Fit(two, opts, rng).ok());
  std::vector<FeatureVector> ragged = {{0.0}, {1.0, 2.0}};
  opts.k = 2;
  EXPECT_FALSE(KMeans::Fit(ragged, opts, rng).ok());
}

TEST(KMeansTest, KEqualsNPutsCentroidOnEachPoint) {
  Rng rng(2);
  std::vector<FeatureVector> points = {{0.0, 0.0}, {5.0, 5.0}, {9.0, 1.0}};
  KMeans::Options opts;
  opts.k = 3;
  auto model = KMeans::Fit(points, opts, rng);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->Inertia(points), 0.0, 1e-18);
}

// ---------- Classifiers (parameterized over the whole Fig. 6 grid) ----------

class ClassifierGridTest : public ::testing::TestWithParam<ClassifierKind> {};

TEST_P(ClassifierGridTest, LearnsSeparableBlobs) {
  Dataset data = MakeBlobs(60, 3, 6, 0.7, 42);
  Rng rng(7);
  data.Shuffle(rng);
  auto [train, test] = data.StratifiedSplit(0.8, rng);
  auto model = MakeClassifier(GetParam());
  ASSERT_NE(model, nullptr);
  auto cm = TrainAndEvaluate(*model, train, test);
  ASSERT_TRUE(cm.ok()) << cm.status();
  EXPECT_GT(cm->MacroF1(), 0.9) << ClassifierKindName(GetParam());
}

TEST_P(ClassifierGridTest, RejectsEmptyTrainingSet) {
  auto model = MakeClassifier(GetParam());
  EXPECT_FALSE(model->Train(Dataset()).ok());
}

TEST_P(ClassifierGridTest, ProbabilitiesFormDistribution) {
  Dataset data = MakeBlobs(30, 3, 4, 1.0, 9);
  auto model = MakeClassifier(GetParam());
  ASSERT_TRUE(model->Train(data).ok());
  FeatureVector probe(4, 1.0);
  std::vector<double> proba = model->PredictProba(probe);
  ASSERT_EQ(proba.size(), 3u);
  double total = 0;
  for (double p : proba) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0 + 1e-9);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST_P(ClassifierGridTest, CloneIsIndependentAndUntrained) {
  Dataset data = MakeBlobs(20, 2, 3, 0.5, 11);
  auto model = MakeClassifier(GetParam());
  auto clone = model->Clone();
  ASSERT_TRUE(model->Train(data).ok());
  EXPECT_TRUE(model->trained());
  EXPECT_FALSE(clone->trained());
  EXPECT_EQ(clone->name(), model->name());
}

TEST_P(ClassifierGridTest, DeterministicTraining) {
  Dataset data = MakeBlobs(30, 3, 4, 0.8, 13);
  auto m1 = MakeClassifier(GetParam());
  auto m2 = MakeClassifier(GetParam());
  ASSERT_TRUE(m1->Train(data).ok());
  ASSERT_TRUE(m2->Train(data).ok());
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    FeatureVector x(4);
    for (double& v : x) v = rng.Uniform(-2, 6);
    EXPECT_EQ(m1->Predict(x), m2->Predict(x));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ClassifierGridTest,
    ::testing::Values(ClassifierKind::kKnn, ClassifierKind::kNaiveBayes,
                      ClassifierKind::kDecisionTree,
                      ClassifierKind::kRandomForest,
                      ClassifierKind::kLogisticRegression,
                      ClassifierKind::kLinearSvm, ClassifierKind::kMlp),
    [](const ::testing::TestParamInfo<ClassifierKind>& info) {
      return ClassifierKindName(info.param);
    });

TEST(ClassifierFactoryTest, NamesAreStable) {
  EXPECT_EQ(ClassifierKindName(ClassifierKind::kLinearSvm), "svm");
  EXPECT_EQ(MakeClassifier(ClassifierKind::kRandomForest)->name(),
            "random_forest");
  EXPECT_EQ(AllClassifierKinds().size(), 7u);
}

// ---------- Specific classifier behaviours ----------

TEST(KnnTest, SingleNeighborMemorizes) {
  Dataset data;
  data.Add({0.0, 0.0}, 0).ok();
  data.Add({10.0, 10.0}, 1).ok();
  KnnClassifier knn(1);
  ASSERT_TRUE(knn.Train(data).ok());
  EXPECT_EQ(knn.Predict({0.1, 0.1}), 0);
  EXPECT_EQ(knn.Predict({9.0, 9.0}), 1);
}

TEST(DecisionTreeTest, AxisAlignedSplitIsExact) {
  Dataset data;
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    double x = rng.Uniform(0, 1);
    data.Add({x, rng.Uniform(0, 1)}, x < 0.5 ? 0 : 1).ok();
  }
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Train(data).ok());
  EXPECT_EQ(tree.Predict({0.1, 0.9}), 0);
  EXPECT_EQ(tree.Predict({0.9, 0.1}), 1);
  EXPECT_GT(tree.node_count(), 1u);
}

TEST(DecisionTreeTest, DepthLimitRespected) {
  Dataset data = MakeBlobs(50, 3, 4, 2.0, 21);
  DecisionTreeClassifier::Options opts;
  opts.max_depth = 2;
  DecisionTreeClassifier tree(opts);
  ASSERT_TRUE(tree.Train(data).ok());
  EXPECT_LE(tree.depth(), 2);
}

TEST(RandomForestTest, HasConfiguredTreeCount) {
  Dataset data = MakeBlobs(30, 2, 3, 1.0, 22);
  RandomForestClassifier::Options opts;
  opts.num_trees = 7;
  RandomForestClassifier forest(opts);
  ASSERT_TRUE(forest.Train(data).ok());
  EXPECT_EQ(forest.tree_count(), 7u);
}

TEST(RandomForestTest, BeatsSingleTreeOnNoisyData) {
  Dataset data = MakeBlobs(80, 4, 8, 2.4, 23);
  Rng rng(24);
  data.Shuffle(rng);
  auto [train, test] = data.StratifiedSplit(0.7, rng);
  DecisionTreeClassifier::Options topt;
  topt.max_depth = 4;
  DecisionTreeClassifier tree(topt);
  RandomForestClassifier forest;
  auto cm_tree = TrainAndEvaluate(tree, train, test);
  auto cm_forest = TrainAndEvaluate(forest, train, test);
  ASSERT_TRUE(cm_tree.ok());
  ASSERT_TRUE(cm_forest.ok());
  EXPECT_GE(cm_forest->MacroF1() + 0.02, cm_tree->MacroF1());
}

TEST(SvmTest, MarginsSeparateBlobs) {
  Dataset data = MakeBlobs(50, 2, 4, 0.5, 31);
  LinearSvmClassifier svm;
  ASSERT_TRUE(svm.Train(data).ok());
  FeatureVector class0_like{4, 0, 4, 0};
  auto margins = svm.DecisionFunction(class0_like);
  EXPECT_GT(margins[0], margins[1]);
}

TEST(SvmTest, SerializationRoundtrip) {
  Dataset data = MakeBlobs(40, 3, 5, 0.8, 32);
  LinearSvmClassifier svm;
  ASSERT_TRUE(svm.Train(data).ok());
  auto json = svm.ToJson();
  ASSERT_TRUE(json.ok());
  auto restored = LinearSvmClassifier::FromJson(*json);
  ASSERT_TRUE(restored.ok()) << restored.status();
  Rng rng(33);
  for (int i = 0; i < 50; ++i) {
    FeatureVector x(5);
    for (double& v : x) v = rng.Uniform(-2, 6);
    EXPECT_EQ(svm.Predict(x), (*restored)->Predict(x));
  }
}

TEST(SvmTest, FromJsonRejectsMalformed) {
  EXPECT_FALSE(LinearSvmClassifier::FromJson(Json::MakeObject()).ok());
  Json j = Json::MakeObject();
  j["type"] = "svm";
  j["num_classes"] = 2;
  j["dim"] = 3;
  j["weights"] = Json::MakeArray();  // wrong arity
  j["bias"] = Json::MakeArray();
  EXPECT_FALSE(LinearSvmClassifier::FromJson(j).ok());
}

TEST(LogRegTest, SerializationRoundtrip) {
  Dataset data = MakeBlobs(40, 2, 4, 0.8, 34);
  LogisticRegressionClassifier lr;
  ASSERT_TRUE(lr.Train(data).ok());
  auto json = lr.ToJson();
  ASSERT_TRUE(json.ok());
  auto restored = LogisticRegressionClassifier::FromJson(*json);
  ASSERT_TRUE(restored.ok());
  FeatureVector x{4, 0, 4, 0};
  EXPECT_EQ(lr.Predict(x), (*restored)->Predict(x));
}

TEST(LogRegTest, UntrainedSerializationFails) {
  LogisticRegressionClassifier lr;
  EXPECT_FALSE(lr.ToJson().ok());
}

TEST(MlpTest, HiddenActivationsHaveConfiguredWidth) {
  Dataset data = MakeBlobs(30, 2, 4, 0.6, 35);
  MlpClassifier::Options opts;
  opts.hidden_units = 12;
  MlpClassifier mlp(opts);
  ASSERT_TRUE(mlp.Train(data).ok());
  EXPECT_EQ(mlp.HiddenActivations(FeatureVector(4, 0.0)).size(), 12u);
}

TEST(SoftmaxTest, StableAndNormalized) {
  std::vector<double> v{1000, 1001, 999};
  SoftmaxInPlace(v);
  double total = v[0] + v[1] + v[2];
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(v[1], v[0]);
  EXPECT_GT(v[0], v[2]);
}

// ---------- Cross-validation ----------

TEST(CrossValidationTest, TenFoldMatchesPaperProtocol) {
  Dataset data = MakeBlobs(30, 3, 4, 0.7, 51);
  Rng rng(52);
  NaiveBayesClassifier nb;
  auto result = KFoldCrossValidate(nb, data, 10, rng);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->fold_macro_f1.size(), 10u);
  EXPECT_GT(result->mean_macro_f1, 0.9);
  EXPECT_EQ(result->pooled.total(), static_cast<int64_t>(data.size()));
}

TEST(CrossValidationTest, Validation) {
  Dataset data = MakeBlobs(2, 2, 2, 0.5, 53);
  Rng rng(54);
  NaiveBayesClassifier nb;
  EXPECT_FALSE(KFoldCrossValidate(nb, data, 1, rng).ok());
  EXPECT_FALSE(KFoldCrossValidate(nb, data, 50, rng).ok());
}

TEST(CrossValidationTest, FoldScoresAreReasonablyStable) {
  Dataset data = MakeBlobs(40, 2, 3, 0.5, 55);
  Rng rng(56);
  KnnClassifier knn(3);
  auto result = KFoldCrossValidate(knn, data, 5, rng);
  ASSERT_TRUE(result.ok());
  for (double f1 : result->fold_macro_f1) EXPECT_GT(f1, 0.8);
}

}  // namespace
}  // namespace tvdp::ml
