// MVCC snapshot isolation: lock-free reads over published versions.
//
// Covers the four contracts of DESIGN.md "MVCC snapshots and copy-on-write
// storage":
//  * isolation  — a reader pinned mid-commit sees the byte-identical
//    pre-commit result set, no matter how much churn commits after the pin;
//  * liveness   — reads complete while the writer lock is held, and a
//    saturating reader pool never delays a writer commit;
//  * durability — crash recovery republishes a version with the same
//    serialized bytes and the same query envelopes;
//  * fallback   — legacy (unmanaged) engines and the snapshot_reads=false
//    toggle still serve correct results through the locked path.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "geo/geo_point.h"
#include "platform/tvdp.h"
#include "query/engine.h"
#include "query/executor.h"
#include "query/planner.h"
#include "query/query.h"
#include "query/snapshot.h"
#include "storage/tvdp_schema.h"

namespace tvdp::query {
namespace {

using platform::AnnotationRecord;
using platform::ImageRecord;
using platform::Tvdp;
using storage::Row;
using storage::Value;
namespace tables = storage::tables;

constexpr Timestamp kT0 = 1546300800;

ImageRecord MakeImage(int i) {
  ImageRecord rec;
  rec.uri = "img" + std::to_string(i);
  rec.location =
      geo::GeoPoint{34.00 + (i % 20) * 0.004, -118.30 + (i % 25) * 0.004};
  rec.captured_at = kT0 + i * 60;
  rec.keywords = {"city"};
  if (i % 5 == 0) rec.keywords.push_back("market");
  return rec;
}

Result<Tvdp> SeedPlatform(int corpus) {
  TVDP_ASSIGN_OR_RETURN(Tvdp tvdp, Tvdp::Create());
  TVDP_RETURN_IF_ERROR(
      tvdp.RegisterClassification("scene", {"clean", "dirty"}).status());
  for (int i = 0; i < corpus; ++i) {
    TVDP_ASSIGN_OR_RETURN(int64_t id, tvdp.IngestImage(MakeImage(i)));
    AnnotationRecord ann;
    ann.classification = "scene";
    ann.label = i % 4 == 0 ? "dirty" : "clean";
    ann.confidence = 0.5 + (i % 50) * 0.01;
    ann.machine = true;
    TVDP_RETURN_IF_ERROR(tvdp.AnnotateImage(id, ann).status());
    ml::FeatureVector feat(8, 0.0);
    feat[static_cast<size_t>(i % 8)] = 1.0;
    TVDP_RETURN_IF_ERROR(tvdp.StoreFeature(id, "cnn", feat));
  }
  return tvdp;
}

/// The hybrid query mix whose result envelopes the isolation properties
/// compare (a slice of the PR 5 planner property suite).
std::vector<HybridQuery> EnvelopeQueries() {
  std::vector<HybridQuery> out;

  HybridQuery spatial;
  spatial.spatial.emplace();
  spatial.spatial->kind = SpatialPredicate::Kind::kRange;
  spatial.spatial->range =
      geo::BoundingBox::FromCorners({33.99, -118.31}, {34.05, -118.22});
  out.push_back(spatial);

  HybridQuery cat_time;
  cat_time.categorical.emplace();
  cat_time.categorical->classification = "scene";
  cat_time.categorical->label = "dirty";
  cat_time.categorical->min_confidence = 0.6;
  cat_time.temporal.emplace(TemporalPredicate{kT0, kT0 + 500 * 60});
  out.push_back(cat_time);

  HybridQuery text_spatial = spatial;
  text_spatial.textual.emplace();
  text_spatial.textual->keywords = {"market"};
  out.push_back(text_spatial);

  HybridQuery visual;
  visual.visual.emplace();
  visual.visual->kind = VisualPredicate::Kind::kThreshold;
  visual.visual->feature_kind = "cnn";
  visual.visual->feature = ml::FeatureVector(8, 0.0);
  visual.visual->feature[3] = 1.0;
  visual.visual->threshold = 0.1;
  out.push_back(visual);

  return out;
}

/// Executes `q` against a pinned snapshot's access paths — the full
/// planner + operator pipeline, exactly what the engine's snapshot read
/// path runs.
Result<std::vector<QueryHit>> RunOnSnapshot(const QueryEngine& engine,
                                            const EngineSnapshot& snap,
                                            const HybridQuery& q) {
  AccessPaths paths = engine.SnapshotPaths(snap);
  TVDP_ASSIGN_OR_RETURN(QueryPlan plan,
                        Planner::BuildPlan(paths, q, QueryBudget()));
  return Executor::Run(paths, q, &plan, nullptr, nullptr);
}

/// Byte-exact envelope equality: ids, order, and score bit patterns.
void ExpectSameHits(const std::vector<QueryHit>& a,
                    const std::vector<QueryHit>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].image_id, b[i].image_id) << "hit " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "hit " << i;
    EXPECT_EQ(a[i].visual_distance, b[i].visual_distance) << "hit " << i;
  }
}

// ---------- isolation ----------

TEST(MvccTest, SnapshotIsolationPinnedReaderSeesPreCommitState) {
  auto created = SeedPlatform(200);
  ASSERT_TRUE(created.ok()) << created.status();
  Tvdp tvdp = std::move(created).value();
  QueryEngine& engine = tvdp.query();

  // Pin, and record the pre-commit envelopes.
  SnapshotRef pinned = engine.PinSnapshot();
  ASSERT_TRUE(static_cast<bool>(pinned));
  std::vector<HybridQuery> queries = EnvelopeQueries();
  std::vector<std::vector<QueryHit>> before;
  for (const HybridQuery& q : queries) {
    auto hits = RunOnSnapshot(engine, *pinned, q);
    ASSERT_TRUE(hits.ok()) << hits.status();
    before.push_back(std::move(hits).value());
  }
  size_t count_before = tvdp.image_count();

  // Commit churn: new images, new annotations, and deletions.
  std::vector<int64_t> doomed;
  for (int i = 200; i < 260; ++i) {
    auto id = tvdp.IngestImage(MakeImage(i));
    ASSERT_TRUE(id.ok()) << id.status();
    if (i % 2 == 0) doomed.push_back(*id);
  }
  ASSERT_TRUE(tvdp.RemoveImages(doomed).ok());

  // The pinned version is frozen: byte-identical envelopes, same count.
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto hits = RunOnSnapshot(engine, *pinned, queries[qi]);
    ASSERT_TRUE(hits.ok()) << hits.status();
    ExpectSameHits(before[qi], *hits);
  }
  const storage::Table* images_then = pinned->FindTable(tables::kImages);
  ASSERT_NE(images_then, nullptr);
  EXPECT_EQ(images_then->size(), count_before);

  // A fresh pin observes the churn.
  SnapshotRef now = engine.PinSnapshot();
  EXPECT_GT(now->version, pinned->version);
  EXPECT_EQ(now->FindTable(tables::kImages)->size(), tvdp.image_count());
}

TEST(MvccTest, PinnedEnvelopesStableUnderConcurrentChurn) {
  auto created = SeedPlatform(150);
  ASSERT_TRUE(created.ok()) << created.status();
  Tvdp tvdp = std::move(created).value();
  QueryEngine& engine = tvdp.query();

  SnapshotRef pinned = engine.PinSnapshot();
  std::vector<HybridQuery> queries = EnvelopeQueries();
  std::vector<std::vector<QueryHit>> before;
  for (const HybridQuery& q : queries) {
    auto hits = RunOnSnapshot(engine, *pinned, q);
    ASSERT_TRUE(hits.ok()) << hits.status();
    before.push_back(std::move(hits).value());
  }

  // Churn writer: ingest + periodic removal, racing the re-evaluations.
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    int i = 150;
    std::vector<int64_t> recent;
    while (!stop.load(std::memory_order_relaxed)) {
      auto id = tvdp.IngestImage(MakeImage(i++));
      if (id.ok()) recent.push_back(*id);
      if (recent.size() >= 8) {
        (void)tvdp.RemoveImages({recent[0], recent[1]});
        recent.erase(recent.begin(), recent.begin() + 2);
      }
    }
  });

  // Property: while commits land, the pinned version answers every query
  // byte-identically, every time.
  for (int round = 0; round < 10; ++round) {
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto hits = RunOnSnapshot(engine, *pinned, queries[qi]);
      ASSERT_TRUE(hits.ok()) << hits.status();
      ExpectSameHits(before[qi], *hits);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  churn.join();
}

// ---------- liveness ----------

TEST(MvccTest, ReadsCompleteWhileWriterLockHeld) {
  auto created = SeedPlatform(50);
  ASSERT_TRUE(created.ok()) << created.status();
  Tvdp tvdp = std::move(created).value();

  // Grab the writer lock and hold it. Under the old reader-writer scheme
  // every read below would block; with MVCC they must all complete.
  std::unique_lock<std::shared_mutex> writer(tvdp.mutex());
  auto fut = std::async(std::launch::async, [&] {
    EXPECT_EQ(tvdp.image_count(), 50u);
    auto loc = tvdp.ImageLocation(1);
    EXPECT_TRUE(loc.ok()) << loc.status();
    auto hits = tvdp.query().Temporal(kT0, kT0 + 10 * 60);
    EXPECT_TRUE(hits.ok()) << hits.status();
    EXPECT_EQ(hits->size(), 11u);
    auto range = tvdp.query().SpatialRange(
        geo::BoundingBox::FromCorners({33.0, -119.0}, {35.0, -118.0}));
    EXPECT_TRUE(range.ok()) << range.status();
    return true;
  });
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)), std::future_status::ready)
      << "reads blocked behind the writer lock";
  EXPECT_TRUE(fut.get());
}

// ---------- observability ----------

TEST(MvccTest, VersionAdvancesAndStatsTrack) {
  auto created = SeedPlatform(20);
  ASSERT_TRUE(created.ok()) << created.status();
  Tvdp tvdp = std::move(created).value();
  QueryEngine& engine = tvdp.query();

  Json stats = tvdp.MvccStats();
  EXPECT_TRUE(stats["enabled"].AsBool());
  EXPECT_TRUE(stats["snapshot_reads"].AsBool());
  int64_t v0 = stats["version"].AsInt();
  EXPECT_GT(v0, 0);
  EXPECT_EQ(stats["pinned_snapshots"].AsInt(), 0);

  // A commit advances the version and shares most bytes with the parent
  // (only the touched tables/indexes are re-copied).
  ASSERT_TRUE(tvdp.IngestImage(MakeImage(20)).ok());
  stats = tvdp.MvccStats();
  EXPECT_GT(stats["version"].AsInt(), v0);
  EXPECT_GT(stats["bytes_copied_last_commit"].AsInt(), 0);
  EXPECT_GT(stats["bytes_shared_last_commit"].AsInt(), 0);

  // Pinning shows up in the gauge; holding a pin across a commit keeps the
  // retired version alive until released.
  {
    SnapshotRef pin = engine.PinSnapshot();
    EXPECT_EQ(tvdp.MvccStats()["pinned_snapshots"].AsInt(), 1);
    ASSERT_TRUE(tvdp.IngestImage(MakeImage(21)).ok());
    EXPECT_GE(tvdp.MvccStats()["retired_versions"].AsInt(), 1);
  }
  EXPECT_EQ(tvdp.MvccStats()["pinned_snapshots"].AsInt(), 0);
}

// ---------- durability ----------

TEST(MvccTest, CrashRecoveryRebuildsSamePublishedVersion) {
  std::string templ = ::testing::TempDir() + "tvdp_mvccXXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  ASSERT_NE(mkdtemp(buf.data()), nullptr);
  std::string dir(buf.data());
  std::string base = dir + "/plat";

  std::string bytes_before;
  std::vector<std::vector<QueryHit>> env_before;
  std::vector<HybridQuery> queries = EnvelopeQueries();
  {
    auto opened = Tvdp::Open(base);
    ASSERT_TRUE(opened.ok()) << opened.status();
    Tvdp tvdp = std::move(opened).value();
    ASSERT_TRUE(
        tvdp.RegisterClassification("scene", {"clean", "dirty"}).ok());
    for (int i = 0; i < 60; ++i) {
      auto id = tvdp.IngestImage(MakeImage(i));
      ASSERT_TRUE(id.ok()) << id.status();
      AnnotationRecord ann;
      ann.classification = "scene";
      ann.label = i % 4 == 0 ? "dirty" : "clean";
      ann.confidence = 0.5 + (i % 50) * 0.01;
      ASSERT_TRUE(tvdp.AnnotateImage(*id, ann).ok());
      ml::FeatureVector feat(8, 0.0);
      feat[static_cast<size_t>(i % 8)] = 1.0;
      ASSERT_TRUE(tvdp.StoreFeature(*id, "cnn", feat).ok());
    }
    ASSERT_TRUE(tvdp.SaveToFile(dir + "/before.bin").ok());
    QueryEngine& engine = tvdp.query();
    SnapshotRef pin = engine.PinSnapshot();
    for (const HybridQuery& q : queries) {
      auto hits = RunOnSnapshot(engine, *pin, q);
      ASSERT_TRUE(hits.ok()) << hits.status();
      env_before.push_back(std::move(hits).value());
    }
    // No checkpoint: recovery must rebuild purely from the WAL replay.
    // The Tvdp goes out of scope here — the "crash".
  }

  auto reopened = Tvdp::Open(base);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  Tvdp tvdp = std::move(reopened).value();
  ASSERT_TRUE(tvdp.SaveToFile(dir + "/after.bin").ok());

  // Same serialized catalog bytes out of the published snapshot.
  auto read_file = [](const std::string& path) {
    FILE* f = fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::string out;
    char chunk[4096];
    size_t n;
    while ((n = fread(chunk, 1, sizeof(chunk), f)) > 0) out.append(chunk, n);
    fclose(f);
    return out;
  };
  EXPECT_EQ(read_file(dir + "/before.bin"), read_file(dir + "/after.bin"));

  // Same envelopes from the rebuilt version.
  QueryEngine& engine = tvdp.query();
  SnapshotRef pin = engine.PinSnapshot();
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto hits = RunOnSnapshot(engine, *pin, queries[qi]);
    ASSERT_TRUE(hits.ok()) << hits.status();
    ExpectSameHits(env_before[qi], *hits);
  }

  std::string cmd = "rm -rf '" + dir + "'";
  (void)std::system(cmd.c_str());
}

// ---------- fallback paths ----------

TEST(MvccTest, LegacyEngineStillServesLockedReads) {
  // A standalone engine over an externally mutated catalog: unmanaged, so
  // reads go through the shared-lock path and see live state directly.
  auto made = storage::MakeTvdpCatalog();
  ASSERT_TRUE(made.ok());
  storage::Catalog catalog = std::move(made).value();
  QueryEngine engine(&catalog);
  EXPECT_FALSE(engine.managed());

  Row image_row{Value(std::string("img0")), Value(34.02), Value(-118.28),
                Value(kT0),  Value(kT0),    Value(std::string("upload")),
                Value(false), Value()};
  auto id = catalog.Insert(tables::kImages, std::move(image_row));
  ASSERT_TRUE(id.ok()) << id.status();
  ASSERT_TRUE(engine.IndexImage(*id).ok());

  auto hits = engine.SpatialRange(
      geo::BoundingBox::FromCorners({34.0, -118.3}, {34.1, -118.2}));
  ASSERT_TRUE(hits.ok()) << hits.status();
  EXPECT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].image_id, *id);

  // Unmanaged engines never publish: a pin yields the empty ref.
  SnapshotRef pin = engine.PinSnapshot();
  EXPECT_FALSE(static_cast<bool>(pin));
}

TEST(MvccTest, SnapshotReadsToggleFallsBackToLockedPath) {
  auto created = SeedPlatform(80);
  ASSERT_TRUE(created.ok()) << created.status();
  Tvdp tvdp = std::move(created).value();
  QueryEngine& engine = tvdp.query();

  geo::BoundingBox box =
      geo::BoundingBox::FromCorners({33.99, -118.31}, {34.05, -118.22});
  auto with_mvcc = engine.SpatialRange(box);
  ASSERT_TRUE(with_mvcc.ok());

  engine.set_snapshot_reads(false);
  EXPECT_FALSE(engine.snapshot_reads());
  auto without_mvcc = engine.SpatialRange(box);
  ASSERT_TRUE(without_mvcc.ok());
  ExpectSameHits(*with_mvcc, *without_mvcc);

  auto knn = engine.SpatialKnn(geo::GeoPoint{34.01, -118.29}, 5);
  ASSERT_TRUE(knn.ok()) << knn.status();
  EXPECT_EQ(knn->size(), 5u);
  engine.set_snapshot_reads(true);

  auto knn_mvcc = engine.SpatialKnn(geo::GeoPoint{34.01, -118.29}, 5);
  ASSERT_TRUE(knn_mvcc.ok());
  ExpectSameHits(*knn, *knn_mvcc);
}

// ---------- stress (registered as MvccStress.{asan,tsan} too) ----------

TEST(MvccStressTest, SaturatingReadersNeverBlockWriterCommit) {
  auto created = SeedPlatform(100);
  ASSERT_TRUE(created.ok()) << created.status();
  Tvdp tvdp = std::move(created).value();
  QueryEngine& engine = tvdp.query();

  const unsigned hw = std::thread::hardware_concurrency();
  const int kReaders = static_cast<int>(hw > 1 ? hw + 2 : 4);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> reads{0};
  std::vector<std::thread> readers;
  readers.reserve(static_cast<size_t>(kReaders));
  geo::BoundingBox box =
      geo::BoundingBox::FromCorners({33.99, -118.31}, {34.09, -118.18});
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto hits = engine.SpatialRange(box);
        EXPECT_TRUE(hits.ok());
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: every commit must land promptly even with every core busy
  // reading — readers pin snapshots, they never hold the engine lock.
  int64_t worst_commit_ms = 0;
  for (int i = 100; i < 140; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    auto id = tvdp.IngestImage(MakeImage(i));
    auto dt = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    ASSERT_TRUE(id.ok()) << id.status();
    worst_commit_ms = std::max(worst_commit_ms, dt);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_GT(reads.load(), 0);
  // Generous bound (sanitizer builds run slow): the point is that commits
  // never wait for the reader pool to drain — a reader-preference rwlock
  // would starve this into the tens of seconds.
  EXPECT_LT(worst_commit_ms, 5000) << "writer commit stalled behind readers";
  EXPECT_EQ(tvdp.image_count(), 140u);
}

TEST(MvccStressTest, ConcurrentChurnAndPinnedReaders) {
  auto created = SeedPlatform(60);
  ASSERT_TRUE(created.ok()) << created.status();
  Tvdp tvdp = std::move(created).value();
  QueryEngine& engine = tvdp.query();

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  // Readers: pin, then check the pinned version is internally consistent —
  // re-running a query on the same pin twice must agree exactly.
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      HybridQuery q;
      q.temporal.emplace(TemporalPredicate{kT0, kT0 + 100000 * 60});
      while (!stop.load(std::memory_order_relaxed)) {
        SnapshotRef pin = engine.PinSnapshot();
        auto a = RunOnSnapshot(engine, *pin, q);
        auto b = RunOnSnapshot(engine, *pin, q);
        if (!a.ok() || !b.ok() || a->size() != b->size()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (size_t i = 0; i < a->size(); ++i) {
          if ((*a)[i].image_id != (*b)[i].image_id) {
            failures.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
    });
  }

  // Writers: ingest/annotate churn plus periodic deletes.
  std::thread writer([&] {
    std::vector<int64_t> recent;
    for (int i = 60; i < 140 && !stop.load(std::memory_order_relaxed); ++i) {
      auto id = tvdp.IngestImage(MakeImage(i));
      if (!id.ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      recent.push_back(*id);
      if (recent.size() >= 10) {
        if (!tvdp.RemoveImages({recent[0]}).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        recent.erase(recent.begin());
      }
    }
  });

  writer.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // After the dust settles the latest snapshot matches the live count.
  SnapshotRef pin = engine.PinSnapshot();
  EXPECT_EQ(pin->FindTable(tables::kImages)->size(), tvdp.image_count());
}

}  // namespace
}  // namespace tvdp::query
