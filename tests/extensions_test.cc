#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/strings.h"
#include "index/rtree.h"
#include "platform/dataset_gen.h"
#include "platform/export.h"
#include "platform/video.h"
#include "query/localize.h"

namespace tvdp {
namespace {

// ---------- R-tree STR bulk loading ----------

geo::BoundingBox RandomBox(Rng& rng) {
  double lat = rng.Uniform(33.9, 34.2);
  double lon = rng.Uniform(-118.5, -118.1);
  geo::BoundingBox box;
  box.min_lat = lat;
  box.min_lon = lon;
  box.max_lat = lat + rng.Uniform(0, 0.01);
  box.max_lon = lon + rng.Uniform(0, 0.01);
  return box;
}

class BulkLoadTest : public ::testing::TestWithParam<int> {};

TEST_P(BulkLoadTest, EquivalentToIncrementalInsert) {
  const int n = GetParam();
  Rng rng(500 + n);
  std::vector<std::pair<geo::BoundingBox, index::RecordId>> entries;
  index::RTree incremental;
  for (int i = 0; i < n; ++i) {
    geo::BoundingBox box = RandomBox(rng);
    entries.emplace_back(box, i);
    ASSERT_TRUE(incremental.Insert(box, i).ok());
  }
  auto bulk = index::RTree::BulkLoad(entries);
  ASSERT_TRUE(bulk.ok()) << bulk.status();
  EXPECT_EQ(bulk->size(), static_cast<size_t>(n));
  EXPECT_TRUE(bulk->CheckInvariants());
  for (int q = 0; q < 20; ++q) {
    geo::BoundingBox query = RandomBox(rng);
    query.max_lat += 0.05;
    query.max_lon += 0.05;
    auto a = incremental.RangeSearch(query);
    auto b = bulk->RangeSearch(query);
    EXPECT_EQ(std::set<index::RecordId>(a.begin(), a.end()),
              std::set<index::RecordId>(b.begin(), b.end()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BulkLoadTest,
                         ::testing::Values(1, 15, 16, 17, 256, 2000));

TEST(BulkLoadTest, EmptyInputYieldsEmptyTree) {
  auto tree = index::RTree::BulkLoad({});
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->empty());
  Rng rng(1);
  EXPECT_TRUE(tree->RangeSearch(RandomBox(rng)).empty());
}

TEST(BulkLoadTest, RejectsEmptyBoxes) {
  EXPECT_FALSE(
      index::RTree::BulkLoad({{geo::BoundingBox::Empty(), 1}}).ok());
}

TEST(BulkLoadTest, PackedTreeIsShallow) {
  Rng rng(7);
  std::vector<std::pair<geo::BoundingBox, index::RecordId>> entries;
  index::RTree incremental;
  for (int i = 0; i < 4000; ++i) {
    geo::BoundingBox box = RandomBox(rng);
    entries.emplace_back(box, i);
    ASSERT_TRUE(incremental.Insert(box, i).ok());
  }
  auto bulk = index::RTree::BulkLoad(entries);
  ASSERT_TRUE(bulk.ok());
  // STR packs nodes full, so the bulk tree is never taller than the
  // incrementally grown one.
  EXPECT_LE(bulk->height(), incremental.height());
}

TEST(BulkLoadTest, SupportsSubsequentInserts) {
  Rng rng(8);
  std::vector<std::pair<geo::BoundingBox, index::RecordId>> entries;
  for (int i = 0; i < 100; ++i) entries.emplace_back(RandomBox(rng), i);
  auto tree = index::RTree::BulkLoad(entries);
  ASSERT_TRUE(tree.ok());
  geo::BoundingBox extra = RandomBox(rng);
  ASSERT_TRUE(tree->Insert(extra, 999).ok());
  EXPECT_EQ(tree->size(), 101u);
  EXPECT_TRUE(tree->CheckInvariants());
  auto hits = tree->RangeSearch(extra);
  EXPECT_NE(std::find(hits.begin(), hits.end(), 999), hits.end());
}

// ---------- Video ingest / keyframe selection ----------

TEST(VideoTest, SimulatedDriveProducesOrderedFrames) {
  Rng rng(1);
  auto frames = platform::SimulateDriveVideo(
      geo::GeoPoint{34.05, -118.25}, 90, 10, 120, 30, 1546300800, rng);
  ASSERT_EQ(frames.size(), 120u);
  for (size_t i = 1; i < frames.size(); ++i) {
    EXPECT_GE(frames[i].captured_at, frames[i - 1].captured_at);
    EXPECT_EQ(frames[i].frame_index, static_cast<int>(i));
  }
  // The car moved: first and last cameras are far apart.
  EXPECT_GT(geo::HaversineMeters(frames.front().fov.camera,
                                 frames.back().fov.camera),
            20.0);
}

TEST(VideoTest, KeyframeSelectionCollapsesRedundantFrames) {
  Rng rng(2);
  auto frames = platform::SimulateDriveVideo(
      geo::GeoPoint{34.05, -118.25}, 90, 10, 300, 30, 1546300800, rng);
  platform::KeyframeSelector selector;
  auto keys = selector.Select(frames);
  ASSERT_TRUE(keys.ok());
  EXPECT_GT(keys->size(), 2u);
  EXPECT_LE(keys->size(), 16u);  // default cap
  // No duplicates.
  std::set<size_t> unique(keys->begin(), keys->end());
  EXPECT_EQ(unique.size(), keys->size());
}

TEST(VideoTest, KeyframesBeatUniformSamplingOnCoverage) {
  Rng rng(3);
  auto frames = platform::SimulateDriveVideo(
      geo::GeoPoint{34.05, -118.25}, 90, 12, 300, 30, 1546300800, rng);
  platform::KeyframeSelector::Options opts;
  opts.max_keyframes = 8;
  platform::KeyframeSelector selector(opts);
  auto keys = selector.Select(frames);
  ASSERT_TRUE(keys.ok());

  geo::BoundingBox extent = geo::BoundingBox::Empty();
  for (const auto& f : frames) extent.Extend(f.fov.SceneLocation());
  auto coverage_of = [&](const std::vector<size_t>& picks) {
    auto grid = geo::CoverageGrid::Make(extent, 24, 24, 8);
    for (size_t i : picks) grid->AddFov(frames[i].fov);
    return grid->CoverageRatio();
  };
  // Uniform pick of the same count.
  std::vector<size_t> uniform;
  for (size_t i = 0; i < keys->size(); ++i) {
    uniform.push_back(i * frames.size() / keys->size());
  }
  EXPECT_GE(coverage_of(*keys) + 1e-12, coverage_of(uniform));
}

TEST(VideoTest, SelectorValidation) {
  platform::KeyframeSelector selector;
  auto empty = selector.Select({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(VideoTest, IngestVideoStoresKeyframesAsImages) {
  auto created = platform::Tvdp::Create();
  ASSERT_TRUE(created.ok());
  platform::Tvdp tvdp = std::move(created).value();
  Rng rng(4);
  platform::VideoRecord video;
  video.uri = "mediaq://drive42";
  video.keywords = {"lasan", "route7"};
  video.frames = platform::SimulateDriveVideo(
      geo::GeoPoint{34.05, -118.25}, 90, 10, 150, 30, 1546300800, rng);
  platform::KeyframeSelector selector;
  auto ids = platform::IngestVideo(tvdp, video, selector);
  ASSERT_TRUE(ids.ok()) << ids.status();
  EXPECT_GT(ids->size(), 1u);
  EXPECT_EQ(tvdp.image_count(), ids->size());

  // Frames are individually addressable by keyword; the whole video is
  // findable via its shared keywords.
  query::TextualPredicate pred;
  pred.keywords = {"route7"};
  auto hits = tvdp.query().Textual(pred);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), ids->size());

  // Spatial query along the drive path finds key frames.
  auto spatial = tvdp.query().SpatialRange(
      geo::BoundingBox::FromCenterRadius({34.05, -118.25}, 400));
  ASSERT_TRUE(spatial.ok());
  EXPECT_GE(spatial->size(), 1u);

  EXPECT_FALSE(
      platform::IngestVideo(tvdp, platform::VideoRecord{}, selector).ok());
}

// ---------- Scene localization ----------

TEST(SceneLocalizerTest, LocalizesFromVisualNeighbours) {
  auto created = platform::Tvdp::Create();
  ASSERT_TRUE(created.ok());
  platform::Tvdp tvdp = std::move(created).value();
  Rng rng(5);

  // Two visually distinct districts: features near e0 in the north-west,
  // near e1 in the south-east.
  geo::GeoPoint nw{34.09, -118.29}, se{34.01, -118.21};
  for (int i = 0; i < 60; ++i) {
    bool north = i % 2 == 0;
    platform::ImageRecord rec;
    rec.uri = "img" + std::to_string(i);
    const geo::GeoPoint& base = north ? nw : se;
    rec.location = geo::GeoPoint{base.lat + rng.Uniform(-0.004, 0.004),
                                 base.lon + rng.Uniform(-0.004, 0.004)};
    rec.captured_at = 1546300800;
    auto id = tvdp.IngestImage(rec);
    ASSERT_TRUE(id.ok());
    ml::FeatureVector f(8, 0.0);
    f[north ? 0 : 1] = 1.0;
    for (double& v : f) v += rng.Normal(0, 0.05);
    ASSERT_TRUE(tvdp.StoreFeature(*id, "cnn", f).ok());
  }

  query::SceneLocalizer localizer(&tvdp.query(), &tvdp.catalog());
  ml::FeatureVector probe(8, 0.0);
  probe[0] = 1.0;  // "looks like" the north-west district
  auto loc = localizer.Localize("cnn", probe, 8);
  ASSERT_TRUE(loc.ok()) << loc.status();
  EXPECT_LT(geo::HaversineMeters(loc->estimate, nw), 800);
  EXPECT_GT(geo::HaversineMeters(loc->estimate, se), 3000);
  EXPECT_EQ(loc->support, 8);
  EXPECT_LT(loc->spread_m, 1500);
}

TEST(SceneLocalizerTest, Validation) {
  auto created = platform::Tvdp::Create();
  ASSERT_TRUE(created.ok());
  platform::Tvdp tvdp = std::move(created).value();
  query::SceneLocalizer localizer(&tvdp.query(), &tvdp.catalog());
  ml::FeatureVector probe(8, 0.0);
  EXPECT_FALSE(localizer.Localize("cnn", probe, 0).ok());
  // No features indexed yet.
  EXPECT_FALSE(localizer.Localize("cnn", probe, 5).ok());
}

TEST(SceneLocalizerTest, SpreadReflectsAmbiguity) {
  auto created = platform::Tvdp::Create();
  ASSERT_TRUE(created.ok());
  platform::Tvdp tvdp = std::move(created).value();
  Rng rng(6);
  // The same visual feature appears in two far-apart places (ambiguous
  // scene, e.g. a chain storefront).
  geo::GeoPoint a{34.09, -118.29}, b{34.01, -118.21};
  for (int i = 0; i < 20; ++i) {
    platform::ImageRecord rec;
    rec.uri = "amb" + std::to_string(i);
    rec.location = i % 2 == 0 ? a : b;
    rec.captured_at = 1546300800;
    auto id = tvdp.IngestImage(rec);
    ASSERT_TRUE(id.ok());
    ml::FeatureVector f(4, 1.0);
    for (double& v : f) v += rng.Normal(0, 0.02);
    ASSERT_TRUE(tvdp.StoreFeature(*id, "cnn", f).ok());
  }
  query::SceneLocalizer localizer(&tvdp.query(), &tvdp.catalog());
  auto loc = localizer.Localize("cnn", ml::FeatureVector(4, 1.0), 10);
  ASSERT_TRUE(loc.ok());
  // Ambiguity shows up as a kilometre-scale spread.
  EXPECT_GT(loc->spread_m, 2000);
}

// ---------- Dataset export ----------

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto created = platform::Tvdp::Create();
    ASSERT_TRUE(created.ok());
    tvdp_ = std::make_unique<platform::Tvdp>(std::move(created).value());
    platform::ImageRecord rec;
    rec.uri = "plain://img";
    rec.location = geo::GeoPoint{34.05, -118.25};
    rec.captured_at = 1546300800;
    rec.source = "lasan_truck";
    ids_.push_back(*tvdp_->IngestImage(rec));
    // A record whose uri needs CSV quoting.
    rec.uri = "weird://a,b\"c";
    rec.location = geo::GeoPoint{34.06, -118.24};
    ids_.push_back(*tvdp_->IngestImage(rec));
  }
  std::unique_ptr<platform::Tvdp> tvdp_;
  std::vector<int64_t> ids_;
};

TEST_F(ExportTest, CsvEscaping) {
  EXPECT_EQ(platform::CsvEscape("plain"), "plain");
  EXPECT_EQ(platform::CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(platform::CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(platform::CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST_F(ExportTest, CsvEscapingDefusesFormulas) {
  // Fields a spreadsheet would evaluate must come out quoted and prefixed
  // with a single quote so the cell stays inert (CSV injection).
  EXPECT_EQ(platform::CsvEscape("=1+2"), "\"'=1+2\"");
  EXPECT_EQ(platform::CsvEscape("+1234567"), "\"'+1234567\"");
  EXPECT_EQ(platform::CsvEscape("-cmd"), "\"'-cmd\"");
  EXPECT_EQ(platform::CsvEscape("@SUM(A1:A9)"), "\"'@SUM(A1:A9)\"");
  EXPECT_EQ(platform::CsvEscape("=HYPERLINK(\"http://evil\")"),
            "\"'=HYPERLINK(\"\"http://evil\"\")\"");
  // Interior formula characters are harmless.
  EXPECT_EQ(platform::CsvEscape("a=b"), "a=b");
  EXPECT_EQ(platform::CsvEscape(""), "");
}

TEST_F(ExportTest, CsvHasHeaderAndEscapedRows) {
  auto csv = platform::ExportMetadataCsv(*tvdp_, ids_);
  ASSERT_TRUE(csv.ok()) << csv.status();
  auto lines = StrSplit(*csv, '\n', /*skip_empty=*/true);
  ASSERT_EQ(lines.size(), 3u);
  // RFC 4180 records terminate with CRLF, so each '\n'-split line keeps a
  // trailing '\r'.
  for (std::string& line : lines) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\r');
    line.pop_back();
  }
  EXPECT_EQ(lines[0], "id,uri,lat,lon,captured_at,uploaded_at,source");
  EXPECT_NE(lines[1].find("plain://img"), std::string::npos);
  EXPECT_NE(lines[2].find("\"weird://a,b\"\"c\""), std::string::npos);
  EXPECT_NE(lines[1].find("2019-01-01 00:00:00"), std::string::npos);
}

TEST_F(ExportTest, CsvNeutralizesFormulaUri) {
  // A crowdsourced "uri" crafted as a spreadsheet formula must not survive
  // into an executable cell.
  platform::ImageRecord rec;
  rec.uri = "=HYPERLINK(\"http://evil.example\",\"click\")";
  rec.location = geo::GeoPoint{34.07, -118.23};
  rec.captured_at = 1546300800;
  auto id = tvdp_->IngestImage(rec);
  ASSERT_TRUE(id.ok());
  auto csv = platform::ExportMetadataCsv(*tvdp_, {*id});
  ASSERT_TRUE(csv.ok()) << csv.status();
  EXPECT_EQ(csv->find(",=HYPERLINK"), std::string::npos);
  EXPECT_NE(csv->find("\"'=HYPERLINK"), std::string::npos);
}

TEST_F(ExportTest, CsvMissingIdFails) {
  EXPECT_FALSE(platform::ExportMetadataCsv(*tvdp_, {9999}).ok());
}

TEST_F(ExportTest, GeoJsonFeatureCollection) {
  auto geojson = platform::ExportGeoJson(*tvdp_, ids_);
  ASSERT_TRUE(geojson.ok()) << geojson.status();
  EXPECT_EQ((*geojson)["type"].AsString(), "FeatureCollection");
  ASSERT_EQ((*geojson)["features"].size(), 2u);
  const Json& f0 = (*geojson)["features"].AsArray()[0];
  EXPECT_EQ(f0["type"].AsString(), "Feature");
  EXPECT_EQ(f0["geometry"]["type"].AsString(), "Point");
  // GeoJSON coordinate order is [lon, lat].
  EXPECT_NEAR(f0["geometry"]["coordinates"].AsArray()[0].AsDouble(), -118.25,
              1e-9);
  EXPECT_NEAR(f0["geometry"]["coordinates"].AsArray()[1].AsDouble(), 34.05,
              1e-9);
  EXPECT_EQ(f0["properties"]["source"].AsString(), "lasan_truck");
  // The document must be valid JSON end-to-end.
  auto reparsed = Json::Parse(geojson->Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed, *geojson);
}

TEST_F(ExportTest, GeoJsonEmptySelection) {
  auto geojson = platform::ExportGeoJson(*tvdp_, {});
  ASSERT_TRUE(geojson.ok());
  EXPECT_EQ((*geojson)["features"].size(), 0u);
}

}  // namespace
}  // namespace tvdp
