// Per-shard replication: WAL shipping, fenced failover, replica-served
// reads, the crash-at-every-phase promotion matrix, and the tier-1
// ReplicationStress.{asan,tsan} concurrency suite.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/retry.h"
#include "platform/api.h"
#include "platform/model_registry.h"
#include "platform/replication.h"
#include "platform/sharding.h"
#include "platform/tvdp.h"
#include "query/query.h"
#include "query/scatter_gather.h"

namespace tvdp::platform {
namespace {

using query::HybridQuery;
using query::ShardOutcome;

constexpr Timestamp kT0 = 1546300800;
constexpr int kCorpus = 500;

/// The planner-suite corpus shared with the sharding/rebalance suites.
template <typename P>
void BuildCorpus(P& p) {
  ASSERT_TRUE(p.RegisterClassification("scene", {"clean", "dirty"}).ok());
  for (int i = 0; i < kCorpus; ++i) {
    int row = i / 25, col = i % 25;
    ImageRecord rec;
    rec.uri = "img" + std::to_string(i);
    rec.location = geo::GeoPoint{34.00 + row * 0.004, -118.30 + col * 0.004};
    rec.captured_at = kT0 + i * 60;
    rec.keywords = {"city"};
    if (i % 5 == 0) rec.keywords.push_back("market");
    if (i % 50 == 0) rec.keywords.push_back("needle");
    auto id = p.IngestImage(rec);
    ASSERT_TRUE(id.ok()) << id.status();

    AnnotationRecord ann;
    ann.classification = "scene";
    ann.label = i % 4 == 0 ? "dirty" : "clean";
    ann.confidence = 0.5 + (i % 50) * 0.01;
    ann.machine = true;
    ASSERT_TRUE(p.AnnotateImage(*id, ann).ok());

    ml::FeatureVector feat(8, 0.0);
    feat[static_cast<size_t>(i % 8)] = 1.0;
    ASSERT_TRUE(p.StoreFeature(*id, "cnn", feat).ok());
  }
}

constexpr int kSmall = 80;

/// A small corpus for the durable crash matrix (WAL replay of the full
/// suite times six crash points would dominate the runtime).
template <typename P>
void BuildSmallCorpus(P& p) {
  ASSERT_TRUE(p.RegisterClassification("scene", {"clean", "dirty"}).ok());
  for (int i = 0; i < kSmall; ++i) {
    int row = i / 10, col = i % 10;
    ImageRecord rec;
    rec.uri = "img" + std::to_string(i);
    rec.location = geo::GeoPoint{34.00 + row * 0.009, -118.30 + col * 0.0095};
    rec.captured_at = kT0 + i * 60;
    rec.keywords = {"city"};
    if (i % 5 == 0) rec.keywords.push_back("market");
    auto id = p.IngestImage(rec);
    ASSERT_TRUE(id.ok()) << id.status();
    AnnotationRecord ann;
    ann.classification = "scene";
    ann.label = i % 4 == 0 ? "dirty" : "clean";
    ann.confidence = 0.5 + (i % 50) * 0.01;
    ann.machine = true;
    ASSERT_TRUE(p.AnnotateImage(*id, ann).ok());
    ml::FeatureVector feat(8, 0.0);
    feat[static_cast<size_t>(i % 8)] = 1.0;
    ASSERT_TRUE(p.StoreFeature(*id, "cnn", feat).ok());
  }
}

geo::BoundingBox CorpusRegion() {
  return geo::BoundingBox::FromCorners({34.00, -118.30}, {34.08, -118.204});
}

ShardManagerOptions ReplicatedOptions(int shards, int rows, int cols,
                                      int factor,
                                      SyncLevel sync = SyncLevel::kSync) {
  ShardManagerOptions opts;
  opts.shard_count = shards;
  opts.grid_rows = rows;
  opts.grid_cols = cols;
  opts.region = CorpusRegion();
  opts.replication.replication_factor = factor;
  opts.replication.sync = sync;
  return opts;
}

HybridQuery CityQuery() {
  HybridQuery q;
  query::TextualPredicate tp;
  tp.keywords = {"city"};
  q.textual = tp;
  return q;
}

std::set<std::string> UrisOf(const ShardManager& m,
                             const std::vector<query::QueryHit>& hits) {
  std::set<std::string> out;
  for (const auto& h : hits) {
    auto row = m.ImageRowJson(h.image_id);
    EXPECT_TRUE(row.ok()) << row.status();
    if (row.ok()) out.insert((*row)["uri"].AsString());
  }
  return out;
}

/// A point inside grid cell 0 of the 2x2 corpus grid (owned by shard 0).
geo::GeoPoint CellZeroPoint() { return {34.01, -118.29}; }

// ---------------------------------------------------------------------
// Guards and unit pieces: config validation, fencing, stale captures.
// ---------------------------------------------------------------------

TEST(ReplicationGuardTest, RejectsBadConfigAndUnreplicatedOps) {
  {
    ShardManagerOptions opts = ReplicatedOptions(2, 2, 2, /*factor=*/0);
    auto m = ShardManager::Create(opts);
    ASSERT_FALSE(m.ok());
    EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
  }
  {
    ShardManagerOptions opts = ReplicatedOptions(2, 2, 2, 2, SyncLevel::kAsync);
    opts.replication.max_async_lag_records = 0;
    auto m = ShardManager::Create(opts);
    ASSERT_FALSE(m.ok());
    EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
  }

  // Factor 1 is replication off: promotion and replica faults are refused.
  auto m = ShardManager::Create(ReplicatedOptions(2, 2, 2, 1));
  ASSERT_TRUE(m.ok()) << m.status();
  auto promoted = (*m)->PromoteShard(0);
  ASSERT_FALSE(promoted.ok());
  EXPECT_EQ(promoted.status().code(), StatusCode::kFailedPrecondition);
  Status killed = (*m)->KillReplica(0, 0);
  ASSERT_FALSE(killed.ok());
  EXPECT_EQ(killed.code(), StatusCode::kFailedPrecondition);
  auto range = (*m)->PromoteShard(7);
  ASSERT_FALSE(range.ok());
  EXPECT_EQ(range.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ((*m)->live_replica_count(0), 0);
}

TEST(ReplicationUnitTest, FencedEngineRejectsWrites) {
  auto t = Tvdp::Create();
  ASSERT_TRUE(t.ok());
  ImageRecord rec;
  rec.uri = "pre";
  rec.location = CellZeroPoint();
  ASSERT_TRUE(t->IngestImage(rec).ok());

  t->Fence(3);
  EXPECT_EQ(t->epoch(), 3);
  rec.uri = "post";
  auto blocked = t->IngestImage(rec);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kFailedPrecondition);
  // Reads keep working: fencing protects history, not availability of the
  // data the fenced instance already holds.
  auto r = t->ExecuteQuery(CityQuery());
  ASSERT_TRUE(r.ok());
}

TEST(ReplicationUnitTest, StaleEpochCapturesAreRejected) {
  auto created = Tvdp::Create();
  ASSERT_TRUE(created.ok());
  auto primary = std::make_shared<Tvdp>(std::move(*created));

  // The set believes epoch 5; the primary still stamps epoch 0 — the
  // fenced-out-but-still-writing stale primary model.
  ReplicaSet set(/*shard=*/0, /*epoch=*/5);
  ASSERT_TRUE(set.Attach(primary, {""}, storage::DurableCatalogOptions{},
                         SyncLevel::kSync)
                  .ok());
  ImageRecord rec;
  rec.uri = "stale";
  rec.location = CellZeroPoint();
  ASSERT_TRUE(primary->IngestImage(rec).ok());
  EXPECT_GT(set.rejected_stale_records(), 0u);
  EXPECT_EQ(set.lag_records(), 0u);
  ASSERT_TRUE(set.Ship().ok());
  // Nothing forked onto the replica.
  EXPECT_EQ(set.applied_records(0), 0u);
}

TEST(ReplicationUnitTest, AppliedCountersSkipAlreadyAppliedRecords) {
  auto created = Tvdp::Create();
  ASSERT_TRUE(created.ok());
  auto primary = std::make_shared<Tvdp>(std::move(*created));
  ImageRecord rec;
  rec.uri = "pre";
  rec.location = CellZeroPoint();
  ASSERT_TRUE(primary->IngestImage(rec).ok());

  ReplicaSet set(/*shard=*/0, /*epoch=*/0);
  ASSERT_TRUE(set.Attach(primary, {""}, storage::DurableCatalogOptions{},
                         SyncLevel::kSync)
                  .ok());
  const uint64_t bootstrapped = set.applied_records(0);
  EXPECT_GT(bootstrapped, 0u);

  // Re-applying the bootstrap snapshot (the WAL-tail overlap a promotion
  // produces) applies nothing new, so the caught-up counter the election
  // compares must not move — it counts applied records, not shipped ones.
  ASSERT_TRUE(set.ApplyToLive(primary->SnapshotRecords()).ok());
  EXPECT_EQ(set.applied_records(0), bootstrapped);

  // Genuinely new records still advance it.
  rec.uri = "fresh";
  ASSERT_TRUE(primary->IngestImage(rec).ok());
  ASSERT_TRUE(set.Ship().ok());
  EXPECT_GT(set.applied_records(0), bootstrapped);
}

// ---------------------------------------------------------------------
// Shipping basics: sync replicas stay caught up, async lag is bounded.
// ---------------------------------------------------------------------

TEST(ReplicationShippingTest, SyncReplicasStayCaughtUp) {
  auto m = ShardManager::Create(ReplicatedOptions(2, 2, 2, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  BuildSmallCorpus(mgr);

  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(mgr.replica_lag_records(s), 0u) << "shard " << s;
    EXPECT_EQ(mgr.live_replica_count(s), 1) << "shard " << s;
    EXPECT_EQ(mgr.shard_epoch(s), 0) << "shard " << s;
    EXPECT_EQ(mgr.shard_primary_index(s), 0) << "shard " << s;
  }
  Json stats = mgr.StatsJson();
  EXPECT_EQ(stats["replication_factor"].AsInt(), 2);
  EXPECT_EQ(stats["sync"].AsString(), "sync");
  for (const Json& s : stats["shards"].AsArray()) {
    EXPECT_EQ(s["replication"]["lag_records"].AsInt(), 0);
    EXPECT_GT(s["replication"]["applied"].AsArray()[0].AsInt(), 0);
  }
}

TEST(ReplicationShippingTest, AsyncLagStaysBoundedAndDrainsOnPromotion) {
  ShardManagerOptions opts = ReplicatedOptions(2, 2, 2, 2, SyncLevel::kAsync);
  opts.replication.max_async_lag_records = 8;
  auto m = ShardManager::Create(opts);
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  BuildSmallCorpus(mgr);

  // Shipping triggers whenever the channel reaches the bound, so at rest
  // the lag sits strictly below it.
  for (int s = 0; s < 2; ++s) {
    EXPECT_LT(mgr.replica_lag_records(s), 8u) << "shard " << s;
  }

  // A healthy-shard promotion ships the channel first; nothing is lost.
  auto baseline = mgr.ExecuteQuery(CityQuery());
  ASSERT_TRUE(baseline.ok());
  const std::set<std::string> oracle = UrisOf(mgr, baseline->hits);
  auto promoted = mgr.PromoteShard(0);
  ASSERT_TRUE(promoted.ok()) << promoted.status();
  EXPECT_EQ((*promoted)["action"].AsString(), "promoted");
  EXPECT_EQ(mgr.shard_epoch(0), 1);
  auto after = mgr.ExecuteQuery(CityQuery());
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->coverage.complete());
  EXPECT_EQ(UrisOf(mgr, after->hits), oracle);
}

// ---------------------------------------------------------------------
// Tentpole: automatic failover on KillShard, replica-served reads, and
// the stats surface naming the surviving copy.
// ---------------------------------------------------------------------

TEST(ReplicationFailoverTest, KilledShardAutoPromotesSurvivingReplica) {
  auto m = ShardManager::Create(ReplicatedOptions(2, 2, 2, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  BuildSmallCorpus(mgr);
  auto baseline = mgr.ExecuteQuery(CityQuery());
  ASSERT_TRUE(baseline.ok());
  const std::set<std::string> oracle = UrisOf(mgr, baseline->hits);
  ASSERT_EQ(oracle.size(), static_cast<size_t>(kSmall));

  // Total loss of the primary (drop_state: nothing left to replay) — the
  // replica is the only surviving copy, and the kill promotes it in-line.
  ASSERT_TRUE(mgr.KillShard(0, /*drop_state=*/true).ok());
  EXPECT_TRUE(mgr.shard_alive(0));
  EXPECT_EQ(mgr.shard_epoch(0), 1);
  EXPECT_EQ(mgr.shard_primary_index(0), 1);
  EXPECT_FALSE(mgr.shard_promoting(0));

  auto after = mgr.ExecuteQuery(CityQuery());
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_TRUE(after->coverage.complete()) << after->coverage.ToJson().Dump();
  EXPECT_EQ(UrisOf(mgr, after->hits), oracle);

  // Writes flow to the promoted primary and replicate... to nothing (the
  // factor-2 group spent its only replica), which the stats make visible.
  ImageRecord rec;
  rec.uri = "after_failover";
  rec.location = CellZeroPoint();
  rec.keywords = {"city"};
  ASSERT_TRUE(mgr.IngestImage(rec).ok());
  EXPECT_EQ(mgr.live_replica_count(0), 0);

  ModelRegistry reg;
  ApiService api((*m).get(), &reg);
  std::string key = api.CreateApiKey("ops");
  auto stats = api.HandleRequest(key, "platform_stats", Json::MakeObject());
  ASSERT_TRUE(stats.ok()) << stats.status();
  const Json& shard0 = (*stats)["shards"]["shards"].AsArray()[0];
  EXPECT_EQ(shard0["epoch"].AsInt(), 1);
  EXPECT_EQ(shard0["primary_index"].AsInt(), 1);
  EXPECT_EQ(shard0["replication"]["live"].AsInt(), 0);
  EXPECT_EQ((*stats)["shards"]["replication_factor"].AsInt(), 2);
}

TEST(ReplicationFailoverTest, EnvelopesByteIdenticalAcrossFailover) {
  auto m = ShardManager::Create(ReplicatedOptions(2, 2, 2, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  BuildCorpus(mgr);

  ModelRegistry reg;
  ApiService api((*m).get(), &reg);
  std::string key = api.CreateApiKey("prop");

  std::vector<Json> requests;
  {
    Json q = Json::MakeObject();
    q["bbox"] = Json(Json::Array{33.99, -118.31, 34.09, -118.25});
    q["keywords"] = Json(Json::Array{"market"});
    requests.push_back(q);
  }
  {
    Json q = Json::MakeObject();
    q["classification"] = "scene";
    q["label"] = "dirty";
    q["min_confidence"] = 0.7;
    q["time_begin"] = Json(static_cast<int64_t>(kT0));
    q["time_end"] = Json(static_cast<int64_t>(kT0 + 250 * 60));
    requests.push_back(q);
  }
  {
    Json q = Json::MakeObject();
    q["feature"] = Json(Json::Array{0, 0, 0, 1, 0, 0, 0, 0});
    q["feature_kind"] = "cnn";
    q["threshold"] = 0.5;
    q["keywords"] = Json(Json::Array{"market", "needle"});
    q["keyword_mode"] = "or";
    requests.push_back(q);
  }
  {
    Json q = Json::MakeObject();  // visual top-k ranking
    q["feature"] = Json(Json::Array{0, 1, 0, 0, 0, 0, 0, 0});
    q["feature_kind"] = "cnn";
    q["k"] = 7;
    requests.push_back(q);
  }

  // The response bytes must match modulo the per-shard "plan" (the probed
  // instance changes) and "coverage" (the outcome names the stand-in).
  auto strip = [](Json env) {
    if (env.Has("data")) {
      env["data"].AsObject().erase("plan");
      env["data"].AsObject().erase("coverage");
    }
    return env.Dump();
  };
  std::vector<std::string> before;
  for (const Json& request : requests) {
    Json env = api.HandleEnvelope(key, "search_datasets", request);
    ASSERT_EQ(env["status"].AsString(), "ok") << env.Dump();
    before.push_back(strip(env));
  }

  // During the failover (primary dead, shard map not yet flipped) reads
  // fail over to the replica and stay byte-identical.
  std::atomic<int> during_checked{0};
  mgr.SetPromotionHook([&](const std::string& phase, int) {
    if (phase != "promote") return true;
    size_t i = 0;
    for (const Json& request : requests) {
      Json env = api.HandleEnvelope(key, "search_datasets", request);
      EXPECT_EQ(env["status"].AsString(), "ok") << env.Dump();
      EXPECT_EQ(before[i++], strip(env)) << request.Dump();
      ++during_checked;
    }
    return true;
  });
  ASSERT_TRUE(mgr.KillShard(0, /*drop_state=*/true).ok());
  mgr.SetPromotionHook({});
  EXPECT_EQ(during_checked.load(), static_cast<int>(requests.size()));
  EXPECT_EQ(mgr.shard_epoch(0), 1);

  size_t i = 0;
  for (const Json& request : requests) {
    Json env = api.HandleEnvelope(key, "search_datasets", request);
    ASSERT_EQ(env["status"].AsString(), "ok") << env.Dump();
    EXPECT_TRUE(env["data"]["coverage"]["complete"].AsBool());
    EXPECT_EQ(before[i++], strip(env)) << request.Dump();
  }
}

TEST(ReplicationFailoverTest, DurableAsyncFailoverAppliesWalTail) {
  std::string dir = ::testing::TempDir() + "tvdp_repasyncXXXXXX";
  ASSERT_NE(mkdtemp(dir.data()), nullptr);
  ShardManagerOptions opts = ReplicatedOptions(2, 2, 2, 2, SyncLevel::kAsync);
  // A bound the corpus never reaches: every record sits unshipped in the
  // channel, and the crash (KillShard discards the channel) would lose all
  // of them if promotion trusted shipping alone.
  opts.replication.max_async_lag_records = 1000000;
  opts.base_path = dir;
  auto m = ShardManager::Create(opts);
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  BuildSmallCorpus(mgr);
  auto baseline = mgr.ExecuteQuery(CityQuery());
  ASSERT_TRUE(baseline.ok());
  const std::set<std::string> oracle = UrisOf(mgr, baseline->hits);
  EXPECT_GT(mgr.replica_lag_records(0), 0u);

  // The apply phase must read the acked records back from the dead
  // primary's on-disk WAL past the shipped offset.
  ASSERT_TRUE(mgr.KillShard(0).ok());
  EXPECT_TRUE(mgr.shard_alive(0));
  EXPECT_EQ(mgr.shard_epoch(0), 1);

  auto after = mgr.ExecuteQuery(CityQuery());
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_TRUE(after->coverage.complete()) << after->coverage.ToJson().Dump();
  EXPECT_EQ(UrisOf(mgr, after->hits), oracle);
}

TEST(ReplicationFailoverTest, BreakerTripRetriesVetoedPromotion) {
  auto clock = std::make_shared<double>(0.0);
  ShardManagerOptions opts = ReplicatedOptions(2, 2, 2, 2);
  opts.now_ms = [clock] { return *clock; };
  opts.breaker.failure_threshold = 3;
  opts.breaker.open_cooldown_ms = 500;
  auto m = ShardManager::Create(opts);
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  BuildSmallCorpus(mgr);

  // A fault hook vetoes the kill-time automatic promotion: the shard stays
  // dead with a healthy replica standing by.
  mgr.SetPromotionHook([](const std::string&, int) { return false; });
  ASSERT_TRUE(mgr.KillShard(0).ok());
  mgr.SetPromotionHook({});
  EXPECT_FALSE(mgr.shard_alive(0));
  EXPECT_EQ(mgr.shard_epoch(0), 0);

  // Replica reads keep the fleet exact while the primary's breaker counts
  // the failures; the closed -> open trip retries the promotion.
  for (int i = 0; i < 3; ++i) {
    auto r = mgr.ExecuteQuery(CityQuery());
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_TRUE(r->coverage.complete()) << r->coverage.ToJson().Dump();
    EXPECT_EQ(r->coverage.reports[0].outcome, ShardOutcome::kFailedOver);
    EXPECT_EQ(r->coverage.reports[0].replica, 0);
  }
  EXPECT_TRUE(mgr.shard_alive(0));
  EXPECT_EQ(mgr.shard_epoch(0), 1);
  // The flip resets the promoted shard's breaker: the next query probes
  // the new primary directly.
  auto probe = mgr.ExecuteQuery(CityQuery());
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe->coverage.reports[0].outcome, ShardOutcome::kProbed);
}

TEST(ReplicationReadBalanceTest, BalancedReadsServeFromReplicasExactly) {
  ShardManagerOptions opts = ReplicatedOptions(2, 2, 2, 2);
  opts.replication.balance_replica_reads = true;
  auto m = ShardManager::Create(opts);
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  BuildSmallCorpus(mgr);

  auto baseline = mgr.ExecuteQuery(CityQuery());
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->hits.size(), static_cast<size_t>(kSmall));

  int replica_served = 0;
  for (int round = 0; round < 6; ++round) {
    auto r = mgr.ExecuteQuery(CityQuery());
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_TRUE(r->coverage.complete());
    ASSERT_EQ(r->hits.size(), baseline->hits.size());
    for (size_t i = 0; i < r->hits.size(); ++i) {
      EXPECT_EQ(r->hits[i].image_id, baseline->hits[i].image_id);
    }
    for (const auto& rep : r->coverage.reports) {
      if (rep.replica >= 0 && !rep.primary_probed) {
        // A clean balanced read: the primary was never touched, so its
        // breaker bookkeeping saw nothing.
        EXPECT_EQ(rep.outcome, ShardOutcome::kProbed);
        ++replica_served;
      }
    }
  }
  // Round-robin across primary + one replica: half the probes per shard
  // land on the replica.
  EXPECT_GT(replica_served, 0);
}

// ---------------------------------------------------------------------
// Satellite: promotion/migration interlock, both orders.
// ---------------------------------------------------------------------

TEST(ReplicationInterlockTest, RebalanceRefusedWhilePromotionInFlight) {
  auto m = ShardManager::Create(ReplicatedOptions(2, 2, 2, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  BuildSmallCorpus(mgr);

  std::atomic<bool> checked{false};
  mgr.SetPromotionHook([&](const std::string& phase, int) {
    if (phase != "apply") return true;
    auto r = mgr.RebalanceCells({0}, 0, 1);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition)
        << r.status();
    checked = true;
    return true;
  });
  auto promoted = mgr.PromoteShard(0);
  ASSERT_TRUE(promoted.ok()) << promoted.status();
  mgr.SetPromotionHook({});
  EXPECT_TRUE(checked.load());
  EXPECT_EQ(mgr.shard_epoch(0), 1);

  // Once the promotion resolved, the same rebalance goes through.
  auto retry = mgr.RebalanceCells({0}, 0, 1);
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(mgr.ShardForLocation(CellZeroPoint()), 1);
  auto r = mgr.ExecuteQuery(CityQuery());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->coverage.complete());
  EXPECT_EQ(r->hits.size(), static_cast<size_t>(kSmall));
}

TEST(ReplicationInterlockTest, PromotionDefersBehindMigrationThenDrains) {
  auto m = ShardManager::Create(ReplicatedOptions(2, 2, 2, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  BuildSmallCorpus(mgr);

  // Abandon a migration mid-flight: shard 0 stays a migration endpoint.
  mgr.SetMigrationHook(
      [](const std::string& ph, int) { return ph != "catchup"; });
  ASSERT_FALSE(mgr.RebalanceCells({0}, 0, 1).ok());
  mgr.SetMigrationHook({});
  ASSERT_TRUE(mgr.shard_migrating(0));

  // Promotion of a migrating shard parks instead of racing the cutover.
  auto deferred = mgr.PromoteShard(0);
  ASSERT_TRUE(deferred.ok()) << deferred.status();
  EXPECT_EQ((*deferred)["action"].AsString(), "deferred");
  EXPECT_EQ(mgr.shard_epoch(0), 0);
  EXPECT_FALSE(mgr.shard_promoting(0));

  // Resolving the migration (rollback here) drains the parked promotion.
  auto report = mgr.ReconcileBroadcasts();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(mgr.shard_migrating(0));
  EXPECT_EQ(mgr.shard_epoch(0), 1);
  EXPECT_EQ(mgr.shard_primary_index(0), 1);

  auto r = mgr.ExecuteQuery(CityQuery());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->coverage.complete());
  EXPECT_EQ(r->hits.size(), static_cast<size_t>(kSmall));
}

// ---------------------------------------------------------------------
// Satellite: the all-shards-down retry-after hint tracks the earliest
// breaker half-open deadline instead of a static constant.
// ---------------------------------------------------------------------

TEST(ReplicationRetryHintTest, RetryAfterTracksBreakerCooldown) {
  auto clock = std::make_shared<double>(0.0);
  ShardManagerOptions opts = ReplicatedOptions(2, 1, 2, /*factor=*/1);
  opts.now_ms = [clock] { return *clock; };
  opts.breaker.failure_threshold = 1;
  opts.breaker.open_cooldown_ms = 500;
  auto m = ShardManager::Create(opts);
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  BuildSmallCorpus(mgr);

  ASSERT_TRUE(mgr.KillShard(0).ok());
  ASSERT_TRUE(mgr.KillShard(1).ok());
  // Both probes fail at t=0; the one-strike breakers trip open.
  ASSERT_FALSE(mgr.ExecuteQuery(CityQuery()).ok());
  EXPECT_EQ(mgr.breaker_state(0), edge::CircuitState::kOpen);
  EXPECT_EQ(mgr.breaker_state(1), edge::CircuitState::kOpen);

  // 100 ms in: both circuits reopen in 400 ms — and that is the hint.
  *clock = 100;
  auto blocked = mgr.ExecuteQuery(CityQuery());
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kUnavailable);
  auto hint = RetryAfterHintMs(blocked.status());
  ASSERT_TRUE(hint.has_value());
  EXPECT_DOUBLE_EQ(*hint, 400.0);

  *clock = 460;
  auto later = mgr.ExecuteQuery(CityQuery());
  ASSERT_FALSE(later.ok());
  hint = RetryAfterHintMs(later.status());
  ASSERT_TRUE(hint.has_value());
  EXPECT_DOUBLE_EQ(*hint, 40.0);

  // The envelope surface carries the same hint.
  ModelRegistry reg;
  ApiService api((*m).get(), &reg);
  std::string key = api.CreateApiKey("ops");
  Json req = Json::MakeObject();
  req["keywords"] = Json(Json::Array{"city"});
  Json env = api.HandleEnvelope(key, "search_datasets", req);
  EXPECT_EQ(env["status"].AsString(), "error");
  ASSERT_TRUE(env.Has("retry_after_ms")) << env.Dump();
  EXPECT_DOUBLE_EQ(env["retry_after_ms"].AsDouble(), 40.0);
}

// ---------------------------------------------------------------------
// Satellite: the promote API endpoint.
// ---------------------------------------------------------------------

TEST(ReplicationApiTest, PromoteEndpointValidatesAndReports) {
  auto flat = Tvdp::Create();
  ASSERT_TRUE(flat.ok());
  ModelRegistry reg_flat;
  ApiService api_flat(&*flat, &reg_flat);
  std::string fkey = api_flat.CreateApiKey("ops");
  Json req = Json::MakeObject();
  req["shard"] = 0;
  auto unsharded = api_flat.HandleRequest(fkey, "promote", req);
  ASSERT_FALSE(unsharded.ok());
  EXPECT_EQ(unsharded.status().code(), StatusCode::kFailedPrecondition);

  auto m = ShardManager::Create(ReplicatedOptions(2, 2, 2, 2));
  ASSERT_TRUE(m.ok()) << m.status();
  BuildSmallCorpus(**m);
  ModelRegistry reg;
  ApiService api((*m).get(), &reg);
  std::string key = api.CreateApiKey("ops");

  auto missing = api.HandleRequest(key, "promote", Json::MakeObject());
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);

  auto ok = api.HandleRequest(key, "promote", req);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ((*ok)["action"].AsString(), "promoted");
  EXPECT_EQ((*ok)["shard"].AsInt(), 0);
  EXPECT_EQ((*ok)["old_epoch"].AsInt(), 0);
  EXPECT_EQ((*ok)["new_epoch"].AsInt(), 1);
  EXPECT_EQ((*ok)["promoted_replica"].AsInt(), 0);
  EXPECT_EQ((*m)->shard_epoch(0), 1);
}

// ---------------------------------------------------------------------
// Tentpole: crash at every promotion phase boundary — zero lost acked
// writes, no split-brain, resolved from durable evidence alone.
// ---------------------------------------------------------------------

struct PromotionCrashCase {
  const char* phase;
  int expected_primary;  // copy index serving shard 0 after recovery
  int64_t expected_epoch;
};

class ReplicationRecoveryTest
    : public ::testing::TestWithParam<PromotionCrashCase> {};

TEST_P(ReplicationRecoveryTest, ProcessCrashAtPhaseBoundaryLosesNothing) {
  const PromotionCrashCase& c = GetParam();
  std::string dir = ::testing::TempDir() + "tvdp_repcrashXXXXXX";
  ASSERT_NE(mkdtemp(dir.data()), nullptr);
  ShardManagerOptions opts = ReplicatedOptions(2, 2, 2, 2);
  opts.base_path = dir;

  std::set<std::string> oracle;
  {
    auto m = ShardManager::Create(opts);
    ASSERT_TRUE(m.ok()) << m.status();
    BuildSmallCorpus(**m);  // every row here is an acked write
    auto baseline = (*m)->ExecuteQuery(CityQuery());
    ASSERT_TRUE(baseline.ok());
    oracle = UrisOf(**m, baseline->hits);
    ASSERT_EQ(oracle.size(), static_cast<size_t>(kSmall));

    const std::string crash_phase = c.phase;
    (*m)->SetPromotionHook([crash_phase](const std::string& ph, int) {
      return ph != crash_phase;
    });
    auto r = (*m)->PromoteShard(0);
    ASSERT_FALSE(r.ok()) << "phase " << c.phase;
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable) << r.status();
    // The process now "dies" with the promotion unresolved on disk.
  }

  // A fresh fleet over the same stores resolves the promotion from the
  // shard map alone: before the promote commit the old primary serves,
  // after it the promoted replica does. Either way every acked write is
  // there and exactly one lineage serves (no split-brain).
  auto m = ShardManager::Create(opts);
  ASSERT_TRUE(m.ok()) << "phase " << c.phase << ": " << m.status();
  ShardManager& mgr = **m;
  EXPECT_EQ(mgr.shard_primary_index(0), c.expected_primary) << c.phase;
  EXPECT_EQ(mgr.shard_epoch(0), c.expected_epoch) << c.phase;
  EXPECT_FALSE(mgr.shard_promoting(0)) << c.phase;
  EXPECT_EQ(mgr.live_replica_count(0), 1) << c.phase;
  EXPECT_EQ(mgr.image_count(), static_cast<size_t>(kSmall)) << c.phase;

  auto r = mgr.ExecuteQuery(CityQuery());
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->coverage.complete()) << r->coverage.ToJson().Dump();
  EXPECT_EQ(UrisOf(mgr, r->hits), oracle) << c.phase;

  // Not wedged: a fresh promotion completes and writes keep flowing.
  auto redo = mgr.PromoteShard(0);
  ASSERT_TRUE(redo.ok()) << c.phase << ": " << redo.status();
  EXPECT_EQ(mgr.shard_epoch(0), c.expected_epoch + 1);
  ImageRecord rec;
  rec.uri = "post_recovery";
  rec.location = CellZeroPoint();
  rec.keywords = {"city"};
  ASSERT_TRUE(mgr.IngestImage(rec).ok()) << c.phase;
  auto post = mgr.ExecuteQuery(CityQuery());
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->hits.size(), static_cast<size_t>(kSmall) + 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllPhases, ReplicationRecoveryTest,
    ::testing::Values(PromotionCrashCase{"ship", 0, 0},
                      PromotionCrashCase{"apply", 0, 0},
                      PromotionCrashCase{"ack", 0, 0},
                      PromotionCrashCase{"promote", 0, 0},
                      PromotionCrashCase{"fence", 1, 1},
                      PromotionCrashCase{"flip", 1, 1}),
    [](const ::testing::TestParamInfo<PromotionCrashCase>& info) {
      return std::string(info.param.phase);
    });

// ---------------------------------------------------------------------
// Interlock: the shard map has one serialized writer. A rebalance that
// lands between a promotion's durable commit (phase 4) and its in-memory
// flip (phase 6) must persist the promoted epoch/primary, not the stale
// slot values — or a restart would reopen the deposed primary as primary
// and drop its acked writes.
// ---------------------------------------------------------------------

TEST(ReplicationInterlockTest, RebalanceDuringPromotionCannotRegressShardMap) {
  std::string dir = ::testing::TempDir() + "tvdp_repmapXXXXXX";
  ASSERT_NE(mkdtemp(dir.data()), nullptr);
  ShardManagerOptions opts = ReplicatedOptions(3, 2, 3, 2);
  opts.base_path = dir;

  std::set<std::string> oracle;
  std::vector<int> owners_before;
  {
    auto m = ShardManager::Create(opts);
    ASSERT_TRUE(m.ok()) << m.status();
    ShardManager& mgr = **m;
    BuildSmallCorpus(mgr);
    auto baseline = mgr.ExecuteQuery(CityQuery());
    ASSERT_TRUE(baseline.ok());
    oracle = UrisOf(mgr, baseline->hits);
    ASSERT_EQ(oracle.size(), static_cast<size_t>(kSmall));

    // At shard 0's fence — after its shard-map commit, before its slot
    // epoch rises — rebalance a cell between the two OTHER shards. The
    // rebalance rewrites the whole shard map mid-promotion.
    std::atomic<bool> rebalanced{false};
    mgr.SetPromotionHook([&](const std::string& phase, int shard) {
      if (phase == "fence" && shard == 0 && !rebalanced.exchange(true)) {
        auto moved = mgr.RebalanceCells({1}, /*source=*/1, /*target=*/2);
        EXPECT_TRUE(moved.ok()) << moved.status();
      }
      return true;
    });
    auto promoted = mgr.PromoteShard(0);
    ASSERT_TRUE(promoted.ok()) << promoted.status();
    ASSERT_TRUE(rebalanced.load());
    EXPECT_EQ(mgr.shard_epoch(0), 1);
    EXPECT_EQ(mgr.shard_primary_index(0), 1);
    for (int i = 0; i < kSmall; ++i) {
      int row = i / 10, col = i % 10;
      owners_before.push_back(mgr.ShardForLocation(
          {34.00 + row * 0.009, -118.30 + col * 0.0095}));
    }
  }

  // Restart from durable state alone: both the promotion and the rebalance
  // survive, in full — neither map write clobbered the other.
  auto m = ShardManager::Create(opts);
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  EXPECT_EQ(mgr.shard_epoch(0), 1);
  EXPECT_EQ(mgr.shard_primary_index(0), 1);
  std::vector<int> owners_after;
  for (int i = 0; i < kSmall; ++i) {
    int row = i / 10, col = i % 10;
    owners_after.push_back(mgr.ShardForLocation(
        {34.00 + row * 0.009, -118.30 + col * 0.0095}));
  }
  EXPECT_EQ(owners_after, owners_before);

  auto r = mgr.ExecuteQuery(CityQuery());
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->coverage.complete()) << r->coverage.ToJson().Dump();
  EXPECT_EQ(UrisOf(mgr, r->hits), oracle);

  // The promoted shard keeps taking writes under its new epoch.
  ImageRecord rec;
  rec.uri = "post_restart";
  rec.location = CellZeroPoint();
  rec.keywords = {"city"};
  ASSERT_TRUE(mgr.IngestImage(rec).ok());
  std::string cleanup = "rm -rf '" + dir + "'";
  (void)std::system(cleanup.c_str());
}

// ---------------------------------------------------------------------
// Stress: concurrent writers + queries vs. a rolling promotion churn
// (the tier-1 ReplicationStress.{asan,tsan} targets run this suite).
// ---------------------------------------------------------------------

TEST(ReplicationStressTest, WritesAndQueriesStayExactUnderPromotionChurn) {
  ShardManagerOptions opts = ReplicatedOptions(3, 2, 3, /*factor=*/3);
  opts.breakers = false;  // churn without cooldown gating
  auto m = ShardManager::Create(opts);
  ASSERT_TRUE(m.ok()) << m.status();
  ShardManager& mgr = **m;
  BuildCorpus(mgr);

  std::atomic<bool> done{false};
  std::atomic<int> ingested{0};
  std::atomic<int> query_errors{0};
  std::vector<std::thread> threads;

  // Query threads: the fleet is never down (failovers promote standing
  // replicas of live shards), so every response must be complete and free
  // of duplicate ids.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      HybridQuery q = CityQuery();
      while (!done.load()) {
        auto r = mgr.ExecuteQuery(q);
        if (!r.ok()) {
          ++query_errors;
          continue;
        }
        std::set<int64_t> seen;
        for (const auto& h : r->hits) {
          EXPECT_TRUE(seen.insert(h.image_id).second)
              << "duplicate id " << h.image_id;
        }
      }
    });
  }
  // Writer threads: acked ingests must survive every failover. Bounded so
  // the sanitizer runs terminate.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      int i = 0;
      while (!done.load() && ingested.load() < 300) {
        ImageRecord rec;
        rec.uri = "live_" + std::to_string(t) + "_" + std::to_string(i++);
        rec.location =
            geo::GeoPoint{34.00 + (i % 8) * 0.009, -118.30 + (i % 9) * 0.01};
        rec.keywords = {"city", "live"};
        if (mgr.IngestImage(rec).ok()) ++ingested;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  // Broadcast thread: classification registration mutates every engine
  // without a per-row write path, so it must ride the write gate — a
  // fence landing between its per-shard applies would strand a write on
  // the deposed primary. Bounded iterations; no done check (it must run
  // its full course even if the churn finishes first).
  constexpr int kBroadcasts = 12;
  threads.emplace_back([&] {
    for (int i = 0; i < kBroadcasts; ++i) {
      auto id = mgr.RegisterClassification("live_cls_" + std::to_string(i),
                                           {"yes", "no"});
      EXPECT_TRUE(id.ok()) << id.status();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Rolling promotion churn: each shard fails over twice (factor 3 gives
  // two standby replicas), racing the write gate, the fencing epoch bump,
  // and the observer rebind against live traffic.
  for (int round = 0; round < 2; ++round) {
    for (int s = 0; s < 3; ++s) {
      auto r = mgr.PromoteShard(s);
      ASSERT_TRUE(r.ok()) << "round " << round << " shard " << s << ": "
                          << r.status();
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  }
  done = true;
  for (auto& t : threads) t.join();
  EXPECT_EQ(query_errors.load(), 0);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(mgr.shard_epoch(s), 2) << "shard " << s;
  }

  // Quiesce: every acked write survived two failovers of its shard, and
  // every broadcast landed on every shard exactly once.
  EXPECT_TRUE(mgr.VerifyClassificationConsistency().ok());
  EXPECT_EQ(mgr.image_count(),
            static_cast<size_t>(kCorpus) + ingested.load());
  auto final_city = mgr.ExecuteQuery(CityQuery());
  ASSERT_TRUE(final_city.ok()) << final_city.status();
  EXPECT_TRUE(final_city->coverage.complete())
      << final_city->coverage.ToJson().Dump();
  EXPECT_EQ(final_city->hits.size(),
            static_cast<size_t>(kCorpus) + ingested.load());

  HybridQuery live;
  query::TextualPredicate tp;
  tp.keywords = {"live"};
  live.textual = tp;
  auto final_live = mgr.ExecuteQuery(live);
  ASSERT_TRUE(final_live.ok());
  EXPECT_TRUE(final_live->coverage.complete());
  EXPECT_EQ(final_live->hits.size(), static_cast<size_t>(ingested.load()));
}

}  // namespace
}  // namespace tvdp::platform
