file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_classifier_grid.dir/bench_fig6_classifier_grid.cc.o"
  "CMakeFiles/bench_fig6_classifier_grid.dir/bench_fig6_classifier_grid.cc.o.d"
  "bench_fig6_classifier_grid"
  "bench_fig6_classifier_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_classifier_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
