# Empty compiler generated dependencies file for bench_fig6_classifier_grid.
# This may be replaced when dependencies are built.
