# Empty dependencies file for bench_fig9_translational.
# This may be replaced when dependencies are built.
