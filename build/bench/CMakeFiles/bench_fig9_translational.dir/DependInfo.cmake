
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9_translational.cc" "bench/CMakeFiles/bench_fig9_translational.dir/bench_fig9_translational.cc.o" "gcc" "bench/CMakeFiles/bench_fig9_translational.dir/bench_fig9_translational.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/tvdp_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/tvdp_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/tvdp_image.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/tvdp_query.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/tvdp_index.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tvdp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/crowd/CMakeFiles/tvdp_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tvdp_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/tvdp_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/tvdp_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tvdp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
