file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_translational.dir/bench_fig9_translational.cc.o"
  "CMakeFiles/bench_fig9_translational.dir/bench_fig9_translational.cc.o.d"
  "bench_fig9_translational"
  "bench_fig9_translational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_translational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
