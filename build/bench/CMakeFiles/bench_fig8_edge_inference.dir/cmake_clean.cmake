file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_edge_inference.dir/bench_fig8_edge_inference.cc.o"
  "CMakeFiles/bench_fig8_edge_inference.dir/bench_fig8_edge_inference.cc.o.d"
  "bench_fig8_edge_inference"
  "bench_fig8_edge_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_edge_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
