# Empty dependencies file for bench_fig8_edge_inference.
# This may be replaced when dependencies are built.
