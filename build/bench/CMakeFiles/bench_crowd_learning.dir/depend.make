# Empty dependencies file for bench_crowd_learning.
# This may be replaced when dependencies are built.
