file(REMOVE_RECURSE
  "CMakeFiles/bench_crowd_learning.dir/bench_crowd_learning.cc.o"
  "CMakeFiles/bench_crowd_learning.dir/bench_crowd_learning.cc.o.d"
  "bench_crowd_learning"
  "bench_crowd_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crowd_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
