# Empty dependencies file for bench_acquisition_coverage.
# This may be replaced when dependencies are built.
