file(REMOVE_RECURSE
  "CMakeFiles/bench_acquisition_coverage.dir/bench_acquisition_coverage.cc.o"
  "CMakeFiles/bench_acquisition_coverage.dir/bench_acquisition_coverage.cc.o.d"
  "bench_acquisition_coverage"
  "bench_acquisition_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_acquisition_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
