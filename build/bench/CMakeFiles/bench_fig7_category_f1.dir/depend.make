# Empty dependencies file for bench_fig7_category_f1.
# This may be replaced when dependencies are built.
