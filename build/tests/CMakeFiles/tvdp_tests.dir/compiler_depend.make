# Empty compiler generated dependencies file for tvdp_tests.
# This may be replaced when dependencies are built.
