file(REMOVE_RECURSE
  "CMakeFiles/tvdp_tests.dir/common_test.cc.o"
  "CMakeFiles/tvdp_tests.dir/common_test.cc.o.d"
  "CMakeFiles/tvdp_tests.dir/crowd_test.cc.o"
  "CMakeFiles/tvdp_tests.dir/crowd_test.cc.o.d"
  "CMakeFiles/tvdp_tests.dir/edge_test.cc.o"
  "CMakeFiles/tvdp_tests.dir/edge_test.cc.o.d"
  "CMakeFiles/tvdp_tests.dir/extensions_test.cc.o"
  "CMakeFiles/tvdp_tests.dir/extensions_test.cc.o.d"
  "CMakeFiles/tvdp_tests.dir/geo_test.cc.o"
  "CMakeFiles/tvdp_tests.dir/geo_test.cc.o.d"
  "CMakeFiles/tvdp_tests.dir/image_test.cc.o"
  "CMakeFiles/tvdp_tests.dir/image_test.cc.o.d"
  "CMakeFiles/tvdp_tests.dir/index_test.cc.o"
  "CMakeFiles/tvdp_tests.dir/index_test.cc.o.d"
  "CMakeFiles/tvdp_tests.dir/ml_test.cc.o"
  "CMakeFiles/tvdp_tests.dir/ml_test.cc.o.d"
  "CMakeFiles/tvdp_tests.dir/platform_test.cc.o"
  "CMakeFiles/tvdp_tests.dir/platform_test.cc.o.d"
  "CMakeFiles/tvdp_tests.dir/query_test.cc.o"
  "CMakeFiles/tvdp_tests.dir/query_test.cc.o.d"
  "CMakeFiles/tvdp_tests.dir/robustness_test.cc.o"
  "CMakeFiles/tvdp_tests.dir/robustness_test.cc.o.d"
  "CMakeFiles/tvdp_tests.dir/storage_test.cc.o"
  "CMakeFiles/tvdp_tests.dir/storage_test.cc.o.d"
  "CMakeFiles/tvdp_tests.dir/vision_test.cc.o"
  "CMakeFiles/tvdp_tests.dir/vision_test.cc.o.d"
  "tvdp_tests"
  "tvdp_tests.pdb"
  "tvdp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvdp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
