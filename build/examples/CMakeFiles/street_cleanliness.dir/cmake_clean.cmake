file(REMOVE_RECURSE
  "CMakeFiles/street_cleanliness.dir/street_cleanliness.cpp.o"
  "CMakeFiles/street_cleanliness.dir/street_cleanliness.cpp.o.d"
  "street_cleanliness"
  "street_cleanliness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/street_cleanliness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
