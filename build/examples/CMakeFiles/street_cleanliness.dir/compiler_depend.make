# Empty compiler generated dependencies file for street_cleanliness.
# This may be replaced when dependencies are built.
