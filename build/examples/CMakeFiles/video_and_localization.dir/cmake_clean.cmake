file(REMOVE_RECURSE
  "CMakeFiles/video_and_localization.dir/video_and_localization.cpp.o"
  "CMakeFiles/video_and_localization.dir/video_and_localization.cpp.o.d"
  "video_and_localization"
  "video_and_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_and_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
