# Empty dependencies file for video_and_localization.
# This may be replaced when dependencies are built.
