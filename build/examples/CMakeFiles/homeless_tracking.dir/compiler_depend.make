# Empty compiler generated dependencies file for homeless_tracking.
# This may be replaced when dependencies are built.
