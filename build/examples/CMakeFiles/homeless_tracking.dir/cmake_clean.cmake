file(REMOVE_RECURSE
  "CMakeFiles/homeless_tracking.dir/homeless_tracking.cpp.o"
  "CMakeFiles/homeless_tracking.dir/homeless_tracking.cpp.o.d"
  "homeless_tracking"
  "homeless_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homeless_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
