
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/inverted_index.cc" "src/index/CMakeFiles/tvdp_index.dir/inverted_index.cc.o" "gcc" "src/index/CMakeFiles/tvdp_index.dir/inverted_index.cc.o.d"
  "/root/repo/src/index/lsh.cc" "src/index/CMakeFiles/tvdp_index.dir/lsh.cc.o" "gcc" "src/index/CMakeFiles/tvdp_index.dir/lsh.cc.o.d"
  "/root/repo/src/index/oriented_rtree.cc" "src/index/CMakeFiles/tvdp_index.dir/oriented_rtree.cc.o" "gcc" "src/index/CMakeFiles/tvdp_index.dir/oriented_rtree.cc.o.d"
  "/root/repo/src/index/rtree.cc" "src/index/CMakeFiles/tvdp_index.dir/rtree.cc.o" "gcc" "src/index/CMakeFiles/tvdp_index.dir/rtree.cc.o.d"
  "/root/repo/src/index/temporal_index.cc" "src/index/CMakeFiles/tvdp_index.dir/temporal_index.cc.o" "gcc" "src/index/CMakeFiles/tvdp_index.dir/temporal_index.cc.o.d"
  "/root/repo/src/index/visual_rtree.cc" "src/index/CMakeFiles/tvdp_index.dir/visual_rtree.cc.o" "gcc" "src/index/CMakeFiles/tvdp_index.dir/visual_rtree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tvdp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tvdp_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/tvdp_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
