file(REMOVE_RECURSE
  "CMakeFiles/tvdp_index.dir/inverted_index.cc.o"
  "CMakeFiles/tvdp_index.dir/inverted_index.cc.o.d"
  "CMakeFiles/tvdp_index.dir/lsh.cc.o"
  "CMakeFiles/tvdp_index.dir/lsh.cc.o.d"
  "CMakeFiles/tvdp_index.dir/oriented_rtree.cc.o"
  "CMakeFiles/tvdp_index.dir/oriented_rtree.cc.o.d"
  "CMakeFiles/tvdp_index.dir/rtree.cc.o"
  "CMakeFiles/tvdp_index.dir/rtree.cc.o.d"
  "CMakeFiles/tvdp_index.dir/temporal_index.cc.o"
  "CMakeFiles/tvdp_index.dir/temporal_index.cc.o.d"
  "CMakeFiles/tvdp_index.dir/visual_rtree.cc.o"
  "CMakeFiles/tvdp_index.dir/visual_rtree.cc.o.d"
  "libtvdp_index.a"
  "libtvdp_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvdp_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
