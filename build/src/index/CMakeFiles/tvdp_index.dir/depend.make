# Empty dependencies file for tvdp_index.
# This may be replaced when dependencies are built.
