file(REMOVE_RECURSE
  "libtvdp_index.a"
)
