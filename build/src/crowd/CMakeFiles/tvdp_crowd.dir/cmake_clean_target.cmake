file(REMOVE_RECURSE
  "libtvdp_crowd.a"
)
