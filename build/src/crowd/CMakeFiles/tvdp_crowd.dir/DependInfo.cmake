
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crowd/acquisition.cc" "src/crowd/CMakeFiles/tvdp_crowd.dir/acquisition.cc.o" "gcc" "src/crowd/CMakeFiles/tvdp_crowd.dir/acquisition.cc.o.d"
  "/root/repo/src/crowd/assignment.cc" "src/crowd/CMakeFiles/tvdp_crowd.dir/assignment.cc.o" "gcc" "src/crowd/CMakeFiles/tvdp_crowd.dir/assignment.cc.o.d"
  "/root/repo/src/crowd/campaign.cc" "src/crowd/CMakeFiles/tvdp_crowd.dir/campaign.cc.o" "gcc" "src/crowd/CMakeFiles/tvdp_crowd.dir/campaign.cc.o.d"
  "/root/repo/src/crowd/worker.cc" "src/crowd/CMakeFiles/tvdp_crowd.dir/worker.cc.o" "gcc" "src/crowd/CMakeFiles/tvdp_crowd.dir/worker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tvdp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tvdp_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
