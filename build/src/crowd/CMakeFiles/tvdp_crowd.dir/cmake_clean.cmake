file(REMOVE_RECURSE
  "CMakeFiles/tvdp_crowd.dir/acquisition.cc.o"
  "CMakeFiles/tvdp_crowd.dir/acquisition.cc.o.d"
  "CMakeFiles/tvdp_crowd.dir/assignment.cc.o"
  "CMakeFiles/tvdp_crowd.dir/assignment.cc.o.d"
  "CMakeFiles/tvdp_crowd.dir/campaign.cc.o"
  "CMakeFiles/tvdp_crowd.dir/campaign.cc.o.d"
  "CMakeFiles/tvdp_crowd.dir/worker.cc.o"
  "CMakeFiles/tvdp_crowd.dir/worker.cc.o.d"
  "libtvdp_crowd.a"
  "libtvdp_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvdp_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
