# Empty compiler generated dependencies file for tvdp_crowd.
# This may be replaced when dependencies are built.
