
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/bbox.cc" "src/geo/CMakeFiles/tvdp_geo.dir/bbox.cc.o" "gcc" "src/geo/CMakeFiles/tvdp_geo.dir/bbox.cc.o.d"
  "/root/repo/src/geo/coverage.cc" "src/geo/CMakeFiles/tvdp_geo.dir/coverage.cc.o" "gcc" "src/geo/CMakeFiles/tvdp_geo.dir/coverage.cc.o.d"
  "/root/repo/src/geo/fov.cc" "src/geo/CMakeFiles/tvdp_geo.dir/fov.cc.o" "gcc" "src/geo/CMakeFiles/tvdp_geo.dir/fov.cc.o.d"
  "/root/repo/src/geo/geo_point.cc" "src/geo/CMakeFiles/tvdp_geo.dir/geo_point.cc.o" "gcc" "src/geo/CMakeFiles/tvdp_geo.dir/geo_point.cc.o.d"
  "/root/repo/src/geo/polyline.cc" "src/geo/CMakeFiles/tvdp_geo.dir/polyline.cc.o" "gcc" "src/geo/CMakeFiles/tvdp_geo.dir/polyline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tvdp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
