# Empty compiler generated dependencies file for tvdp_geo.
# This may be replaced when dependencies are built.
