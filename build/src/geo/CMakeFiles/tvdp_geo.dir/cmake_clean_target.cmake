file(REMOVE_RECURSE
  "libtvdp_geo.a"
)
