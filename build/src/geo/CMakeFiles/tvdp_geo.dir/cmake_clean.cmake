file(REMOVE_RECURSE
  "CMakeFiles/tvdp_geo.dir/bbox.cc.o"
  "CMakeFiles/tvdp_geo.dir/bbox.cc.o.d"
  "CMakeFiles/tvdp_geo.dir/coverage.cc.o"
  "CMakeFiles/tvdp_geo.dir/coverage.cc.o.d"
  "CMakeFiles/tvdp_geo.dir/fov.cc.o"
  "CMakeFiles/tvdp_geo.dir/fov.cc.o.d"
  "CMakeFiles/tvdp_geo.dir/geo_point.cc.o"
  "CMakeFiles/tvdp_geo.dir/geo_point.cc.o.d"
  "CMakeFiles/tvdp_geo.dir/polyline.cc.o"
  "CMakeFiles/tvdp_geo.dir/polyline.cc.o.d"
  "libtvdp_geo.a"
  "libtvdp_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvdp_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
