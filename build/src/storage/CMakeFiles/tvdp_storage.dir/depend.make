# Empty dependencies file for tvdp_storage.
# This may be replaced when dependencies are built.
