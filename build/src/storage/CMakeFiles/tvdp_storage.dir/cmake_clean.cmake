file(REMOVE_RECURSE
  "CMakeFiles/tvdp_storage.dir/catalog.cc.o"
  "CMakeFiles/tvdp_storage.dir/catalog.cc.o.d"
  "CMakeFiles/tvdp_storage.dir/schema.cc.o"
  "CMakeFiles/tvdp_storage.dir/schema.cc.o.d"
  "CMakeFiles/tvdp_storage.dir/serializer.cc.o"
  "CMakeFiles/tvdp_storage.dir/serializer.cc.o.d"
  "CMakeFiles/tvdp_storage.dir/table.cc.o"
  "CMakeFiles/tvdp_storage.dir/table.cc.o.d"
  "CMakeFiles/tvdp_storage.dir/tvdp_schema.cc.o"
  "CMakeFiles/tvdp_storage.dir/tvdp_schema.cc.o.d"
  "CMakeFiles/tvdp_storage.dir/value.cc.o"
  "CMakeFiles/tvdp_storage.dir/value.cc.o.d"
  "libtvdp_storage.a"
  "libtvdp_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvdp_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
