file(REMOVE_RECURSE
  "libtvdp_storage.a"
)
