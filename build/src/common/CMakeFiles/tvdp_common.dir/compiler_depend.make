# Empty compiler generated dependencies file for tvdp_common.
# This may be replaced when dependencies are built.
