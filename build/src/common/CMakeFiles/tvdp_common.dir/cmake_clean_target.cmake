file(REMOVE_RECURSE
  "libtvdp_common.a"
)
