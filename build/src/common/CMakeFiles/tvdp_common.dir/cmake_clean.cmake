file(REMOVE_RECURSE
  "CMakeFiles/tvdp_common.dir/json.cc.o"
  "CMakeFiles/tvdp_common.dir/json.cc.o.d"
  "CMakeFiles/tvdp_common.dir/logging.cc.o"
  "CMakeFiles/tvdp_common.dir/logging.cc.o.d"
  "CMakeFiles/tvdp_common.dir/rng.cc.o"
  "CMakeFiles/tvdp_common.dir/rng.cc.o.d"
  "CMakeFiles/tvdp_common.dir/status.cc.o"
  "CMakeFiles/tvdp_common.dir/status.cc.o.d"
  "CMakeFiles/tvdp_common.dir/strings.cc.o"
  "CMakeFiles/tvdp_common.dir/strings.cc.o.d"
  "CMakeFiles/tvdp_common.dir/timeutil.cc.o"
  "CMakeFiles/tvdp_common.dir/timeutil.cc.o.d"
  "libtvdp_common.a"
  "libtvdp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvdp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
