# Empty compiler generated dependencies file for tvdp_ml.
# This may be replaced when dependencies are built.
