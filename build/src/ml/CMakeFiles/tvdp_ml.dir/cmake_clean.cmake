file(REMOVE_RECURSE
  "CMakeFiles/tvdp_ml.dir/classifier.cc.o"
  "CMakeFiles/tvdp_ml.dir/classifier.cc.o.d"
  "CMakeFiles/tvdp_ml.dir/cross_validation.cc.o"
  "CMakeFiles/tvdp_ml.dir/cross_validation.cc.o.d"
  "CMakeFiles/tvdp_ml.dir/dataset.cc.o"
  "CMakeFiles/tvdp_ml.dir/dataset.cc.o.d"
  "CMakeFiles/tvdp_ml.dir/decision_tree.cc.o"
  "CMakeFiles/tvdp_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/tvdp_ml.dir/kmeans.cc.o"
  "CMakeFiles/tvdp_ml.dir/kmeans.cc.o.d"
  "CMakeFiles/tvdp_ml.dir/knn.cc.o"
  "CMakeFiles/tvdp_ml.dir/knn.cc.o.d"
  "CMakeFiles/tvdp_ml.dir/linear_svm.cc.o"
  "CMakeFiles/tvdp_ml.dir/linear_svm.cc.o.d"
  "CMakeFiles/tvdp_ml.dir/logistic_regression.cc.o"
  "CMakeFiles/tvdp_ml.dir/logistic_regression.cc.o.d"
  "CMakeFiles/tvdp_ml.dir/metrics.cc.o"
  "CMakeFiles/tvdp_ml.dir/metrics.cc.o.d"
  "CMakeFiles/tvdp_ml.dir/mlp.cc.o"
  "CMakeFiles/tvdp_ml.dir/mlp.cc.o.d"
  "CMakeFiles/tvdp_ml.dir/naive_bayes.cc.o"
  "CMakeFiles/tvdp_ml.dir/naive_bayes.cc.o.d"
  "CMakeFiles/tvdp_ml.dir/random_forest.cc.o"
  "CMakeFiles/tvdp_ml.dir/random_forest.cc.o.d"
  "libtvdp_ml.a"
  "libtvdp_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvdp_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
