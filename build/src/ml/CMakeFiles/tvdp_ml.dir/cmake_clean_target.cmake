file(REMOVE_RECURSE
  "libtvdp_ml.a"
)
