# Empty compiler generated dependencies file for tvdp_image.
# This may be replaced when dependencies are built.
