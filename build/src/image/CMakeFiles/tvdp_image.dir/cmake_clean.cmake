file(REMOVE_RECURSE
  "CMakeFiles/tvdp_image.dir/augment.cc.o"
  "CMakeFiles/tvdp_image.dir/augment.cc.o.d"
  "CMakeFiles/tvdp_image.dir/draw.cc.o"
  "CMakeFiles/tvdp_image.dir/draw.cc.o.d"
  "CMakeFiles/tvdp_image.dir/image.cc.o"
  "CMakeFiles/tvdp_image.dir/image.cc.o.d"
  "CMakeFiles/tvdp_image.dir/scene_gen.cc.o"
  "CMakeFiles/tvdp_image.dir/scene_gen.cc.o.d"
  "libtvdp_image.a"
  "libtvdp_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvdp_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
