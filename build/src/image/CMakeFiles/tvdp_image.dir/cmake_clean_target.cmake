file(REMOVE_RECURSE
  "libtvdp_image.a"
)
