
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/augment.cc" "src/image/CMakeFiles/tvdp_image.dir/augment.cc.o" "gcc" "src/image/CMakeFiles/tvdp_image.dir/augment.cc.o.d"
  "/root/repo/src/image/draw.cc" "src/image/CMakeFiles/tvdp_image.dir/draw.cc.o" "gcc" "src/image/CMakeFiles/tvdp_image.dir/draw.cc.o.d"
  "/root/repo/src/image/image.cc" "src/image/CMakeFiles/tvdp_image.dir/image.cc.o" "gcc" "src/image/CMakeFiles/tvdp_image.dir/image.cc.o.d"
  "/root/repo/src/image/scene_gen.cc" "src/image/CMakeFiles/tvdp_image.dir/scene_gen.cc.o" "gcc" "src/image/CMakeFiles/tvdp_image.dir/scene_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tvdp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tvdp_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
