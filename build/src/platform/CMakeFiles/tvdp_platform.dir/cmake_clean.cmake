file(REMOVE_RECURSE
  "CMakeFiles/tvdp_platform.dir/api.cc.o"
  "CMakeFiles/tvdp_platform.dir/api.cc.o.d"
  "CMakeFiles/tvdp_platform.dir/dataset_gen.cc.o"
  "CMakeFiles/tvdp_platform.dir/dataset_gen.cc.o.d"
  "CMakeFiles/tvdp_platform.dir/export.cc.o"
  "CMakeFiles/tvdp_platform.dir/export.cc.o.d"
  "CMakeFiles/tvdp_platform.dir/model_registry.cc.o"
  "CMakeFiles/tvdp_platform.dir/model_registry.cc.o.d"
  "CMakeFiles/tvdp_platform.dir/tvdp.cc.o"
  "CMakeFiles/tvdp_platform.dir/tvdp.cc.o.d"
  "CMakeFiles/tvdp_platform.dir/video.cc.o"
  "CMakeFiles/tvdp_platform.dir/video.cc.o.d"
  "libtvdp_platform.a"
  "libtvdp_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvdp_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
