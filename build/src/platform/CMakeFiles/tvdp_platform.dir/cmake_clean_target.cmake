file(REMOVE_RECURSE
  "libtvdp_platform.a"
)
