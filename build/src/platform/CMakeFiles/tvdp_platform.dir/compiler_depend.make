# Empty compiler generated dependencies file for tvdp_platform.
# This may be replaced when dependencies are built.
