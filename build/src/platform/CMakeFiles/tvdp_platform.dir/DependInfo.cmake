
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/api.cc" "src/platform/CMakeFiles/tvdp_platform.dir/api.cc.o" "gcc" "src/platform/CMakeFiles/tvdp_platform.dir/api.cc.o.d"
  "/root/repo/src/platform/dataset_gen.cc" "src/platform/CMakeFiles/tvdp_platform.dir/dataset_gen.cc.o" "gcc" "src/platform/CMakeFiles/tvdp_platform.dir/dataset_gen.cc.o.d"
  "/root/repo/src/platform/export.cc" "src/platform/CMakeFiles/tvdp_platform.dir/export.cc.o" "gcc" "src/platform/CMakeFiles/tvdp_platform.dir/export.cc.o.d"
  "/root/repo/src/platform/model_registry.cc" "src/platform/CMakeFiles/tvdp_platform.dir/model_registry.cc.o" "gcc" "src/platform/CMakeFiles/tvdp_platform.dir/model_registry.cc.o.d"
  "/root/repo/src/platform/tvdp.cc" "src/platform/CMakeFiles/tvdp_platform.dir/tvdp.cc.o" "gcc" "src/platform/CMakeFiles/tvdp_platform.dir/tvdp.cc.o.d"
  "/root/repo/src/platform/video.cc" "src/platform/CMakeFiles/tvdp_platform.dir/video.cc.o" "gcc" "src/platform/CMakeFiles/tvdp_platform.dir/video.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tvdp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tvdp_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/tvdp_image.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/tvdp_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/tvdp_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/tvdp_index.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tvdp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/tvdp_query.dir/DependInfo.cmake"
  "/root/repo/build/src/crowd/CMakeFiles/tvdp_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/tvdp_edge.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
