# Empty compiler generated dependencies file for tvdp_query.
# This may be replaced when dependencies are built.
