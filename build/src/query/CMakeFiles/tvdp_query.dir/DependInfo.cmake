
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/engine.cc" "src/query/CMakeFiles/tvdp_query.dir/engine.cc.o" "gcc" "src/query/CMakeFiles/tvdp_query.dir/engine.cc.o.d"
  "/root/repo/src/query/localize.cc" "src/query/CMakeFiles/tvdp_query.dir/localize.cc.o" "gcc" "src/query/CMakeFiles/tvdp_query.dir/localize.cc.o.d"
  "/root/repo/src/query/query.cc" "src/query/CMakeFiles/tvdp_query.dir/query.cc.o" "gcc" "src/query/CMakeFiles/tvdp_query.dir/query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tvdp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tvdp_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/tvdp_index.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tvdp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/tvdp_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
