file(REMOVE_RECURSE
  "libtvdp_query.a"
)
