file(REMOVE_RECURSE
  "CMakeFiles/tvdp_query.dir/engine.cc.o"
  "CMakeFiles/tvdp_query.dir/engine.cc.o.d"
  "CMakeFiles/tvdp_query.dir/localize.cc.o"
  "CMakeFiles/tvdp_query.dir/localize.cc.o.d"
  "CMakeFiles/tvdp_query.dir/query.cc.o"
  "CMakeFiles/tvdp_query.dir/query.cc.o.d"
  "libtvdp_query.a"
  "libtvdp_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvdp_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
