# Empty dependencies file for tvdp_vision.
# This may be replaced when dependencies are built.
