
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vision/bow.cc" "src/vision/CMakeFiles/tvdp_vision.dir/bow.cc.o" "gcc" "src/vision/CMakeFiles/tvdp_vision.dir/bow.cc.o.d"
  "/root/repo/src/vision/cnn.cc" "src/vision/CMakeFiles/tvdp_vision.dir/cnn.cc.o" "gcc" "src/vision/CMakeFiles/tvdp_vision.dir/cnn.cc.o.d"
  "/root/repo/src/vision/color_histogram.cc" "src/vision/CMakeFiles/tvdp_vision.dir/color_histogram.cc.o" "gcc" "src/vision/CMakeFiles/tvdp_vision.dir/color_histogram.cc.o.d"
  "/root/repo/src/vision/feature.cc" "src/vision/CMakeFiles/tvdp_vision.dir/feature.cc.o" "gcc" "src/vision/CMakeFiles/tvdp_vision.dir/feature.cc.o.d"
  "/root/repo/src/vision/sift.cc" "src/vision/CMakeFiles/tvdp_vision.dir/sift.cc.o" "gcc" "src/vision/CMakeFiles/tvdp_vision.dir/sift.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tvdp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/tvdp_image.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/tvdp_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tvdp_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
