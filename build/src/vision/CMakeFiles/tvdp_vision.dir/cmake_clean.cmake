file(REMOVE_RECURSE
  "CMakeFiles/tvdp_vision.dir/bow.cc.o"
  "CMakeFiles/tvdp_vision.dir/bow.cc.o.d"
  "CMakeFiles/tvdp_vision.dir/cnn.cc.o"
  "CMakeFiles/tvdp_vision.dir/cnn.cc.o.d"
  "CMakeFiles/tvdp_vision.dir/color_histogram.cc.o"
  "CMakeFiles/tvdp_vision.dir/color_histogram.cc.o.d"
  "CMakeFiles/tvdp_vision.dir/feature.cc.o"
  "CMakeFiles/tvdp_vision.dir/feature.cc.o.d"
  "CMakeFiles/tvdp_vision.dir/sift.cc.o"
  "CMakeFiles/tvdp_vision.dir/sift.cc.o.d"
  "libtvdp_vision.a"
  "libtvdp_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvdp_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
