file(REMOVE_RECURSE
  "libtvdp_vision.a"
)
