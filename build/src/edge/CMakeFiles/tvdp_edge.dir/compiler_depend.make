# Empty compiler generated dependencies file for tvdp_edge.
# This may be replaced when dependencies are built.
