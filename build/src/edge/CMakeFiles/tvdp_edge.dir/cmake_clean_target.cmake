file(REMOVE_RECURSE
  "libtvdp_edge.a"
)
