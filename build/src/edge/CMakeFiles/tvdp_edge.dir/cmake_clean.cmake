file(REMOVE_RECURSE
  "CMakeFiles/tvdp_edge.dir/crowd_learning.cc.o"
  "CMakeFiles/tvdp_edge.dir/crowd_learning.cc.o.d"
  "CMakeFiles/tvdp_edge.dir/device.cc.o"
  "CMakeFiles/tvdp_edge.dir/device.cc.o.d"
  "CMakeFiles/tvdp_edge.dir/dispatcher.cc.o"
  "CMakeFiles/tvdp_edge.dir/dispatcher.cc.o.d"
  "CMakeFiles/tvdp_edge.dir/model_profile.cc.o"
  "CMakeFiles/tvdp_edge.dir/model_profile.cc.o.d"
  "CMakeFiles/tvdp_edge.dir/simulator.cc.o"
  "CMakeFiles/tvdp_edge.dir/simulator.cc.o.d"
  "libtvdp_edge.a"
  "libtvdp_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvdp_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
