
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/edge/crowd_learning.cc" "src/edge/CMakeFiles/tvdp_edge.dir/crowd_learning.cc.o" "gcc" "src/edge/CMakeFiles/tvdp_edge.dir/crowd_learning.cc.o.d"
  "/root/repo/src/edge/device.cc" "src/edge/CMakeFiles/tvdp_edge.dir/device.cc.o" "gcc" "src/edge/CMakeFiles/tvdp_edge.dir/device.cc.o.d"
  "/root/repo/src/edge/dispatcher.cc" "src/edge/CMakeFiles/tvdp_edge.dir/dispatcher.cc.o" "gcc" "src/edge/CMakeFiles/tvdp_edge.dir/dispatcher.cc.o.d"
  "/root/repo/src/edge/model_profile.cc" "src/edge/CMakeFiles/tvdp_edge.dir/model_profile.cc.o" "gcc" "src/edge/CMakeFiles/tvdp_edge.dir/model_profile.cc.o.d"
  "/root/repo/src/edge/simulator.cc" "src/edge/CMakeFiles/tvdp_edge.dir/simulator.cc.o" "gcc" "src/edge/CMakeFiles/tvdp_edge.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tvdp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/tvdp_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
