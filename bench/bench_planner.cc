// Query-planner benchmark: hybrid-query latency with the cost-based seed
// choice vs the worst-case predicate order, on a corpus with deliberately
// skewed selectivities (a 10-image "needle" keyword against city-wide
// spatial and temporal predicates). The planner should seed from the rare
// term and verify ~10 rows; the worst-case order seeds from the broad
// predicate and verifies the whole corpus. Emits a JSON summary after the
// human-readable table; `planner_p50_speedup` is the headline number.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "common/rng.h"
#include "platform/tvdp.h"
#include "query/engine.h"
#include "query/plan.h"
#include "query/planner.h"
#include "query/query.h"

namespace tvdp {
namespace {

using Clock = std::chrono::steady_clock;
using platform::ImageRecord;
using platform::Tvdp;

constexpr Timestamp kT0 = 1546300800;

/// Skewed corpus: every image carries broad keywords, timestamps and
/// locations spanning the whole region; exactly `needles` images carry the
/// rare "needle" keyword.
Tvdp BuildCorpus(int n_images, int needles) {
  auto created = Tvdp::Create();
  if (!created.ok()) {
    std::fprintf(stderr, "create: %s\n", created.status().ToString().c_str());
    std::exit(1);
  }
  Tvdp tvdp = std::move(created).value();
  Rng rng(23);
  int needle_every = needles > 0 ? n_images / needles : n_images + 1;
  for (int i = 0; i < n_images; ++i) {
    ImageRecord rec;
    rec.uri = "bench://planner/" + std::to_string(i);
    rec.location = geo::GeoPoint{34.00 + rng.Uniform(0, 0.1),
                                 -118.30 + rng.Uniform(0, 0.1)};
    rec.captured_at = kT0 + i * 60;
    rec.keywords = {"street", i % 2 == 0 ? "tent" : "clean"};
    if (needle_every > 0 && i % needle_every == 0) {
      rec.keywords.push_back("needle");
    }
    if (!tvdp.IngestImage(rec).ok()) std::exit(1);
  }
  return tvdp;
}

/// The skewed hybrid query: rare keyword AND city-wide spatial AND
/// near-full temporal window.
query::HybridQuery SkewedQuery(int n_images) {
  query::HybridQuery q;
  query::SpatialPredicate sp;
  sp.kind = query::SpatialPredicate::Kind::kRange;
  sp.range = geo::BoundingBox::FromCorners({33.99, -118.31}, {34.11, -118.19});
  q.spatial = sp;
  query::TextualPredicate tp;
  tp.keywords = {"needle"};
  q.textual = tp;
  q.temporal = query::TemporalPredicate{kT0, kT0 + n_images * 60};
  return q;
}

struct Percentiles {
  double p50 = 0;
  double p99 = 0;
};

Percentiles RunPlan(const Tvdp& tvdp, const query::HybridQuery& q,
                    const std::string& force_seed, int iters,
                    size_t* result_count) {
  query::PlannerOptions options;
  options.force_seed = force_seed;
  std::vector<double> ms;
  ms.reserve(static_cast<size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    auto start = Clock::now();
    auto hits = tvdp.query().Execute(q, nullptr, query::QueryBudget(), nullptr,
                                     options);
    double elapsed =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    if (!hits.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   hits.status().ToString().c_str());
      std::exit(1);
    }
    *result_count = hits->size();
    ms.push_back(elapsed);
  }
  std::sort(ms.begin(), ms.end());
  Percentiles p;
  p.p50 = ms[ms.size() / 2];
  p.p99 = ms[std::min(ms.size() - 1, ms.size() * 99 / 100)];
  return p;
}

int Run() {
  const int n_images = bench::EnvInt("TVDP_BENCH_N", 3000);
  const int needles = bench::EnvInt("TVDP_BENCH_PLANNER_NEEDLES", 10);
  const int iters = bench::EnvInt("TVDP_BENCH_PLANNER_ITERS", 60);

  std::printf("== query planner: cost-based vs worst-case predicate order ==\n");
  std::printf("corpus: %d images, %d carrying the rare keyword; %d query "
              "iterations per plan\n\n",
              n_images, needles, iters);

  Tvdp tvdp = BuildCorpus(n_images, needles);
  query::HybridQuery q = SkewedQuery(n_images);

  // What does the planner choose on its own?
  auto explain = tvdp.query().Explain(q);
  if (!explain.ok()) {
    std::fprintf(stderr, "explain: %s\n",
                 explain.status().ToString().c_str());
    return 1;
  }
  std::printf("planner-chosen seed: %s\n", explain->seed_family.c_str());

  // Candidate orders: the planner's own choice plus every forced seed; the
  // worst case is whichever forced order has the slowest p50.
  size_t count_chosen = 0;
  Percentiles chosen = RunPlan(tvdp, q, "", iters, &count_chosen);
  std::printf("%-18s %10s %10s %8s\n", "plan", "p50 ms", "p99 ms", "hits");
  std::printf("%-18s %10.3f %10.3f %8zu\n", "planner-chosen", chosen.p50,
              chosen.p99, count_chosen);

  Json orders = Json::MakeObject();
  Percentiles worst = chosen;
  std::string worst_seed = explain->seed_family;
  for (const std::string seed : {"spatial", "textual", "temporal"}) {
    size_t count = 0;
    Percentiles p = RunPlan(tvdp, q, seed, iters, &count);
    if (count != count_chosen) {
      std::fprintf(stderr,
                   "result mismatch: seed=%s returned %zu hits, planner "
                   "returned %zu\n",
                   seed.c_str(), count, count_chosen);
      return 1;
    }
    std::printf("seed=%-13s %10.3f %10.3f %8zu\n", seed.c_str(), p.p50, p.p99,
                count);
    Json o = Json::MakeObject();
    o["p50_ms"] = p.p50;
    o["p99_ms"] = p.p99;
    orders[seed] = std::move(o);
    if (p.p50 > worst.p50) {
      worst = p;
      worst_seed = seed;
    }
  }

  double speedup = chosen.p50 > 0 ? worst.p50 / chosen.p50 : 0;
  std::printf("\nworst order: seed=%s; planner p50 speedup: %.1fx\n",
              worst_seed.c_str(), speedup);

  Json summary = Json::MakeObject();
  summary["images"] = n_images;
  summary["needles"] = needles;
  summary["iters"] = iters;
  summary["planner_seed"] = explain->seed_family;
  summary["planner_p50_ms"] = chosen.p50;
  summary["planner_p99_ms"] = chosen.p99;
  summary["worst_seed"] = worst_seed;
  summary["worst_p50_ms"] = worst.p50;
  summary["worst_p99_ms"] = worst.p99;
  summary["planner_p50_speedup"] = speedup;
  summary["forced_orders"] = std::move(orders);
  std::printf("JSON: %s\n", summary.Dump().c_str());
  return 0;
}

}  // namespace
}  // namespace tvdp

int main() { return tvdp::Run(); }
