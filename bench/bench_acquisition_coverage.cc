// Sec. III feasibility experiment: iterative spatial crowdsourcing driven
// by FOV-aware coverage measurement. Reports coverage per round for both
// assignment policies, plus a passive-collection baseline (uploads at
// random street points with no campaign), demonstrating why *proactive*
// collection is needed (the paper's motivation for spatial crowdsourcing).

#include <cstdio>

#include "bench_util.h"
#include "crowd/acquisition.h"
#include "geo/polyline.h"

namespace tvdp {
namespace {

geo::BoundingBox Region() {
  return geo::BoundingBox::FromCorners({34.00, -118.30}, {34.06, -118.24});
}

std::vector<crowd::RoundStats> RunCampaign(crowd::AssignmentPolicy policy,
                                           int workers, int rounds) {
  Rng rng(77);
  auto grid = geo::CoverageGrid::Make(Region(), 8, 8, 4);
  crowd::WorkerPool pool = crowd::WorkerPool::MakeUniform(Region(), workers,
                                                          rng);
  crowd::Campaign campaign;
  campaign.id = 1;
  campaign.name = "coverage-bench";
  campaign.region = Region();
  campaign.target_coverage = 0.95;
  crowd::IterativeAcquisition::Options opts;
  opts.max_rounds = rounds;
  opts.policy = policy;
  crowd::IterativeAcquisition acq(campaign, std::move(*grid), std::move(pool),
                                  opts, 42);
  return acq.Run();
}

/// Passive baseline: the same number of captures per round, but taken at
/// uniformly random street points with random headings (no campaign).
std::vector<double> RunPassive(int captures_per_round, int rounds) {
  Rng rng(88);
  auto grid = geo::CoverageGrid::Make(Region(), 8, 8, 4);
  geo::StreetNetwork streets =
      geo::StreetNetwork::MakeGrid(Region(), 6, 6, rng);
  std::vector<double> coverage;
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < captures_per_round; ++i) {
      auto sample = streets.Sample(rng);
      auto fov = geo::FieldOfView::Make(
          sample.location,
          sample.street_bearing_deg + (rng.Bernoulli(0.5) ? 90 : -90),
          60, 120);
      if (fov.ok()) grid->AddFov(*fov);
    }
    coverage.push_back(grid->CoverageRatio());
  }
  return coverage;
}

int Run() {
  const int rounds = bench::EnvInt("TVDP_BENCH_ROUNDS", 12);
  const int workers = bench::EnvInt("TVDP_BENCH_WORKERS", 60);
  std::printf("== Sec. III: coverage-driven iterative acquisition ==\n");
  std::printf("region 8x8 cells x 4 direction sectors, %d workers\n\n",
              workers);

  auto greedy = RunCampaign(crowd::AssignmentPolicy::kGreedyNearest, workers,
                            rounds);
  auto matching = RunCampaign(crowd::AssignmentPolicy::kBatchedMatching,
                              workers, rounds);
  // Passive baseline with the matching campaign's per-round capture count.
  int per_round = matching.empty() ? 50 : matching[0].tasks_completed;
  auto passive = RunPassive(per_round, rounds);

  std::printf("%-6s %-28s %-28s %-10s\n", "round",
              "greedy (cov / tasks / km)", "matching (cov / tasks / km)",
              "passive");
  size_t max_rounds = std::max({greedy.size(), matching.size(),
                                passive.size()});
  for (size_t r = 0; r < max_rounds; ++r) {
    auto cell = [&](const std::vector<crowd::RoundStats>& h) {
      if (r >= h.size()) return std::string("      (done)                ");
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.3f / %4d / %6.1f        ",
                    h[r].coverage_after, h[r].tasks_completed,
                    h[r].travel_m / 1000.0);
      return std::string(buf);
    };
    std::printf("%-6zu %-28s %-28s", r + 1, cell(greedy).c_str(),
                cell(matching).c_str());
    if (r < passive.size()) std::printf("%8.3f", passive[r]);
    std::printf("\n");
  }

  double campaign_final = matching.empty() ? 0 : matching.back().coverage_after;
  double passive_final = passive.empty() ? 0 : passive.back();
  std::printf(
      "\nshape check: campaign coverage (%.3f) > passive coverage (%.3f) "
      "at equal capture budget: %s\n",
      campaign_final, passive_final,
      campaign_final > passive_final ? "HOLDS" : "VIOLATED");
  return 0;
}

}  // namespace
}  // namespace tvdp

int main() { return tvdp::Run(); }
