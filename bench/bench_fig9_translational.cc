// Reproduces paper Fig. 9 / Sec. VII-B: translational data reuse.
//
// Pipeline: (1) LASAN-style ingest of a labelled synthetic corpus;
// (2) a cleanliness classifier (SVM on fine-tuned CNN features) annotates
// every image — augmented knowledge written back to the database;
// (3) a *different* stakeholder (the Homeless Coordinator) runs a
// homeless-counting study purely from the stored encampment annotations —
// zero new learning — and clusters tent locations over a city grid;
// (4) a second translational task (graffiti detection) reuses the same
// corpus and the same stored CNN features.
//
// Reported: annotation precision/recall for "encampment", the counting
// accuracy vs ground truth, per-cell cluster counts, and the wall time of
// the translational query (milliseconds, not a retraining job).

#include <chrono>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "ml/cross_validation.h"
#include "ml/linear_svm.h"
#include "platform/dataset_gen.h"
#include "platform/tvdp.h"

namespace tvdp {
namespace {

constexpr char kCleanliness[] = "street_cleanliness";
constexpr char kGraffitiTask[] = "graffiti_detection";

int Run() {
  const int n = bench::EnvInt("TVDP_BENCH_N", 1000);
  std::printf("== Fig. 9 / Sec. VII-B reproduction: translational reuse ==\n");

  // --- Stage 1: acquisition (LASAN trucks) ---
  platform::DatasetConfig config;
  config.count = n;
  config.include_graffiti = true;  // graffiti occurs in the wild corpus
  auto dataset = platform::GenerateStreetDataset(config);

  auto created = platform::Tvdp::Create();
  if (!created.ok()) return 1;
  platform::Tvdp tvdp = std::move(created).value();

  std::vector<std::string> cleanliness_labels = bench::CleanlinessClassNames();
  if (!tvdp.RegisterClassification(kCleanliness, cleanliness_labels).ok() ||
      !tvdp.RegisterClassification(kGraffitiTask, {"no_graffiti", "graffiti"})
           .ok()) {
    return 1;
  }

  // Ingest all images; remember ground truth separately (the platform only
  // sees pixels + metadata).
  std::vector<int64_t> ids;
  std::vector<image::SceneClass> truth;
  for (const auto& gi : dataset) {
    auto id = tvdp.IngestImage(gi.record);
    if (!id.ok()) return 1;
    ids.push_back(*id);
    truth.push_back(gi.label);
  }
  std::printf("ingested %zu geo-tagged images\n", ids.size());

  // --- Stage 2: collaborative analysis (USC researchers) ---
  // Train on a 60% labelled subset (the "shared dataset prepared as a
  // one-time job"), then machine-annotate the remaining 40%.
  size_t train_end = ids.size() * 3 / 5;
  std::vector<image::Image> train_images;
  std::vector<int> train_labels;
  for (size_t i = 0; i < train_end; ++i) {
    // Graffiti images are annotated with their dominant class for the
    // 5-class cleanliness model; map graffiti -> clean street surface.
    int label = truth[i] == image::SceneClass::kGraffiti
                    ? 0
                    : static_cast<int>(truth[i]);
    train_images.push_back(dataset[i].pixels);
    train_labels.push_back(label);
  }
  vision::CnnFeatureExtractor cnn;
  if (!cnn.Fit(train_images, train_labels).ok()) return 1;

  ml::Dataset train;
  for (size_t i = 0; i < train_end; ++i) {
    auto f = cnn.Extract(dataset[i].pixels);
    if (!f.ok()) return 1;
    if (!tvdp.StoreFeature(ids[i], "cnn", *f).ok()) return 1;
    train.Add(std::move(*f), train_labels[i]).ok();
  }
  auto moments = train.ComputeMoments();
  train.Standardize(moments);
  ml::LinearSvmClassifier svm;
  if (!svm.Train(train).ok()) return 1;

  auto t_annotate0 = std::chrono::steady_clock::now();
  int annotated = 0;
  for (size_t i = train_end; i < ids.size(); ++i) {
    auto f = cnn.Extract(dataset[i].pixels);
    if (!f.ok()) return 1;
    if (!tvdp.StoreFeature(ids[i], "cnn", *f).ok()) return 1;
    ml::FeatureVector std_f = *f;
    for (size_t d = 0; d < std_f.size(); ++d) {
      double sd = moments.stddev[d] > 1e-12 ? moments.stddev[d] : 1.0;
      std_f[d] = (std_f[d] - moments.mean[d]) / sd;
    }
    std::vector<double> proba = svm.PredictProba(std_f);
    int pred = svm.Predict(std_f);
    platform::AnnotationRecord ann;
    ann.classification = kCleanliness;
    ann.label = cleanliness_labels[static_cast<size_t>(pred)];
    ann.confidence = proba[static_cast<size_t>(pred)];
    ann.machine = true;
    if (!tvdp.AnnotateImage(ids[i], ann).ok()) return 1;
    ++annotated;
  }
  auto t_annotate1 = std::chrono::steady_clock::now();
  std::printf("machine-annotated %d unlabelled images (%.1fs)\n", annotated,
              std::chrono::duration<double>(t_annotate1 - t_annotate0).count());

  // --- Stage 3: translational reuse — homeless counting ---
  auto t_query0 = std::chrono::steady_clock::now();
  auto tents = tvdp.LocationsWithLabel(kCleanliness, "encampment", 0.0);
  auto t_query1 = std::chrono::steady_clock::now();
  if (!tents.ok()) return 1;
  double query_ms =
      std::chrono::duration<double, std::milli>(t_query1 - t_query0).count();

  // Ground truth encampments among the machine-annotated slice.
  int truth_encampments = 0, predicted_tp = 0;
  for (size_t i = train_end; i < ids.size(); ++i) {
    bool is_tent = truth[i] == image::SceneClass::kEncampment;
    truth_encampments += is_tent;
    auto label = tvdp.GetLabel(ids[i], kCleanliness);
    if (label.ok() && *label == "encampment" && is_tent) ++predicted_tp;
  }
  std::printf(
      "\nhomeless study (no new training): %zu encampment locations "
      "retrieved in %.2f ms\n",
      tents->size(), query_ms);
  std::printf("ground-truth encampments in annotated slice: %d, "
              "recalled: %d (recall %.2f)\n",
              truth_encampments, predicted_tp,
              truth_encampments ? static_cast<double>(predicted_tp) /
                                      truth_encampments
                                : 0.0);

  // Cluster tent locations over a 4x4 city grid (the "clustering of tents
  // in Los Angeles" study).
  std::map<std::pair<int, int>, int> cells;
  for (const auto& p : *tents) {
    int row = static_cast<int>((p.lat - config.region.min_lat) /
                               (config.region.max_lat - config.region.min_lat) *
                               4);
    int col = static_cast<int>((p.lon - config.region.min_lon) /
                               (config.region.max_lon - config.region.min_lon) *
                               4);
    ++cells[{std::min(std::max(row, 0), 3), std::min(std::max(col, 0), 3)}];
  }
  std::printf("\ntent clusters over a 4x4 grid (hotspots expected):\n");
  for (int r = 3; r >= 0; --r) {
    std::printf("  ");
    for (int c = 0; c < 4; ++c) {
      auto it = cells.find({r, c});
      std::printf("%5d", it == cells.end() ? 0 : it->second);
    }
    std::printf("\n");
  }

  // --- Stage 4: second translational task — graffiti, reusing stored
  // features (no new feature extraction). ---
  ml::Dataset graffiti_train;
  for (size_t i = 0; i < train_end; ++i) {
    auto f = tvdp.GetFeature(ids[i], "cnn");  // reuse stored features
    if (!f.ok()) return 1;
    graffiti_train
        .Add(std::move(*f),
             truth[i] == image::SceneClass::kGraffiti ? 1 : 0)
        .ok();
  }
  auto g_moments = graffiti_train.ComputeMoments();
  graffiti_train.Standardize(g_moments);
  ml::LinearSvmClassifier graffiti_svm;
  if (!graffiti_svm.Train(graffiti_train).ok()) return 1;
  ml::ConfusionMatrix graffiti_cm(2);
  for (size_t i = train_end; i < ids.size(); ++i) {
    auto f = tvdp.GetFeature(ids[i], "cnn");
    if (!f.ok()) return 1;
    ml::FeatureVector std_f = std::move(*f);
    for (size_t d = 0; d < std_f.size(); ++d) {
      double sd = g_moments.stddev[d] > 1e-12 ? g_moments.stddev[d] : 1.0;
      std_f[d] = (std_f[d] - g_moments.mean[d]) / sd;
    }
    graffiti_cm.Add(truth[i] == image::SceneClass::kGraffiti ? 1 : 0,
                    graffiti_svm.Predict(std_f));
  }
  std::printf(
      "\nsecond translational task (graffiti) from the SAME stored "
      "features: F1(graffiti)=%.3f acc=%.3f\n",
      graffiti_cm.F1(1), graffiti_cm.Accuracy());
  std::printf(
      "shape check: translational query is milliseconds, not a retraining "
      "job: %s\n",
      query_ms < 1000.0 ? "HOLDS" : "VIOLATED");
  return 0;
}

}  // namespace
}  // namespace tvdp

int main() { return tvdp::Run(); }
