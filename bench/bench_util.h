#ifndef TVDP_BENCH_BENCH_UTIL_H_
#define TVDP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "platform/dataset_gen.h"
#include "vision/bow.h"
#include "vision/cnn.h"
#include "vision/color_histogram.h"
#include "vision/feature.h"

namespace tvdp::bench {

/// Reads an integer environment override, e.g. TVDP_BENCH_N=5000 to run the
/// classifier benches closer to the paper's 22K-image scale.
inline int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  int parsed = std::atoi(v);
  return parsed > 0 ? parsed : fallback;
}

/// The shared Fig. 6 / Fig. 7 corpus: a synthetic LASAN-style dataset split
/// into train/test image lists (80/20 stratified by interleaving).
struct Corpus {
  std::vector<image::Image> train_images;
  std::vector<int> train_labels;
  std::vector<image::Image> test_images;
  std::vector<int> test_labels;
};

inline Corpus MakeCleanlinessCorpus(int total_images, uint64_t seed = 2019) {
  platform::DatasetConfig config;
  config.count = total_images;
  config.seed = seed;
  Corpus corpus;
  int i = 0;
  for (auto& gi : platform::GenerateStreetDataset(config)) {
    if (i++ % 5 == 4) {
      corpus.test_images.push_back(std::move(gi.pixels));
      corpus.test_labels.push_back(static_cast<int>(gi.label));
    } else {
      corpus.train_images.push_back(std::move(gi.pixels));
      corpus.train_labels.push_back(static_cast<int>(gi.label));
    }
  }
  return corpus;
}

/// Extracts train/test ml::Datasets with the given extractor (which must
/// already be fitted if trainable).
inline bool ExtractDatasets(const vision::FeatureExtractor& extractor,
                            const Corpus& corpus, ml::Dataset* train,
                            ml::Dataset* test) {
  for (size_t i = 0; i < corpus.train_images.size(); ++i) {
    auto f = extractor.Extract(corpus.train_images[i]);
    if (!f.ok() || !train->Add(std::move(*f), corpus.train_labels[i]).ok()) {
      std::fprintf(stderr, "feature extraction failed: %s\n",
                   f.ok() ? "dataset add" : f.status().ToString().c_str());
      return false;
    }
  }
  for (size_t i = 0; i < corpus.test_images.size(); ++i) {
    auto f = extractor.Extract(corpus.test_images[i]);
    if (!f.ok() || !test->Add(std::move(*f), corpus.test_labels[i]).ok()) {
      return false;
    }
  }
  return true;
}

/// Builds the three paper feature extractors, fitting the trainable ones on
/// the training images only (no test leakage). Returned pointers are owned
/// by the out-params.
struct FeaturePipelines {
  vision::ColorHistogramExtractor color;
  vision::SiftBowExtractor sift_bow;
  vision::CnnFeatureExtractor cnn;
  bool ok = false;
};

inline FeaturePipelines FitFeaturePipelines(const Corpus& corpus) {
  FeaturePipelines p;
  if (!p.sift_bow.Fit(corpus.train_images, corpus.train_labels).ok()) {
    std::fprintf(stderr, "SIFT-BoW dictionary fit failed\n");
    return p;
  }
  if (!p.cnn.Fit(corpus.train_images, corpus.train_labels).ok()) {
    std::fprintf(stderr, "CNN fine-tuning failed\n");
    return p;
  }
  p.ok = true;
  return p;
}

/// The five cleanliness class display names, in label order.
inline std::vector<std::string> CleanlinessClassNames() {
  std::vector<std::string> names;
  for (int c = 0; c < image::kNumCleanlinessClasses; ++c) {
    names.push_back(
        image::SceneClassName(static_cast<image::SceneClass>(c)));
  }
  return names;
}

}  // namespace tvdp::bench

#endif  // TVDP_BENCH_BENCH_UTIL_H_
