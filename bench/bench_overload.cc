// Overload benchmark: goodput and tail latency of the API surface as
// offered load climbs past capacity, with the admission controller on vs
// off. Open-loop paced clients issue hybrid searches with a per-request
// deadline; a request counts toward goodput only if it returns "ok" within
// that deadline. Without admission control every request is dispatched,
// the engine oversubscribes the cores, latency inflates past the deadline
// and goodput collapses; with the controller the excess is shed or
// degraded quickly and goodput holds near capacity. Emits a JSON summary
// (one object) after the human-readable table, in the style of
// bench_concurrent_queries.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/context.h"
#include "common/json.h"
#include "common/rng.h"
#include "geo/geo_point.h"
#include "ml/dataset.h"
#include "platform/admission.h"
#include "platform/api.h"
#include "platform/model_registry.h"
#include "platform/tvdp.h"

namespace tvdp {
namespace {

using Clock = std::chrono::steady_clock;
using platform::AdmissionController;
using platform::AdmissionOptions;
using platform::ApiService;
using platform::ImageRecord;
using platform::ModelRegistry;
using platform::Tvdp;

constexpr size_t kFeatureDim = 16;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Tvdp BuildCorpus(int n) {
  auto created = Tvdp::Create();
  if (!created.ok()) std::exit(1);
  Tvdp tvdp = std::move(created).value();
  Rng rng(2019);
  for (int i = 0; i < n; ++i) {
    ImageRecord rec;
    rec.uri = "img" + std::to_string(i);
    rec.location = geo::GeoPoint{34.00 + (i % 64) * 0.0015,
                                 -118.30 + ((i / 64) % 64) * 0.0015};
    rec.captured_at = 1546300800 + i * 60;
    rec.keywords = {"street", i % 2 == 0 ? "tent" : "clean"};
    auto id = tvdp.IngestImage(rec);
    if (!id.ok()) std::exit(1);
    ml::FeatureVector feat(kFeatureDim, 0.1);
    feat[static_cast<size_t>(i % 4)] = 1.0;
    for (double& v : feat) v += rng.Normal(0, 0.05);
    if (!tvdp.StoreFeature(*id, "cnn", feat).ok()) std::exit(1);
  }
  return tvdp;
}

/// A deliberately expensive hybrid: a visual *threshold* wide enough to
/// match most of the corpus (the LSH range search scans and ranks
/// thousands of candidates) verified against a spatial box. Service time
/// scales with the corpus, which is what makes overload measurable.
Json SearchRequest(int salt) {
  Json req = Json::MakeObject();
  Json bbox = Json::MakeArray();
  bbox.Append(34.0);
  bbox.Append(-118.3);
  bbox.Append(34.1);
  bbox.Append(-118.2);
  req["bbox"] = std::move(bbox);
  Json feature = Json::MakeArray();
  for (size_t d = 0; d < kFeatureDim; ++d) {
    feature.Append(d == static_cast<size_t>(salt % 4) ? 1.0 : 0.1);
  }
  req["feature_kind"] = "cnn";
  req["feature"] = std::move(feature);
  // Catches the probe's own cluster (~a quarter of the corpus): enough
  // candidate traffic to give the query a real, corpus-proportional cost
  // without degenerating into a full scan.
  req["threshold"] = 0.8;
  return req;
}

struct CellResult {
  double offered_qps = 0;
  double goodput_qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  long ok = 0;
  long degraded = 0;
  long shed = 0;
  long deadline_missed = 0;
  long other_error = 0;
  long issued = 0;
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, v.size() - 1);
  return v[lo] + (v[hi] - v[lo]) * (rank - static_cast<double>(lo));
}

/// Open-loop load generation: each of `threads` clients issues requests on
/// an absolute schedule at offered_qps/threads. Latency and the deadline
/// are accounted from the *scheduled* arrival time, not the issue time —
/// a client that falls behind carries that lateness into each request's
/// budget (the standard coordinated-omission correction; measuring from
/// issue time would hide exactly the queueing delay this benchmark is
/// about). Arrivals whose whole budget elapsed before the client could
/// issue them are counted as missed without a round trip, the way a real
/// caller's timeout fires client-side.
CellResult RunCell(ApiService& api, const std::string& key, double offered_qps,
                   double deadline_ms, double duration_s, int threads) {
  CellResult cell;
  cell.offered_qps = offered_qps;
  std::mutex mu;
  std::vector<double> ok_latencies;
  std::vector<std::thread> clients;
  auto start = Clock::now();
  auto end = start + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(duration_s));
  std::atomic<long> ok{0}, degraded{0}, shed{0}, missed{0}, other{0},
      issued{0};
  double period_s = static_cast<double>(threads) / offered_qps;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      std::vector<double> local_lat;
      auto next = start + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(
                                  period_s * t / threads));
      int salt = t * 131;
      for (;;) {
        auto scheduled = next;
        if (scheduled >= end) break;
        next += std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(period_s));
        if (scheduled > Clock::now()) std::this_thread::sleep_until(scheduled);
        issued.fetch_add(1);
        double lateness_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - scheduled)
                .count();
        if (lateness_ms >= deadline_ms) {
          missed.fetch_add(1);  // budget burned before the client could send
          continue;
        }
        RequestContext ctx =
            RequestContext::WithDeadlineMs(deadline_ms - lateness_ms);
        Json env = api.HandleEnvelope(key, "search_datasets",
                                      SearchRequest(salt++), ctx);
        double lat_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - scheduled)
                .count();
        if (env["status"].AsString() == "ok") {
          if (lat_ms <= deadline_ms) {
            ok.fetch_add(1);
            local_lat.push_back(lat_ms);
            if (env.Has("degraded")) degraded.fetch_add(1);
          } else {
            missed.fetch_add(1);  // finished, but past its deadline
          }
        } else {
          const std::string code = env["code"].AsString();
          if (code == "ResourceExhausted") {
            shed.fetch_add(1);
          } else if (code == "DeadlineExceeded" || code == "Cancelled") {
            missed.fetch_add(1);
          } else {
            other.fetch_add(1);
          }
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      ok_latencies.insert(ok_latencies.end(), local_lat.begin(),
                          local_lat.end());
    });
  }
  for (auto& c : clients) c.join();
  double secs = SecondsSince(start);
  cell.ok = ok.load();
  cell.degraded = degraded.load();
  cell.shed = shed.load();
  cell.deadline_missed = missed.load();
  cell.other_error = other.load();
  cell.issued = issued.load();
  cell.goodput_qps = static_cast<double>(cell.ok) / secs;
  cell.p50_ms = Percentile(ok_latencies, 50);
  cell.p99_ms = Percentile(ok_latencies, 99);
  return cell;
}

Json CellJson(const CellResult& cell) {
  Json j = Json::MakeObject();
  j["offered_qps"] = cell.offered_qps;
  j["goodput_qps"] = cell.goodput_qps;
  j["p50_ms"] = cell.p50_ms;
  j["p99_ms"] = cell.p99_ms;
  j["ok"] = static_cast<int64_t>(cell.ok);
  j["degraded"] = static_cast<int64_t>(cell.degraded);
  j["shed"] = static_cast<int64_t>(cell.shed);
  j["deadline_missed"] = static_cast<int64_t>(cell.deadline_missed);
  j["other_error"] = static_cast<int64_t>(cell.other_error);
  j["issued"] = static_cast<int64_t>(cell.issued);
  return j;
}

int Run() {
  const int n_images = bench::EnvInt("TVDP_BENCH_OVERLOAD_IMAGES", 1500);
  const int clients = bench::EnvInt("TVDP_BENCH_OVERLOAD_CLIENTS", 16);
  const int duration_ms = bench::EnvInt("TVDP_BENCH_OVERLOAD_CELL_MS", 1500);
  const int deadline_ms = bench::EnvInt("TVDP_BENCH_OVERLOAD_DEADLINE_MS", 25);
  const double duration_s = duration_ms / 1000.0;

  Tvdp tvdp = BuildCorpus(n_images);
  ModelRegistry registry;

  std::printf("== overload: goodput vs offered load, admission on/off ==\n");
  std::printf("corpus: %d images; %d open-loop clients; deadline %dms; "
              "%dms per cell; hardware_concurrency=%u\n\n",
              n_images, clients, deadline_ms, duration_ms,
              std::thread::hardware_concurrency());

  // Calibrate capacity with one closed-loop client, no deadline pressure.
  double base_qps;
  {
    ApiService api(&tvdp, &registry);
    std::string key = api.CreateApiKey("bench");
    auto start = Clock::now();
    int done = 0;
    while (SecondsSince(start) < 0.5) {
      Json env = api.HandleEnvelope(key, "search_datasets",
                                    SearchRequest(done));
      if (env["status"].AsString() != "ok") {
        std::fprintf(stderr, "calibration query failed: %s\n",
                     env.Dump().c_str());
        return 1;
      }
      ++done;
    }
    base_qps = done / SecondsSince(start);
  }
  std::printf("calibrated capacity: %.0f qps (single closed-loop client)\n\n",
              base_qps);

  Json summary = Json::MakeObject();
  summary["images"] = n_images;
  summary["clients"] = clients;
  summary["deadline_ms"] = deadline_ms;
  summary["base_qps"] = base_qps;
  summary["hardware_concurrency"] =
      static_cast<int64_t>(std::thread::hardware_concurrency());

  const std::vector<double> multipliers = {0.5, 1, 2, 4, 8};
  for (bool controlled : {false, true}) {
    // The controller sizes its queues to roughly one deadline's worth of
    // work: waiters beyond that would be served stale anyway. The wait
    // bound is a fraction of the deadline — a waiter that has already
    // burned a third of its budget queueing is better shed (the client
    // retries or fails fast) than served stale, and degradation starts as
    // soon as any backlog forms.
    AdmissionOptions opt;
    opt.max_concurrent = 2;
    opt.max_queue_interactive =
        std::max(4, static_cast<int>(base_qps * deadline_ms / 1000.0 / 4));
    opt.max_queue_batch = 8;
    opt.max_queue_wait_ms = deadline_ms / 3.0;
    opt.degrade_occupancy = 0.1;
    // Hold degraded plans for one deadline after the last backlog so
    // full-fidelity work does not flap back in between overload bursts.
    opt.degraded_hold_ms = deadline_ms;
    AdmissionController controller(opt);
    ApiService api(&tvdp, &registry,
                   controlled ? &controller : nullptr);
    std::string key = api.CreateApiKey("bench");

    std::printf("admission controller: %s\n", controlled ? "ON" : "OFF");
    std::printf("%-10s %12s %12s %9s %9s %8s %8s %8s\n", "load", "offered",
                "goodput", "p50 ms", "p99 ms", "ok", "shed", "missed");
    Json points = Json::MakeArray();
    double peak = 0, goodput_4x = 0;
    for (double mult : multipliers) {
      CellResult cell = RunCell(api, key, mult * base_qps, deadline_ms,
                                duration_s, clients);
      peak = std::max(peak, cell.goodput_qps);
      if (mult == 4) goodput_4x = cell.goodput_qps;
      std::printf("%-9.1fx %12.0f %12.0f %9.2f %9.2f %8ld %8ld %8ld\n", mult,
                  cell.offered_qps, cell.goodput_qps, cell.p50_ms, cell.p99_ms,
                  cell.ok, cell.shed, cell.deadline_missed);
      Json point = CellJson(cell);
      point["load_multiplier"] = mult;
      points.Append(std::move(point));
    }
    const std::string mode = controlled ? "controller_on" : "controller_off";
    summary[mode] = std::move(points);
    summary[mode + "_peak_goodput"] = peak;
    summary[mode + "_goodput_4x"] = goodput_4x;
    summary[mode + "_goodput_4x_vs_peak"] = peak > 0 ? goodput_4x / peak : 0;
    if (controlled) {
      Json stats = api.ServerStatsJson();
      std::printf("controller stats: %s\n", stats.Dump().c_str());
      summary["controller_stats"] = std::move(stats);
    }
    std::printf("\n");
  }

  std::printf("JSON: %s\n", summary.Dump().c_str());
  return 0;
}

}  // namespace
}  // namespace tvdp

int main() { return tvdp::Run(); }
