// Sharding benchmark: capacity scaling and fault tolerance of the
// scatter-gather serving layer.
//
// Part A (scaling): the same corpus behind 1/2/4/8 shards over a 2x4
// grid, probed with cell-sized range queries. Region pruning routes each
// query to the one shard owning its cell, so the corpus (and the engine
// lock) a query touches shrinks as 1/N — reported as
// `probed_images_per_query` and its near-linear `capacity_scale_vs_1`.
// That is the capacity model: N isolated engines serve N disjoint-cell
// queries independently, so aggregate capacity scales with min(N, cores).
// Single-query wall-clock (`speedup_vs_1`) improves more modestly because
// the within-shard spatial index already confines probe cost to the cell
// population at any shard count.
//
// Part B (fault tolerance): N = 4 shards under a 60 ms request deadline
// with one faulty shard — a straggler that hangs 20% of its probes for
// longer than the whole deadline, and a dead shard. The resilient
// configuration (hedged probes, per-shard deadline splitting, circuit
// breakers, partial results) keeps success at 100% with explicit
// (N-1)/N coverage and p99 bounded by the per-shard budget; the naive
// configuration (no hedging, no breakers, full-coverage-required, no
// deadline split) collapses into timeouts.
//
// Emits a human-readable table, then writes the JSON summary to
// BENCH_sharding.json (override with TVDP_BENCH_SHARDING_OUT) and echoes
// it on stdout.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/context.h"
#include "common/json.h"
#include "common/rng.h"
#include "geo/bbox.h"
#include "geo/geo_point.h"
#include "platform/sharding.h"
#include "query/query.h"

namespace tvdp {
namespace {

using platform::ImageRecord;
using platform::ShardFaultProfile;
using platform::ShardManager;
using platform::ShardManagerOptions;

using Clock = std::chrono::steady_clock;

constexpr int kGridRows = 2;
constexpr int kGridCols = 4;
constexpr double kLat0 = 34.00, kLat1 = 34.08;
constexpr double kLon0 = -118.30, kLon1 = -118.14;

geo::BoundingBox Region() {
  return geo::BoundingBox::FromCorners({kLat0, kLon0}, {kLat1, kLon1});
}

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double Percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(q * static_cast<double>(v.size() - 1));
  return v[idx];
}

std::unique_ptr<ShardManager> BuildFleet(int shards, int n_images,
                                         ShardManagerOptions opts) {
  opts.shard_count = shards;
  opts.grid_rows = kGridRows;
  opts.grid_cols = kGridCols;
  opts.region = Region();
  // Range partitioning: contiguous cell blocks per shard, so each shard's
  // prune region is tight. (The round-robin default interleaves cells,
  // which makes bounding-box unions overlap across shards.)
  const int cells = kGridRows * kGridCols;
  for (int cell = 0; cell < cells; ++cell) {
    opts.cell_assignments.emplace_back(cell, cell * shards / cells);
  }
  auto m = ShardManager::Create(std::move(opts));
  if (!m.ok()) {
    std::fprintf(stderr, "fleet: %s\n", m.status().ToString().c_str());
    std::exit(1);
  }
  Rng rng(2019);
  for (int i = 0; i < n_images; ++i) {
    ImageRecord rec;
    rec.uri = "img" + std::to_string(i);
    rec.location = geo::GeoPoint{rng.Uniform(kLat0, kLat1),
                                 rng.Uniform(kLon0, kLon1)};
    rec.captured_at = 1546300800 + i * 60;
    rec.keywords = {"city"};
    if (i % 7 == 0) rec.keywords.push_back("market");
    auto id = (*m)->IngestImage(rec);
    if (!id.ok()) std::exit(1);
  }
  return std::move(m).value();
}

/// A cell-sized range + keyword query over a random grid cell.
query::HybridQuery CellQuery(Rng& rng) {
  int row = static_cast<int>(rng.UniformInt(0, kGridRows - 1));
  int col = static_cast<int>(rng.UniformInt(0, kGridCols - 1));
  const double dlat = (kLat1 - kLat0) / kGridRows;
  const double dlon = (kLon1 - kLon0) / kGridCols;
  query::HybridQuery q;
  query::SpatialPredicate sp;
  sp.kind = query::SpatialPredicate::Kind::kRange;
  // Shrink the box slightly so it stays inside one cell.
  sp.range = geo::BoundingBox::FromCorners(
      {kLat0 + row * dlat + 0.1 * dlat, kLon0 + col * dlon + 0.1 * dlon},
      {kLat0 + (row + 1) * dlat - 0.1 * dlat,
       kLon0 + (col + 1) * dlon - 0.1 * dlon});
  q.spatial = sp;
  query::TextualPredicate tp;
  tp.keywords = {"city"};
  q.textual = tp;
  return q;
}

Json RunScaling(int n_images, int n_queries) {
  std::printf("--- capacity scaling (partition pruning), %d images ---\n",
              n_images);
  std::printf("%8s %10s %10s %10s %10s %12s %10s\n", "shards", "qps",
              "p50_ms", "p99_ms", "speedup", "probed_imgs", "capacity");
  Json rows = Json::MakeArray();
  double base_qps = 0, base_probed = 0;
  for (int shards : {1, 2, 4, 8}) {
    auto fleet = BuildFleet(shards, n_images, ShardManagerOptions());
    std::vector<double> shard_images(static_cast<size_t>(shards), 0);
    for (int s = 0; s < shards; ++s) {
      shard_images[static_cast<size_t>(s)] =
          fleet->shard(s) ? static_cast<double>(fleet->shard(s)->image_count())
                          : 0;
    }
    Rng rng(7);
    std::vector<double> lat;
    lat.reserve(static_cast<size_t>(n_queries));
    double probed_images = 0;
    auto start = Clock::now();
    for (int i = 0; i < n_queries; ++i) {
      query::HybridQuery q = CellQuery(rng);
      auto t0 = Clock::now();
      auto r = fleet->ExecuteQuery(q);
      lat.push_back(ElapsedMs(t0));
      if (!r.ok() || !r->coverage.complete()) {
        std::fprintf(stderr, "scaling query failed\n");
        std::exit(1);
      }
      for (int s : r->coverage.ProbedShards()) {
        probed_images += shard_images[static_cast<size_t>(s)];
      }
    }
    double qps = 1000.0 * n_queries / ElapsedMs(start);
    probed_images /= n_queries;
    if (shards == 1) {
      base_qps = qps;
      base_probed = probed_images;
    }
    double speedup = qps / base_qps;
    double capacity = base_probed / probed_images;
    std::printf("%8d %10.1f %10.3f %10.3f %10.2f %12.0f %9.2fx\n", shards,
                qps, Percentile(lat, 0.50), Percentile(lat, 0.99), speedup,
                probed_images, capacity);
    Json row = Json::MakeObject();
    row["shards"] = Json(shards);
    row["queries"] = Json(n_queries);
    row["qps"] = Json(qps);
    row["p50_ms"] = Json(Percentile(lat, 0.50));
    row["p99_ms"] = Json(Percentile(lat, 0.99));
    row["speedup_vs_1"] = Json(speedup);
    row["probed_images_per_query"] = Json(probed_images);
    row["capacity_scale_vs_1"] = Json(capacity);
    rows.Append(std::move(row));
  }
  return rows;
}

struct FaultCell {
  std::string scenario;  // "hang_straggler" | "dead_shard"
  std::string config;    // "resilient" | "naive"
  int queries = 0;
  int succeeded = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double avg_coverage = 0;  // answering shards / total shards
};

FaultCell RunFaultCell(const std::string& scenario, const std::string& config,
                       int n_images, int n_queries, double deadline_ms) {
  ShardManagerOptions opts;
  const bool resilient = config == "resilient";
  if (!resilient) {
    // The naive configuration: one probe per shard with the full request
    // deadline, no breakers, and all-or-nothing gathering.
    opts.gather.hedging = false;
    opts.gather.per_shard_deadline_fraction = 1.0;
    opts.gather.require_full_coverage = true;
    opts.breakers = false;
  }
  auto fleet = BuildFleet(4, n_images, std::move(opts));
  if (scenario == "hang_straggler") {
    ShardFaultProfile faults;
    faults.hang_prob = 0.2;             // 20% of probes hang...
    faults.hang_ms = 4 * deadline_ms;   // ...for far longer than the deadline
    if (!fleet->SetShardFaults(0, faults).ok()) std::exit(1);
  } else if (!fleet->KillShard(0).ok()) {
    std::exit(1);
  }

  query::HybridQuery q;  // broad: every shard participates
  query::TextualPredicate tp;
  tp.keywords = {"market"};
  q.textual = tp;

  FaultCell cell;
  cell.scenario = scenario;
  cell.config = config;
  cell.queries = n_queries;
  std::vector<double> lat;
  double coverage_sum = 0;
  for (int i = 0; i < n_queries; ++i) {
    RequestContext ctx = RequestContext::WithDeadlineMs(deadline_ms);
    auto t0 = Clock::now();
    auto r = fleet->ExecuteQuery(q, &ctx);
    lat.push_back(ElapsedMs(t0));
    if (r.ok()) {
      ++cell.succeeded;
      coverage_sum += static_cast<double>(r->coverage.ProbedShards().size()) /
                      static_cast<double>(r->coverage.total_shards);
    }
  }
  cell.p50_ms = Percentile(lat, 0.50);
  cell.p99_ms = Percentile(lat, 0.99);
  cell.avg_coverage = cell.succeeded ? coverage_sum / cell.succeeded : 0;
  return cell;
}

Json RunFaults(int n_images, int n_queries, double deadline_ms) {
  std::printf(
      "--- fault tolerance, 4 shards, %.0f ms deadline, %d queries ---\n",
      deadline_ms, n_queries);
  std::printf("%16s %10s %9s %9s %9s %9s\n", "scenario", "config",
              "success", "p50_ms", "p99_ms", "coverage");
  Json rows = Json::MakeArray();
  for (const char* scenario : {"hang_straggler", "dead_shard"}) {
    for (const char* config : {"resilient", "naive"}) {
      FaultCell c =
          RunFaultCell(scenario, config, n_images, n_queries, deadline_ms);
      double success = static_cast<double>(c.succeeded) / c.queries;
      std::printf("%16s %10s %8.1f%% %9.2f %9.2f %9.2f\n", c.scenario.c_str(),
                  c.config.c_str(), 100.0 * success, c.p50_ms, c.p99_ms,
                  c.avg_coverage);
      Json row = Json::MakeObject();
      row["scenario"] = Json(c.scenario);
      row["config"] = Json(c.config);
      row["queries"] = Json(c.queries);
      row["success_rate"] = Json(success);
      row["p50_ms"] = Json(c.p50_ms);
      row["p99_ms"] = Json(c.p99_ms);
      row["avg_coverage"] = Json(c.avg_coverage);
      rows.Append(std::move(row));
    }
  }
  return rows;
}

/// Part C: a live cell migration under sustained query load. The broad
/// keyword query touches every shard — including both migration endpoints —
/// in all three windows (before / during / after the rebalance). Success
/// must hold at 100% throughout: during the migration both endpoints serve
/// the moving rows and the merge dedups, so coverage stays complete too.
Json RunRebalance(int n_images, int n_queries) {
  std::printf("--- rebalance while serving, 4 shards ---\n");
  std::printf("%8s %9s %9s %10s %9s %9s\n", "phase", "queries", "success",
              "complete", "p50_ms", "p99_ms");
  auto fleet = BuildFleet(4, n_images, ShardManagerOptions());

  query::HybridQuery q;
  query::TextualPredicate tp;
  tp.keywords = {"city"};
  q.textual = tp;

  Json rows = Json::MakeArray();
  auto run_phase = [&](const std::string& phase, int min_queries,
                       const std::function<bool()>& busy) {
    int n = 0, ok = 0, complete = 0;
    std::vector<double> lat;
    while (n < min_queries || (busy && busy())) {
      auto t0 = Clock::now();
      auto r = fleet->ExecuteQuery(q);
      lat.push_back(ElapsedMs(t0));
      ++n;
      if (r.ok()) {
        ++ok;
        if (r->coverage.complete()) ++complete;
      }
    }
    double success = static_cast<double>(ok) / n;
    double complete_rate = static_cast<double>(complete) / n;
    std::printf("%8s %9d %8.1f%% %9.1f%% %9.2f %9.2f\n", phase.c_str(), n,
                100.0 * success, 100.0 * complete_rate,
                Percentile(lat, 0.50), Percentile(lat, 0.99));
    Json row = Json::MakeObject();
    row["phase"] = Json(phase);
    row["queries"] = Json(n);
    row["success_rate"] = Json(success);
    row["coverage_complete_rate"] = Json(complete_rate);
    row["p50_ms"] = Json(Percentile(lat, 0.50));
    row["p99_ms"] = Json(Percentile(lat, 0.99));
    rows.Append(std::move(row));
    return success;
  };

  run_phase("before", n_queries, nullptr);

  // Move shard 0's cells to shard 1 while the query loop keeps running.
  std::atomic<bool> migrating{true};
  Json report;
  std::thread mover([&] {
    auto r = fleet->RebalanceCells({0, 1}, 0, 1);
    if (!r.ok()) {
      std::fprintf(stderr, "rebalance: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    report = *std::move(r);
    migrating = false;
  });
  run_phase("during", 1, [&] { return migrating.load(); });
  mover.join();

  run_phase("after", n_queries, nullptr);

  Json out = Json::MakeObject();
  out["cells_moved"] = report["cells"];
  out["rows_copied"] = report["rows_copied"];
  out["rows_caught_up"] = report["rows_caught_up"];
  out["phases"] = std::move(rows);
  return out;
}

/// Part D: failover under load. 4 durable shards with replication factor
/// 2 (sync shipping); a mixed read/write load runs while one primary is
/// killed mid-run and its replica auto-promoted. Success and coverage
/// must hold at 100% through all three windows (failed-over reads count
/// as complete — the replica serves the exact rows), and every acked
/// write must be readable at the end: lost_acked_writes stays 0 because
/// sync shipping plus the promotion's WAL-tail apply phase covers even
/// records the crash stranded in the capture channel.
Json RunFailover(int n_images, int n_queries) {
  std::printf("--- failover while serving, 4 shards x 2 copies ---\n");
  std::printf("%8s %9s %9s %10s %9s %9s\n", "phase", "queries", "success",
              "complete", "p50_ms", "p99_ms");
  std::string dir = "/tmp/tvdp_bench_failoverXXXXXX";
  if (!mkdtemp(dir.data())) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::exit(1);
  }
  ShardManagerOptions opts;
  opts.base_path = dir;
  opts.replication.replication_factor = 2;
  auto fleet = BuildFleet(4, n_images, std::move(opts));

  query::HybridQuery q;
  query::TextualPredicate tp;
  tp.keywords = {"city"};
  q.textual = tp;

  // Writer: acked global ids are the contract — each one must still be
  // readable after the failover.
  std::atomic<bool> done{false};
  std::vector<int64_t> acked;
  std::thread writer([&] {
    Rng rng(77);
    int i = 0;
    while (!done.load()) {
      ImageRecord rec;
      rec.uri = "live" + std::to_string(i++);
      rec.location = geo::GeoPoint{rng.Uniform(kLat0, kLat1),
                                   rng.Uniform(kLon0, kLon1)};
      rec.keywords = {"city", "live"};
      auto id = fleet->IngestImage(rec);
      if (id.ok()) acked.push_back(*id);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  Json rows = Json::MakeArray();
  auto run_phase = [&](const std::string& phase, int min_queries,
                       const std::function<bool()>& busy) {
    int n = 0, ok = 0, complete = 0;
    std::vector<double> lat;
    while (n < min_queries || (busy && busy())) {
      auto t0 = Clock::now();
      auto r = fleet->ExecuteQuery(q);
      lat.push_back(ElapsedMs(t0));
      ++n;
      if (r.ok()) {
        ++ok;
        if (r->coverage.complete()) ++complete;
      }
    }
    double success = static_cast<double>(ok) / n;
    double complete_rate = static_cast<double>(complete) / n;
    std::printf("%8s %9d %8.1f%% %9.1f%% %9.2f %9.2f\n", phase.c_str(), n,
                100.0 * success, 100.0 * complete_rate, Percentile(lat, 0.50),
                Percentile(lat, 0.99));
    Json row = Json::MakeObject();
    row["phase"] = Json(phase);
    row["queries"] = Json(n);
    row["success_rate"] = Json(success);
    row["coverage_complete_rate"] = Json(complete_rate);
    row["p50_ms"] = Json(Percentile(lat, 0.50));
    row["p99_ms"] = Json(Percentile(lat, 0.99));
    rows.Append(std::move(row));
  };

  run_phase("before", n_queries, nullptr);

  // Kill shard 0's primary mid-load; the kill auto-promotes its replica
  // (ship / apply WAL tail / ack / promote / fence / flip) in-line.
  std::atomic<bool> failing{true};
  std::thread killer([&] {
    if (!fleet->KillShard(0).ok()) {
      std::fprintf(stderr, "kill failed\n");
      std::exit(1);
    }
    failing = false;
  });
  run_phase("during", 1, [&] { return failing.load(); });
  killer.join();
  run_phase("after", n_queries, nullptr);

  done = true;
  writer.join();

  size_t lost = 0;
  for (int64_t id : acked) {
    if (!fleet->ImageRowJson(id).ok()) ++lost;
  }
  std::printf("failover: epoch %lld on shard 0, %zu acked writes, %zu lost\n",
              static_cast<long long>(fleet->shard_epoch(0)), acked.size(),
              lost);

  Json out = Json::MakeObject();
  out["replication_factor"] = Json(2);
  out["killed_shard"] = Json(0);
  out["new_epoch"] = Json(fleet->shard_epoch(0));
  out["promoted_primary_index"] = Json(fleet->shard_primary_index(0));
  out["acked_writes"] = Json(static_cast<int64_t>(acked.size()));
  out["lost_acked_writes"] = Json(static_cast<int64_t>(lost));
  out["phases"] = std::move(rows);
  return out;
}

int Run() {
  const int n_images = bench::EnvInt("TVDP_BENCH_N", 2000);
  const int scaling_queries = bench::EnvInt("TVDP_BENCH_SHARD_QUERIES", 400);
  const int fault_queries = bench::EnvInt("TVDP_BENCH_FAULT_QUERIES", 120);
  const double deadline_ms = bench::EnvInt("TVDP_BENCH_DEADLINE_MS", 60);

  Json summary = Json::MakeObject();
  summary["bench"] = Json(std::string("sharding"));
  summary["images"] = Json(n_images);
  summary["grid"] = Json(Json::Array{kGridRows, kGridCols});
  summary["scaling"] = RunScaling(n_images, scaling_queries);
  summary["fault_tolerance"] = Json::MakeObject();
  summary["fault_tolerance"]["deadline_ms"] = Json(deadline_ms);
  summary["fault_tolerance"]["scenarios"] =
      RunFaults(n_images, fault_queries, deadline_ms);
  summary["rebalance"] = RunRebalance(n_images, fault_queries);
  summary["failover"] = RunFailover(n_images, fault_queries);

  const char* out_env = std::getenv("TVDP_BENCH_SHARDING_OUT");
  const std::string out_path = out_env && *out_env
                                   ? std::string(out_env)
                                   : std::string("BENCH_sharding.json");
  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(summary.Pretty().c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("JSON: %s\n", summary.Dump().c_str());
  return 0;
}

}  // namespace
}  // namespace tvdp

int main() { return tvdp::Run(); }
