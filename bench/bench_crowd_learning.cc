// Fig. 4 experiment: the crowd-based learning loop. Reports test macro-F1
// per round for the three edge-side selection policies at an equal
// bandwidth budget, and the bandwidth cost of uploading edge-extracted
// feature vectors versus raw images (the framework's traffic-reduction
// claim in Sec. VI).

#include <cstdio>

#include "bench_util.h"
#include "edge/crowd_learning.h"
#include "ml/linear_svm.h"
#include "vision/cnn.h"

namespace tvdp {
namespace {

struct LoopInputs {
  ml::Dataset seed_train;
  ml::Dataset test;
  std::vector<edge::EdgeNode> nodes;
};

/// Builds the loop inputs from real synthetic street imagery: CNN features
/// of generated scenes, split into a small labelled server seed, a large
/// held-out test set, and per-device local capture pools.
LoopInputs MakeInputs(int total_images) {
  LoopInputs inputs;
  bench::Corpus corpus = bench::MakeCleanlinessCorpus(total_images, 4242);
  vision::CnnFeatureExtractor cnn;
  // Fine-tune on a small seed only — the loop is about improving a weak
  // initial model with crowd data.
  size_t seed_size = std::min<size_t>(corpus.train_images.size() / 6, 150);
  std::vector<image::Image> seed_imgs(corpus.train_images.begin(),
                                      corpus.train_images.begin() +
                                          static_cast<long>(seed_size));
  std::vector<int> seed_labels(corpus.train_labels.begin(),
                               corpus.train_labels.begin() +
                                   static_cast<long>(seed_size));
  if (!cnn.Fit(seed_imgs, seed_labels).ok()) return inputs;

  for (size_t i = 0; i < seed_size; ++i) {
    auto f = cnn.Extract(seed_imgs[i]);
    if (f.ok()) inputs.seed_train.Add(std::move(*f), seed_labels[i]).ok();
  }
  for (size_t i = 0; i < corpus.test_images.size(); ++i) {
    auto f = cnn.Extract(corpus.test_images[i]);
    if (f.ok()) inputs.test.Add(std::move(*f), corpus.test_labels[i]).ok();
  }

  // The rest of the training pool is scattered across edge devices.
  Rng rng(17);
  edge::DeviceClass classes[] = {edge::DeviceClass::kDesktop,
                                 edge::DeviceClass::kRaspberryPi,
                                 edge::DeviceClass::kSmartphone};
  int num_nodes = 6;
  std::vector<edge::EdgeNode> nodes(static_cast<size_t>(num_nodes));
  for (int d = 0; d < num_nodes; ++d) {
    nodes[static_cast<size_t>(d)].device =
        edge::SampleProfile(classes[d % 3], rng);
  }
  int node = 0;
  for (size_t i = seed_size; i < corpus.train_images.size(); ++i) {
    auto f = cnn.Extract(corpus.train_images[i]);
    if (!f.ok()) continue;
    nodes[static_cast<size_t>(node)].local_data.push_back(
        ml::Sample{std::move(*f), corpus.train_labels[i]});
    node = (node + 1) % num_nodes;
  }
  inputs.nodes = std::move(nodes);
  return inputs;
}

int Run() {
  const int n = bench::EnvInt("TVDP_BENCH_N", 900);
  const int rounds = bench::EnvInt("TVDP_BENCH_ROUNDS", 6);
  std::printf("== Fig. 4: crowd-based learning with edge selection ==\n");
  std::printf("%d street images -> CNN features; %d rounds\n\n", n, rounds);

  LoopInputs inputs = MakeInputs(n);
  if (inputs.seed_train.empty()) {
    std::fprintf(stderr, "input construction failed\n");
    return 1;
  }
  ml::LinearSvmClassifier prototype;

  edge::SelectionPolicy policies[] = {edge::SelectionPolicy::kRandom,
                                      edge::SelectionPolicy::kLowConfidence,
                                      edge::SelectionPolicy::kMargin};
  std::vector<std::vector<edge::LearningRound>> histories;
  for (edge::SelectionPolicy policy : policies) {
    edge::CrowdLearningLoop::Options opts;
    opts.rounds = rounds;
    opts.policy = policy;
    opts.upload_budget_bytes = 12 * 8 * 64;  // ~12 feature vectors/device
    edge::CrowdLearningLoop loop(prototype, inputs.seed_train, inputs.test,
                                 inputs.nodes, opts);
    auto history = loop.Run();
    if (!history.ok()) {
      std::fprintf(stderr, "loop failed: %s\n",
                   history.status().ToString().c_str());
      return 1;
    }
    histories.push_back(std::move(*history));
  }

  std::printf("%-6s %-12s %-16s %-10s   (test macro-F1 per round)\n", "round",
              "random", "low_confidence", "margin");
  for (size_t r = 0; r < histories[0].size(); ++r) {
    std::printf("%-6zu", r);
    for (const auto& h : histories) {
      std::printf(" %-13.3f", h[r].test_macro_f1);
    }
    std::printf("  train=%zu\n", histories[1][r].train_size);
  }

  // Bandwidth: features vs raw images at the same sample budget.
  edge::CrowdLearningLoop::Options img_opts;
  img_opts.rounds = rounds;
  img_opts.upload_features = false;
  img_opts.upload_budget_bytes = 12 * img_opts.image_bytes;
  edge::CrowdLearningLoop img_loop(prototype, inputs.seed_train, inputs.test,
                                   inputs.nodes, img_opts);
  auto img_history = img_loop.Run();
  if (!img_history.ok()) return 1;
  double feat_bytes = 0, img_bytes = 0;
  for (const auto& r : histories[1]) feat_bytes += r.bytes_uploaded;
  for (const auto& r : *img_history) img_bytes += r.bytes_uploaded;
  std::printf(
      "\nbandwidth for the same per-round sample budget: features %.1f KB "
      "vs raw images %.1f KB (%.0fx reduction)\n",
      feat_bytes / 1024, img_bytes / 1024,
      feat_bytes > 0 ? img_bytes / feat_bytes : 0.0);

  double final_random = histories[0].back().test_macro_f1;
  double final_conf = histories[1].back().test_macro_f1;
  double seed_f1 = histories[1].front().test_macro_f1;
  std::printf(
      "\nshape checks: model improves over rounds (%.3f -> %.3f): %s; "
      "prioritised selection >= random - 0.05 (%.3f vs %.3f): %s\n",
      seed_f1, final_conf, final_conf > seed_f1 - 1e-9 ? "HOLDS" : "VIOLATED",
      final_conf, final_random,
      final_conf + 0.05 >= final_random ? "HOLDS" : "VIOLATED");
  return 0;
}

}  // namespace
}  // namespace tvdp

int main() { return tvdp::Run(); }
