// Concurrent query-serving benchmark: aggregate throughput (QPS) of the
// thread-safe platform facade as a function of client thread count, over
// visual, hybrid and mixed workloads. Emits a JSON summary (one object,
// keyed per workload) after the human-readable table, in the style of
// bench_durability.
//
// A second scenario measures read scaling under a sustained writer:
// reader pools of growing size run the mixed workload while one writer
// thread commits ingests continuously, once with MVCC snapshot reads on
// (lock-free pinned snapshots) and once with the legacy shared-lock path,
// and writes the curve to BENCH_mvcc.json at the repo root.
//
// Scaling is bounded by the host: on a single-core container every thread
// count serializes onto one CPU and the curve is flat — the JSON records
// hardware_concurrency so downstream tooling can interpret the numbers.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "platform/tvdp.h"
#include "query/engine.h"
#include "query/query.h"

namespace tvdp {
namespace {

using Clock = std::chrono::steady_clock;
using platform::AnnotationRecord;
using platform::ImageRecord;
using platform::Tvdp;

constexpr size_t kFeatureDim = 16;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// A deterministic city-scale corpus: images on a jittered grid, 4 visual
/// clusters in 16-d feature space, alternating keywords and labels.
Tvdp BuildCorpus(int n_images) {
  auto created = Tvdp::Create();
  if (!created.ok()) {
    std::fprintf(stderr, "create: %s\n", created.status().ToString().c_str());
    std::exit(1);
  }
  Tvdp tvdp = std::move(created).value();
  if (!tvdp.RegisterClassification("street_cleanliness",
                                   {"clean", "encampment"})
           .ok()) {
    std::exit(1);
  }
  Rng rng(17);
  for (int i = 0; i < n_images; ++i) {
    ImageRecord rec;
    rec.uri = "bench://img/" + std::to_string(i);
    rec.location = geo::GeoPoint{34.00 + rng.Uniform(0, 0.1),
                                 -118.30 + rng.Uniform(0, 0.1)};
    rec.captured_at = 1546300800 + i * 60;
    rec.keywords = i % 2 == 0 ? std::vector<std::string>{"tent", "street"}
                              : std::vector<std::string>{"clean", "street"};
    auto id = tvdp.IngestImage(rec);
    if (!id.ok()) std::exit(1);

    AnnotationRecord ann;
    ann.classification = "street_cleanliness";
    ann.label = i % 2 == 0 ? "encampment" : "clean";
    ann.confidence = 0.9;
    ann.machine = true;
    if (!tvdp.AnnotateImage(*id, ann).ok()) std::exit(1);

    // Clustered features: cluster center one-hot-ish + noise.
    ml::FeatureVector feat(kFeatureDim, 0.1);
    feat[static_cast<size_t>(i % 4)] = 1.0;
    for (double& v : feat) v += rng.Normal(0, 0.05);
    if (!tvdp.StoreFeature(*id, "cnn", feat).ok()) std::exit(1);
  }
  return tvdp;
}

ml::FeatureVector Probe(int salt) {
  ml::FeatureVector probe(kFeatureDim, 0.1);
  probe[static_cast<size_t>(salt % 4)] = 1.0;
  return probe;
}

/// One query of the given workload; `salt` varies the probe. Exits on any
/// query error (a benchmark that silently drops failed queries lies).
void QueryOnce(const Tvdp& tvdp, const std::string& workload, int salt,
               const geo::BoundingBox& region) {
  const query::QueryEngine& engine = tvdp.query();
  auto check = [](const auto& result) {
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
  };
  if (workload == "visual") {
    if (salt % 2 == 0) {
      check(engine.VisualTopK("cnn", Probe(salt), 10));
    } else {
      check(engine.VisualThreshold("cnn", Probe(salt), 1.0));
    }
    return;
  }
  if (workload == "hybrid") {
    query::HybridQuery q;
    query::SpatialPredicate sp;
    sp.kind = query::SpatialPredicate::Kind::kRange;
    sp.range = region;
    q.spatial = sp;
    query::VisualPredicate vp;
    vp.kind = query::VisualPredicate::Kind::kThreshold;
    vp.feature_kind = "cnn";
    vp.feature = Probe(salt);
    vp.threshold = 1.0;
    q.visual = vp;
    query::TextualPredicate tp;
    tp.keywords = {salt % 2 == 0 ? "tent" : "clean"};
    q.textual = tp;
    check(engine.Execute(q));
    return;
  }
  // mixed: rotate through the remaining families.
  switch (salt % 5) {
    case 0:
      check(engine.SpatialRange(region));
      break;
    case 1:
      check(engine.SpatialKnn(geo::GeoPoint{34.05, -118.25}, 10));
      break;
    case 2: {
      query::TextualPredicate tp;
      tp.keywords = {"street"};
      check(engine.Textual(tp));
      break;
    }
    case 3:
      check(engine.Temporal(1546300800, 1546300800 + 1000 * 60));
      break;
    default: {
      query::CategoricalPredicate cp;
      cp.classification = "street_cleanliness";
      cp.label = "encampment";
      check(engine.Categorical(cp));
      break;
    }
  }
}

/// Runs `ops_per_thread` queries on each of `num_threads` client threads;
/// returns aggregate queries/second.
double RunWorkload(const Tvdp& tvdp, const std::string& workload,
                   int num_threads, int ops_per_thread,
                   const geo::BoundingBox& region) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  auto start = Clock::now();
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < ops_per_thread; ++i) {
        QueryOnce(tvdp, workload, t * 131 + i, region);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  double secs = SecondsSince(start);
  return num_threads * ops_per_thread / secs;
}

/// One measured point of the read-scaling scenario: `readers` client
/// threads issue mixed reads for `window_ms` while one writer commits
/// ingests continuously. `mvcc` toggles lock-free snapshot reads vs the
/// legacy shared-lock path on the same engine, so the two curves are
/// directly comparable.
struct ScalePoint {
  int readers = 0;
  bool mvcc = false;
  double read_qps = 0;
  double writer_commits_per_sec = 0;
  int64_t worst_commit_ms = 0;
};

ScalePoint MeasureReadScaling(Tvdp& tvdp, int readers, int window_ms,
                              bool mvcc, const geo::BoundingBox& region,
                              std::atomic<int>* next_image) {
  tvdp.query().set_snapshot_reads(mvcc);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> reads{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(readers));
  for (int r = 0; r < readers; ++r) {
    pool.emplace_back([&, r] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        QueryOnce(tvdp, "mixed", r * 131 + i++, region);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::atomic<int64_t> commits{0};
  std::atomic<int64_t> worst_ms{0};
  std::thread writer([&] {
    Rng rng(41);
    while (!stop.load(std::memory_order_relaxed)) {
      ImageRecord rec;
      int i = next_image->fetch_add(1, std::memory_order_relaxed);
      rec.uri = "bench://churn/" + std::to_string(i);
      rec.location = geo::GeoPoint{34.00 + rng.Uniform(0, 0.1),
                                   -118.30 + rng.Uniform(0, 0.1)};
      rec.captured_at = 1546300800 + i * 60;
      auto t0 = Clock::now();
      if (!tvdp.IngestImage(rec).ok()) std::exit(1);
      auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                    Clock::now() - t0)
                    .count();
      commits.fetch_add(1, std::memory_order_relaxed);
      int64_t prev = worst_ms.load(std::memory_order_relaxed);
      while (ms > prev &&
             !worst_ms.compare_exchange_weak(prev, ms,
                                             std::memory_order_relaxed)) {
      }
    }
  });
  auto start = Clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(window_ms));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : pool) t.join();
  writer.join();
  double secs = SecondsSince(start);
  tvdp.query().set_snapshot_reads(true);

  ScalePoint p;
  p.readers = readers;
  p.mvcc = mvcc;
  p.read_qps = static_cast<double>(reads.load()) / secs;
  p.writer_commits_per_sec = static_cast<double>(commits.load()) / secs;
  p.worst_commit_ms = worst_ms.load();
  return p;
}

/// Read-scaling under a sustained writer, with and without MVCC snapshot
/// reads. Emits BENCH_mvcc.json (override path via TVDP_BENCH_MVCC_OUT).
void RunReadScaling(Tvdp& tvdp, int n_images,
                    const geo::BoundingBox& region) {
  const int window_ms = bench::EnvInt("TVDP_BENCH_MVCC_WINDOW_MS", 1000);
  const char* out_env = std::getenv("TVDP_BENCH_MVCC_OUT");
  const std::string out_path = out_env ? out_env : "BENCH_mvcc.json";

  std::printf("== read scaling under a sustained writer "
              "(MVCC snapshot reads vs legacy shared lock) ==\n");
  std::printf("%-10s %-8s %14s %16s %14s\n", "readers", "mvcc",
              "read QPS", "writer commits/s", "worst commit");

  std::atomic<int> next_image{n_images};
  Json points = Json::MakeArray();
  double qps_mvcc_1 = 0, qps_mvcc_max = 0;
  for (int readers : {1, 2, 4, 8, 16}) {
    for (bool mvcc : {false, true}) {
      ScalePoint p = MeasureReadScaling(tvdp, readers, window_ms, mvcc,
                                        region, &next_image);
      std::printf("%-10d %-8s %14.0f %16.1f %11lldms\n", p.readers,
                  p.mvcc ? "on" : "off", p.read_qps,
                  p.writer_commits_per_sec,
                  static_cast<long long>(p.worst_commit_ms));
      if (mvcc && readers == 1) qps_mvcc_1 = p.read_qps;
      if (mvcc && readers == 16) qps_mvcc_max = p.read_qps;
      Json point = Json::MakeObject();
      point["readers"] = p.readers;
      point["mvcc"] = p.mvcc;
      point["read_qps"] = p.read_qps;
      point["writer_commits_per_sec"] = p.writer_commits_per_sec;
      point["worst_commit_ms"] = p.worst_commit_ms;
      points.Append(std::move(point));
    }
  }

  Json out = Json::MakeObject();
  out["bench"] = "read_scaling_under_sustained_writer";
  out["images_at_start"] = n_images;
  out["window_ms"] = window_ms;
  out["hardware_concurrency"] =
      static_cast<int64_t>(std::thread::hardware_concurrency());
  out["points"] = std::move(points);
  // Collapse detector: QPS at 16 readers relative to 1 reader with MVCC
  // on. A reader-starved lock would drive this toward zero; snapshot
  // reads keep it near (or above) 1 even on a saturated host.
  if (qps_mvcc_1 > 0) {
    out["mvcc_qps_ratio_16v1"] = qps_mvcc_max / qps_mvcc_1;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    std::exit(1);
  }
  std::string dump = out.Pretty();
  std::fwrite(dump.data(), 1, dump.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\nwrote %s\n\n", out_path.c_str());
}

int Run() {
  const int n_images = bench::EnvInt("TVDP_BENCH_CONC_IMAGES", 3000);
  const int ops = bench::EnvInt("TVDP_BENCH_CONC_OPS", 150);
  const int max_threads = bench::EnvInt("TVDP_BENCH_CONC_MAX_THREADS", 8);

  std::printf("== concurrent query serving: QPS vs client threads ==\n");
  std::printf("corpus: %d images, %zu-d features; %d queries/thread; "
              "hardware_concurrency=%u, shared pool workers=%zu\n\n",
              n_images, kFeatureDim, ops, std::thread::hardware_concurrency(),
              ThreadPool::Shared().size());

  Tvdp tvdp = BuildCorpus(n_images);
  geo::BoundingBox region =
      geo::BoundingBox::FromCorners({34.0, -118.3}, {34.1, -118.2});

  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  Json summary = Json::MakeObject();
  summary["images"] = n_images;
  summary["ops_per_thread"] = ops;
  summary["hardware_concurrency"] =
      static_cast<int64_t>(std::thread::hardware_concurrency());
  summary["pool_workers"] = static_cast<int64_t>(ThreadPool::Shared().size());

  for (const std::string workload : {"visual", "hybrid", "mixed"}) {
    std::printf("workload: %s\n", workload.c_str());
    std::printf("%-10s %14s %10s\n", "threads", "aggregate QPS", "speedup");
    Json points = Json::MakeArray();
    double qps_1 = 0, qps_4 = 0;
    for (int t : thread_counts) {
      double qps = RunWorkload(tvdp, workload, t, ops, region);
      if (t == 1) qps_1 = qps;
      if (t == 4) qps_4 = qps;
      std::printf("%-10d %14.0f %9.2fx\n", t, qps,
                  qps_1 > 0 ? qps / qps_1 : 0.0);
      Json point = Json::MakeObject();
      point["threads"] = t;
      point["qps"] = qps;
      points.Append(std::move(point));
    }
    summary[workload] = std::move(points);
    if (qps_1 > 0 && qps_4 > 0) {
      summary[workload + "_speedup_4v1"] = qps_4 / qps_1;
    }
    std::printf("\n");
  }

  std::printf("JSON: %s\n\n", summary.Dump().c_str());

  RunReadScaling(tvdp, n_images, region);
  return 0;
}

}  // namespace
}  // namespace tvdp

int main() { return tvdp::Run(); }
