// Concurrent query-serving benchmark: aggregate throughput (QPS) of the
// thread-safe platform facade as a function of client thread count, over
// visual, hybrid and mixed workloads. Emits a JSON summary (one object,
// keyed per workload) after the human-readable table, in the style of
// bench_durability.
//
// Scaling is bounded by the host: on a single-core container every thread
// count serializes onto one CPU and the curve is flat — the JSON records
// hardware_concurrency so downstream tooling can interpret the numbers.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "platform/tvdp.h"
#include "query/engine.h"
#include "query/query.h"

namespace tvdp {
namespace {

using Clock = std::chrono::steady_clock;
using platform::AnnotationRecord;
using platform::ImageRecord;
using platform::Tvdp;

constexpr size_t kFeatureDim = 16;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// A deterministic city-scale corpus: images on a jittered grid, 4 visual
/// clusters in 16-d feature space, alternating keywords and labels.
Tvdp BuildCorpus(int n_images) {
  auto created = Tvdp::Create();
  if (!created.ok()) {
    std::fprintf(stderr, "create: %s\n", created.status().ToString().c_str());
    std::exit(1);
  }
  Tvdp tvdp = std::move(created).value();
  if (!tvdp.RegisterClassification("street_cleanliness",
                                   {"clean", "encampment"})
           .ok()) {
    std::exit(1);
  }
  Rng rng(17);
  for (int i = 0; i < n_images; ++i) {
    ImageRecord rec;
    rec.uri = "bench://img/" + std::to_string(i);
    rec.location = geo::GeoPoint{34.00 + rng.Uniform(0, 0.1),
                                 -118.30 + rng.Uniform(0, 0.1)};
    rec.captured_at = 1546300800 + i * 60;
    rec.keywords = i % 2 == 0 ? std::vector<std::string>{"tent", "street"}
                              : std::vector<std::string>{"clean", "street"};
    auto id = tvdp.IngestImage(rec);
    if (!id.ok()) std::exit(1);

    AnnotationRecord ann;
    ann.classification = "street_cleanliness";
    ann.label = i % 2 == 0 ? "encampment" : "clean";
    ann.confidence = 0.9;
    ann.machine = true;
    if (!tvdp.AnnotateImage(*id, ann).ok()) std::exit(1);

    // Clustered features: cluster center one-hot-ish + noise.
    ml::FeatureVector feat(kFeatureDim, 0.1);
    feat[static_cast<size_t>(i % 4)] = 1.0;
    for (double& v : feat) v += rng.Normal(0, 0.05);
    if (!tvdp.StoreFeature(*id, "cnn", feat).ok()) std::exit(1);
  }
  return tvdp;
}

ml::FeatureVector Probe(int salt) {
  ml::FeatureVector probe(kFeatureDim, 0.1);
  probe[static_cast<size_t>(salt % 4)] = 1.0;
  return probe;
}

/// One query of the given workload; `salt` varies the probe. Exits on any
/// query error (a benchmark that silently drops failed queries lies).
void QueryOnce(const Tvdp& tvdp, const std::string& workload, int salt,
               const geo::BoundingBox& region) {
  const query::QueryEngine& engine = tvdp.query();
  auto check = [](const auto& result) {
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
  };
  if (workload == "visual") {
    if (salt % 2 == 0) {
      check(engine.VisualTopK("cnn", Probe(salt), 10));
    } else {
      check(engine.VisualThreshold("cnn", Probe(salt), 1.0));
    }
    return;
  }
  if (workload == "hybrid") {
    query::HybridQuery q;
    query::SpatialPredicate sp;
    sp.kind = query::SpatialPredicate::Kind::kRange;
    sp.range = region;
    q.spatial = sp;
    query::VisualPredicate vp;
    vp.kind = query::VisualPredicate::Kind::kThreshold;
    vp.feature_kind = "cnn";
    vp.feature = Probe(salt);
    vp.threshold = 1.0;
    q.visual = vp;
    query::TextualPredicate tp;
    tp.keywords = {salt % 2 == 0 ? "tent" : "clean"};
    q.textual = tp;
    check(engine.Execute(q));
    return;
  }
  // mixed: rotate through the remaining families.
  switch (salt % 5) {
    case 0:
      check(engine.SpatialRange(region));
      break;
    case 1:
      check(engine.SpatialKnn(geo::GeoPoint{34.05, -118.25}, 10));
      break;
    case 2: {
      query::TextualPredicate tp;
      tp.keywords = {"street"};
      check(engine.Textual(tp));
      break;
    }
    case 3:
      check(engine.Temporal(1546300800, 1546300800 + 1000 * 60));
      break;
    default: {
      query::CategoricalPredicate cp;
      cp.classification = "street_cleanliness";
      cp.label = "encampment";
      check(engine.Categorical(cp));
      break;
    }
  }
}

/// Runs `ops_per_thread` queries on each of `num_threads` client threads;
/// returns aggregate queries/second.
double RunWorkload(const Tvdp& tvdp, const std::string& workload,
                   int num_threads, int ops_per_thread,
                   const geo::BoundingBox& region) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  auto start = Clock::now();
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < ops_per_thread; ++i) {
        QueryOnce(tvdp, workload, t * 131 + i, region);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  double secs = SecondsSince(start);
  return num_threads * ops_per_thread / secs;
}

int Run() {
  const int n_images = bench::EnvInt("TVDP_BENCH_CONC_IMAGES", 3000);
  const int ops = bench::EnvInt("TVDP_BENCH_CONC_OPS", 150);
  const int max_threads = bench::EnvInt("TVDP_BENCH_CONC_MAX_THREADS", 8);

  std::printf("== concurrent query serving: QPS vs client threads ==\n");
  std::printf("corpus: %d images, %zu-d features; %d queries/thread; "
              "hardware_concurrency=%u, shared pool workers=%zu\n\n",
              n_images, kFeatureDim, ops, std::thread::hardware_concurrency(),
              ThreadPool::Shared().size());

  Tvdp tvdp = BuildCorpus(n_images);
  geo::BoundingBox region =
      geo::BoundingBox::FromCorners({34.0, -118.3}, {34.1, -118.2});

  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  Json summary = Json::MakeObject();
  summary["images"] = n_images;
  summary["ops_per_thread"] = ops;
  summary["hardware_concurrency"] =
      static_cast<int64_t>(std::thread::hardware_concurrency());
  summary["pool_workers"] = static_cast<int64_t>(ThreadPool::Shared().size());

  for (const std::string workload : {"visual", "hybrid", "mixed"}) {
    std::printf("workload: %s\n", workload.c_str());
    std::printf("%-10s %14s %10s\n", "threads", "aggregate QPS", "speedup");
    Json points = Json::MakeArray();
    double qps_1 = 0, qps_4 = 0;
    for (int t : thread_counts) {
      double qps = RunWorkload(tvdp, workload, t, ops, region);
      if (t == 1) qps_1 = qps;
      if (t == 4) qps_4 = qps;
      std::printf("%-10d %14.0f %9.2fx\n", t, qps,
                  qps_1 > 0 ? qps / qps_1 : 0.0);
      Json point = Json::MakeObject();
      point["threads"] = t;
      point["qps"] = qps;
      points.Append(std::move(point));
    }
    summary[workload] = std::move(points);
    if (qps_1 > 0 && qps_4 > 0) {
      summary[workload + "_speedup_4v1"] = qps_4 / qps_1;
    }
    std::printf("\n");
  }

  std::printf("JSON: %s\n", summary.Dump().c_str());
  return 0;
}

}  // namespace
}  // namespace tvdp

int main() { return tvdp::Run(); }
