// Durability-layer microbenchmarks: WAL append throughput with and without
// per-commit fsync, and recovery time as a function of log length. Emits a
// JSON summary (one object, keyed per case) after the human-readable table.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/file.h"
#include "common/json.h"
#include "storage/durable_catalog.h"
#include "storage/wal.h"

namespace tvdp {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

storage::WalRecord MakeRecord(int i) {
  storage::WalRecord rec;
  rec.table = "images";
  rec.row_id = i;
  rec.values = storage::Row{
      storage::Value("bench://image/" + std::to_string(i)),
      storage::Value(34.0 + i * 1e-6),
      storage::Value(-118.3 + i * 1e-6),
      storage::Value(int64_t{1546300800} + i),
  };
  return rec;
}

std::string ScratchDir() {
  std::string templ = "/tmp/tvdp_bench_durXXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  if (!mkdtemp(buf.data())) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::exit(1);
  }
  return buf.data();
}

/// Appends `n` records; returns records/second.
double BenchAppend(const std::string& path, int n, bool sync) {
  Fs* fs = Fs::Default();
  if (fs->Exists(path)) (void)fs->Remove(path);
  auto wal = storage::Wal::Open(fs, path);
  if (!wal.ok()) {
    std::fprintf(stderr, "wal open: %s\n", wal.status().ToString().c_str());
    std::exit(1);
  }
  auto start = Clock::now();
  for (int i = 1; i <= n; ++i) {
    if (!wal->Append(MakeRecord(i), sync).ok()) {
      std::fprintf(stderr, "append failed at %d\n", i);
      std::exit(1);
    }
  }
  if (!sync && !wal->Sync().ok()) std::exit(1);
  return n / SecondsSince(start);
}

/// Builds a WAL of `n` records and times recovery; returns (seconds, MB).
std::pair<double, double> BenchRecovery(const std::string& path, int n) {
  Fs* fs = Fs::Default();
  if (fs->Exists(path)) (void)fs->Remove(path);
  {
    auto wal = storage::Wal::Open(fs, path);
    for (int i = 1; i <= n; ++i) (void)wal->Append(MakeRecord(i), false);
    (void)wal->Sync();
  }
  double mb = static_cast<double>(*fs->FileSize(path)) / (1024.0 * 1024.0);
  auto start = Clock::now();
  auto recovery = storage::Wal::Recover(fs, path);
  double secs = SecondsSince(start);
  if (!recovery.ok() || recovery->records.size() != static_cast<size_t>(n)) {
    std::fprintf(stderr, "recovery failed or short\n");
    std::exit(1);
  }
  return {secs, mb};
}

int Run() {
  const int append_n = bench::EnvInt("TVDP_BENCH_WAL_APPENDS", 2000);
  const int sync_n = bench::EnvInt("TVDP_BENCH_WAL_SYNC_APPENDS", 300);
  std::string dir = ScratchDir();
  std::string wal_path = dir + "/bench.wal";
  Json summary = Json::MakeObject();

  std::printf("== durability microbench: WAL append + recovery ==\n\n");

  double nosync_rps = BenchAppend(wal_path, append_n, /*sync=*/false);
  double sync_rps = BenchAppend(wal_path, sync_n, /*sync=*/true);
  std::printf("%-34s %12.0f records/s  (n=%d)\n",
              "append, fsync per commit:", sync_rps, sync_n);
  std::printf("%-34s %12.0f records/s  (n=%d)\n",
              "append, single fsync at end:", nosync_rps, append_n);
  std::printf("%-34s %12.1fx\n\n", "fsync cost factor:",
              nosync_rps / sync_rps);
  summary["wal_append_sync_rps"] = sync_rps;
  summary["wal_append_nosync_rps"] = nosync_rps;

  std::printf("%-14s %10s %12s %16s\n", "log records", "size MB",
              "recover s", "records/s");
  Json recovery_points = Json::MakeArray();
  for (int n : {1000, 10000, 50000}) {
    auto [secs, mb] = BenchRecovery(wal_path, n);
    std::printf("%-14d %10.2f %12.4f %16.0f\n", n, mb, secs, n / secs);
    Json point = Json::MakeObject();
    point["records"] = n;
    point["log_mb"] = mb;
    point["recover_seconds"] = secs;
    recovery_points.Append(std::move(point));
  }
  summary["recovery"] = std::move(recovery_points);

  // End-to-end: durable catalog ingest rate with compaction enabled.
  {
    storage::DurableCatalogOptions options;
    options.sync_on_commit = false;
    options.compaction_threshold_bytes = 1u << 20;
    auto dc = storage::DurableCatalog::Open(dir + "/db", options);
    if (!dc.ok()) std::exit(1);
    storage::Catalog initial;
    if (!storage::CreateTvdpSchema(initial).ok() ||
        !dc->Bootstrap(std::move(initial)).ok()) {
      std::exit(1);
    }
    auto start = Clock::now();
    for (int i = 0; i < append_n; ++i) {
      storage::WalRecord rec = MakeRecord(i);
      auto id = dc->Insert("images", storage::Row{
          rec.values[0], rec.values[1], rec.values[2], rec.values[3],
          rec.values[3], storage::Value("bench"), storage::Value(false),
          storage::Value()});
      if (!id.ok()) std::exit(1);
    }
    double rps = append_n / SecondsSince(start);
    std::printf("\n%-34s %12.0f inserts/s  (%zu checkpoints)\n",
                "durable catalog insert:", rps, dc->checkpoints_taken());
    summary["durable_insert_rps"] = rps;
    summary["checkpoints"] = dc->checkpoints_taken();
  }

  std::printf("\nJSON: %s\n", summary.Dump().c_str());
  std::string cleanup = "rm -rf '" + dir + "'";
  (void)std::system(cleanup.c_str());
  return 0;
}

}  // namespace
}  // namespace tvdp

int main() { return tvdp::Run(); }
