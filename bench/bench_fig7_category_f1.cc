// Reproduces paper Fig. 7: per-category F1 of SVM with each feature set.
//
// Paper shape (SVM + CNN): F1 >= ~0.8 for every cleanliness category, the
// highest on "overgrown vegetation", the lowest on "encampment". Averaged
// over several corpus seeds (TVDP_BENCH_SEEDS) to suppress split noise.

#include <cstdio>

#include "bench_util.h"
#include "ml/cross_validation.h"
#include "ml/linear_svm.h"

namespace tvdp {
namespace {

int Run() {
  const int n = bench::EnvInt("TVDP_BENCH_N", 1250);
  const int seeds = bench::EnvInt("TVDP_BENCH_SEEDS", 3);
  std::printf("== Fig. 7 reproduction: SVM per-category F1 by feature ==\n");
  std::printf("corpus: %d synthetic street images x %d seeds, 80/20 split\n\n",
              n, seeds);

  const char* feature_names[3] = {"color_hist", "sift_bow", "cnn"};
  std::vector<std::string> class_names = bench::CleanlinessClassNames();
  std::vector<std::vector<double>> f1(class_names.size(),
                                      std::vector<double>(3, 0.0));

  for (int s = 0; s < seeds; ++s) {
    bench::Corpus corpus =
        bench::MakeCleanlinessCorpus(n, 2019 + static_cast<uint64_t>(s));
    bench::FeaturePipelines pipelines = bench::FitFeaturePipelines(corpus);
    if (!pipelines.ok) return 1;
    const vision::FeatureExtractor* extractors[3] = {
        &pipelines.color, &pipelines.sift_bow, &pipelines.cnn};
    for (int fi = 0; fi < 3; ++fi) {
      ml::Dataset train, test;
      if (!bench::ExtractDatasets(*extractors[fi], corpus, &train, &test)) {
        return 1;
      }
      auto moments = train.ComputeMoments();
      train.Standardize(moments);
      test.Standardize(moments);
      ml::LinearSvmClassifier svm;
      auto cm = ml::TrainAndEvaluate(svm, train, test);
      if (!cm.ok()) return 1;
      for (size_t c = 0; c < class_names.size(); ++c) {
        f1[c][static_cast<size_t>(fi)] +=
            cm->F1(static_cast<int>(c)) / seeds;
      }
    }
  }

  std::printf("%-22s", "category \\ feature");
  for (const char* name : feature_names) std::printf("%12s", name);
  std::printf("\n");
  for (size_t c = 0; c < class_names.size(); ++c) {
    std::printf("%-22s", class_names[c].c_str());
    for (int fi = 0; fi < 3; ++fi) {
      std::printf("%12.3f", f1[c][static_cast<size_t>(fi)]);
    }
    std::printf("\n");
  }

  // Shape checks for SVM + CNN (feature index 2).
  size_t best = 0, worst = 0;
  bool all_above = true;
  for (size_t c = 0; c < class_names.size(); ++c) {
    if (f1[c][2] > f1[best][2]) best = c;
    if (f1[c][2] < f1[worst][2]) worst = c;
    if (f1[c][2] < 0.75) all_above = false;
  }
  std::printf("\nSVM+CNN: all categories F1 >= ~0.8 (threshold 0.75): %s\n",
              all_above ? "HOLDS" : "VIOLATED");
  std::printf("SVM+CNN: best category  = %s (paper: overgrown_vegetation)\n",
              class_names[best].c_str());
  std::printf("SVM+CNN: worst category = %s (paper: encampment)\n",
              class_names[worst].c_str());
  return 0;
}

}  // namespace
}  // namespace tvdp

int main() { return tvdp::Run(); }
