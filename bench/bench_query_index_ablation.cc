// Sec. IV-C design-choice ablation: per-operation latency of every TVDP
// query family through its index versus a full-scan baseline, plus the
// hybrid spatial-visual index versus a filter-then-rank composition.
// Run with --benchmark_filter=... to select cases.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "platform/tvdp.h"
#include "query/engine.h"

namespace tvdp {
namespace {

constexpr int kCorpusSize = 4000;
constexpr size_t kFeatureDim = 64;

/// One shared corpus for all ablation cases (built once, lazily).
struct AblationFixture {
  platform::Tvdp tvdp;
  geo::BoundingBox region;
  std::vector<ml::FeatureVector> probe_features;
  std::vector<geo::BoundingBox> probe_boxes;

  static AblationFixture& Get() {
    static AblationFixture* fixture = new AblationFixture();
    return *fixture;
  }

 private:
  AblationFixture() : tvdp(std::move(platform::Tvdp::Create()).value()) {
    region = geo::BoundingBox::FromCorners({34.00, -118.30}, {34.10, -118.20});
    Rng rng(1234);
    bool registered =
        tvdp.RegisterClassification("street_cleanliness",
                                    {"clean", "encampment"})
            .ok();
    (void)registered;
    for (int i = 0; i < kCorpusSize; ++i) {
      platform::ImageRecord rec;
      rec.uri = "bench://" + std::to_string(i);
      rec.location = geo::GeoPoint{rng.Uniform(region.min_lat, region.max_lat),
                                   rng.Uniform(region.min_lon, region.max_lon)};
      auto fov = geo::FieldOfView::Make(rec.location, rng.Uniform(0, 360),
                                        60, 120);
      rec.fov = *fov;
      rec.captured_at = 1546300800 + i * 60;
      rec.keywords = {i % 7 == 0 ? "tent" : "street"};
      auto id = tvdp.IngestImage(rec);
      ml::FeatureVector f(kFeatureDim);
      for (double& x : f) x = rng.Normal();
      ml::L2NormalizeInPlace(f);
      bool stored = tvdp.StoreFeature(*id, "cnn", f).ok();
      (void)stored;
      platform::AnnotationRecord ann;
      ann.classification = "street_cleanliness";
      ann.label = i % 5 == 0 ? "encampment" : "clean";
      ann.confidence = 0.9;
      ann.machine = true;
      bool annotated = tvdp.AnnotateImage(*id, ann).ok();
      (void)annotated;
    }
    // Pre-generate probes so benchmark iterations measure queries only.
    for (int i = 0; i < 64; ++i) {
      ml::FeatureVector f(kFeatureDim);
      for (double& x : f) x = rng.Normal();
      ml::L2NormalizeInPlace(f);
      probe_features.push_back(std::move(f));
      probe_boxes.push_back(geo::BoundingBox::FromCenterRadius(
          geo::GeoPoint{rng.Uniform(region.min_lat, region.max_lat),
                        rng.Uniform(region.min_lon, region.max_lon)},
          rng.Uniform(300, 1500)));
    }
  }
};

void BM_SpatialRange_Indexed(benchmark::State& state) {
  auto& f = AblationFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    auto hits = f.tvdp.query().SpatialRange(
        f.probe_boxes[i++ % f.probe_boxes.size()]);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_SpatialRange_Indexed);

void BM_SpatialRange_FullScan(benchmark::State& state) {
  auto& f = AblationFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    auto hits = f.tvdp.query().SpatialRangeScan(
        f.probe_boxes[i++ % f.probe_boxes.size()]);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_SpatialRange_FullScan);

void BM_VisualTopK_Lsh(benchmark::State& state) {
  auto& f = AblationFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    auto hits = f.tvdp.query().VisualTopK(
        "cnn", f.probe_features[i++ % f.probe_features.size()], 10);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_VisualTopK_Lsh);

void BM_VisualTopK_FullScan(benchmark::State& state) {
  auto& f = AblationFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    auto hits = f.tvdp.query().VisualTopKScan(
        "cnn", f.probe_features[i++ % f.probe_features.size()], 10);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_VisualTopK_FullScan);

void BM_SpatialVisual_HybridIndex(benchmark::State& state) {
  auto& f = AblationFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    size_t j = i++ % f.probe_features.size();
    auto hits = f.tvdp.query().SpatialVisualTopK(
        f.probe_boxes[j].Center(), "cnn", f.probe_features[j], 10, 0.7);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_SpatialVisual_HybridIndex);

void BM_SpatialVisual_FilterThenRank(benchmark::State& state) {
  // Composition baseline: spatial range via the planner, visual ranking
  // via per-candidate verification (the path Execute() takes without a
  // hybrid index).
  auto& f = AblationFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    size_t j = i++ % f.probe_features.size();
    query::HybridQuery q;
    query::SpatialPredicate sp;
    sp.kind = query::SpatialPredicate::Kind::kRange;
    sp.range = f.probe_boxes[j];
    q.spatial = sp;
    query::VisualPredicate vp;
    vp.feature_kind = "cnn";
    vp.feature = f.probe_features[j];
    vp.k = 10;
    q.visual = vp;
    auto hits = f.tvdp.query().Execute(q);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_SpatialVisual_FilterThenRank);

void BM_SpatialVisual_ExactScan(benchmark::State& state) {
  // Exact baseline: compute the blended score for every stored feature.
  auto& f = AblationFixture::Get();
  const storage::Table* feats =
      f.tvdp.catalog().GetTable(storage::tables::kImageVisualFeatures);
  const storage::Table* images =
      f.tvdp.catalog().GetTable(storage::tables::kImages);
  const storage::Schema& fs = feats->schema();
  const storage::Schema& is = images->schema();
  size_t feat_idx = static_cast<size_t>(fs.ColumnIndex("feature"));
  size_t img_idx = static_cast<size_t>(fs.ColumnIndex("image_id"));
  size_t lat_idx = static_cast<size_t>(is.ColumnIndex("lat"));
  size_t lon_idx = static_cast<size_t>(is.ColumnIndex("lon"));
  size_t i = 0;
  for (auto _ : state) {
    size_t j = i++ % f.probe_features.size();
    geo::GeoPoint probe = f.probe_boxes[j].Center();
    std::vector<std::pair<double, int64_t>> scored;
    feats->ForEach([&](const storage::Row& r) {
      auto img = images->Get(r[img_idx].AsInt64());
      geo::BoundingBox b;
      b.min_lat = b.max_lat = img->at(lat_idx).AsDouble();
      b.min_lon = b.max_lon = img->at(lon_idx).AsDouble();
      double score =
          0.7 * index::MinDistDeg(probe, b) / 0.1 +
          0.3 * ml::L2Distance(f.probe_features[j],
                               r[feat_idx].AsFloatVector());
      scored.emplace_back(score, r[img_idx].AsInt64());
      return true;
    });
    std::partial_sort(scored.begin(),
                      scored.begin() + std::min<size_t>(10, scored.size()),
                      scored.end());
    benchmark::DoNotOptimize(scored);
  }
}
BENCHMARK(BM_SpatialVisual_ExactScan);

void BM_Textual_InvertedIndex(benchmark::State& state) {
  auto& f = AblationFixture::Get();
  query::TextualPredicate pred;
  pred.keywords = {"tent"};
  for (auto _ : state) {
    auto hits = f.tvdp.query().Textual(pred);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_Textual_InvertedIndex);

void BM_Temporal_SortedIndex(benchmark::State& state) {
  auto& f = AblationFixture::Get();
  Timestamp begin = 1546300800 + 1000 * 60;
  for (auto _ : state) {
    auto hits = f.tvdp.query().Temporal(begin, begin + 600 * 60);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_Temporal_SortedIndex);

void BM_Categorical_Annotations(benchmark::State& state) {
  auto& f = AblationFixture::Get();
  query::CategoricalPredicate pred;
  pred.classification = "street_cleanliness";
  pred.label = "encampment";
  for (auto _ : state) {
    auto hits = f.tvdp.query().Categorical(pred);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_Categorical_Annotations);

void BM_HybridPlanner_CategoricalTemporal(benchmark::State& state) {
  auto& f = AblationFixture::Get();
  query::HybridQuery q;
  query::CategoricalPredicate cp;
  cp.classification = "street_cleanliness";
  cp.label = "encampment";
  q.categorical = cp;
  q.temporal = query::TemporalPredicate{1546300800, 1546300800 + 500 * 60};
  for (auto _ : state) {
    auto hits = f.tvdp.query().Execute(q);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_HybridPlanner_CategoricalTemporal);

// --- Index construction: incremental insert vs STR bulk load ---

std::vector<std::pair<geo::BoundingBox, index::RecordId>> BuildEntries(
    int n) {
  Rng rng(99);
  std::vector<std::pair<geo::BoundingBox, index::RecordId>> entries;
  entries.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    geo::GeoPoint p{rng.Uniform(34.0, 34.1), rng.Uniform(-118.3, -118.2)};
    entries.emplace_back(geo::BoundingBox::FromCenterRadius(p, 50), i);
  }
  return entries;
}

void BM_RTreeBuild_Incremental(benchmark::State& state) {
  auto entries = BuildEntries(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    index::RTree tree;
    for (const auto& [box, id] : entries) {
      benchmark::DoNotOptimize(tree.Insert(box, id));
    }
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_RTreeBuild_Incremental)->Arg(1000)->Arg(10000);

void BM_RTreeBuild_BulkLoad(benchmark::State& state) {
  auto entries = BuildEntries(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto tree = index::RTree::BulkLoad(entries);
    benchmark::DoNotOptimize(tree->size());
  }
}
BENCHMARK(BM_RTreeBuild_BulkLoad)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace tvdp

BENCHMARK_MAIN();
