// Reproduces paper Fig. 8: average inference time (reported in log10 ms,
// as in the figure) for the three transfer-learned models (MobileNetV1,
// MobileNetV2, InceptionV3) on the three device classes (desktop,
// Raspberry Pi 3 B+, smartphone).
//
// Paper shape: desktop answers in tens of milliseconds for all models;
// the RPi needs thousands of milliseconds and is on average ~1.5 orders
// of magnitude slower than desktop; the smartphone sits between.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "edge/device.h"
#include "edge/model_profile.h"
#include "edge/simulator.h"

namespace tvdp {
namespace {

int Run() {
  const int runs = bench::EnvInt("TVDP_BENCH_RUNS", 200);
  std::printf("== Fig. 8 reproduction: inference time (ms, and log10 ms) ==\n");
  std::printf("%d simulated inferences per (model, device) cell\n\n", runs);

  auto devices = edge::PaperDeviceProfiles();
  auto models = edge::PaperModelProfiles();
  edge::InferenceSimulator sim;

  std::printf("%-16s", "model \\ device");
  for (const auto& d : devices) {
    std::printf("%24s", edge::DeviceClassName(d.device_class).c_str());
  }
  std::printf("\n");

  double ratio_sum = 0;
  for (const auto& model : models) {
    std::printf("%-16s", model.name.c_str());
    double desktop_ms = 0;
    for (const auto& device : devices) {
      double ms = sim.MeanLatencyMs(device, model, runs);
      if (device.device_class == edge::DeviceClass::kDesktop) desktop_ms = ms;
      if (device.device_class == edge::DeviceClass::kRaspberryPi) {
        ratio_sum += std::log10(ms / desktop_ms);
      }
      std::printf("    %9.1fms (10^%.2f)", ms, std::log10(ms));
    }
    std::printf("\n");
  }

  double mean_orders = ratio_sum / static_cast<double>(models.size());
  std::printf(
      "\nRPi vs desktop: mean gap = %.2f orders of magnitude "
      "(paper: ~1.5)\n",
      mean_orders);
  std::printf("shape check: gap in [1.0, 2.5]: %s\n",
              mean_orders >= 1.0 && mean_orders <= 2.5 ? "HOLDS" : "VIOLATED");
  return 0;
}

}  // namespace
}  // namespace tvdp

int main() { return tvdp::Run(); }
