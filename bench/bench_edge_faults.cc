// Fault-tolerant edge dispatch benchmark: batch completion rate and p50/p99
// job latency as the per-attempt fault rate rises, with the fault-tolerance
// machinery (retries, hedging, degradation, server fallback) on versus off.
// Emits a JSON summary (one object) after the human-readable table.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "common/rng.h"
#include "edge/device.h"
#include "edge/model_profile.h"
#include "edge/orchestrator.h"

namespace tvdp {
namespace {

std::vector<edge::DeviceProfile> MakeFleet(int per_class) {
  Rng rng(41);
  std::vector<edge::DeviceProfile> fleet;
  edge::DeviceClass classes[] = {edge::DeviceClass::kDesktop,
                                 edge::DeviceClass::kRaspberryPi,
                                 edge::DeviceClass::kSmartphone};
  for (edge::DeviceClass c : classes) {
    for (int i = 0; i < per_class; ++i) {
      fleet.push_back(edge::SampleProfile(c, rng));
    }
  }
  return fleet;
}

edge::BatchReport RunConfig(double fault_rate, bool fault_tolerant,
                            int jobs) {
  edge::FaultModelOptions faults;
  faults.crash_prob = fault_rate;
  faults.straggler_prob = fault_rate / 2;
  faults.partition_prob = fault_rate / 4;
  faults.partition_recover_prob = 0.5;
  faults.seed = 29;

  edge::OrchestratorOptions options;
  options.seed = 31;
  options.enable_retries = fault_tolerant;
  options.enable_hedging = fault_tolerant;
  options.enable_degradation = fault_tolerant;
  options.enable_server_fallback = fault_tolerant;

  edge::EdgeOrchestrator orch(MakeFleet(2), edge::ModelComplexityLadder(),
                              faults, options);
  auto report = orch.RunBatch(jobs);
  if (!report.ok()) {
    std::fprintf(stderr, "batch failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  return *report;
}

Json ReportJson(const edge::BatchReport& r) {
  Json j = Json::MakeObject();
  j["completion_rate"] = r.completion_rate;
  j["p50_latency_ms"] = r.p50_latency_ms;
  j["p99_latency_ms"] = r.p99_latency_ms;
  j["total_attempts"] = r.total_attempts;
  j["retries"] = r.retries;
  j["hedges"] = r.hedges;
  j["degradations"] = r.degradations;
  j["server_fallbacks"] = r.server_fallbacks;
  j["circuits_opened"] = static_cast<int64_t>(r.circuits_opened);
  return j;
}

int Run() {
  const int jobs = bench::EnvInt("TVDP_BENCH_EDGE_JOBS", 2000);
  Json summary = Json::MakeObject();
  summary["jobs_per_point"] = jobs;

  std::printf("== edge fault tolerance: completion + latency vs fault rate "
              "(n=%d jobs/point) ==\n\n", jobs);
  std::printf("%-6s | %-28s | %-28s\n", "", "with retries/hedging/fallback",
              "without (first error fails)");
  std::printf("%-6s | %9s %8s %8s | %9s %8s %8s\n", "fault", "complete",
              "p50 ms", "p99 ms", "complete", "p50 ms", "p99 ms");

  Json points = Json::MakeArray();
  for (double rate : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    edge::BatchReport tolerant = RunConfig(rate, /*fault_tolerant=*/true,
                                           jobs);
    edge::BatchReport naive = RunConfig(rate, /*fault_tolerant=*/false, jobs);
    std::printf("%-6.2f | %8.1f%% %8.1f %8.1f | %8.1f%% %8.1f %8.1f\n", rate,
                tolerant.completion_rate * 100, tolerant.p50_latency_ms,
                tolerant.p99_latency_ms, naive.completion_rate * 100,
                naive.p50_latency_ms, naive.p99_latency_ms);
    Json point = Json::MakeObject();
    point["fault_rate"] = rate;
    point["with_retries"] = ReportJson(tolerant);
    point["without_retries"] = ReportJson(naive);
    points.Append(std::move(point));
  }
  summary["points"] = std::move(points);

  std::printf("\nJSON: %s\n", summary.Dump().c_str());
  return 0;
}

}  // namespace
}  // namespace tvdp

int main() { return tvdp::Run(); }
