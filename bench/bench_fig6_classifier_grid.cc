// Reproduces paper Fig. 6: macro-F1 of every (image feature x classifier)
// combination on the street-cleanliness corpus.
//
// Paper numbers (22K real LASAN images): best per feature with SVM —
// SIFT-BoW 0.64, CNN 0.83; color histogram worst; CNN > SIFT-BoW > color
// for every strong classifier. Expected shape here (synthetic corpus,
// default 3 x 1250 images; scale with TVDP_BENCH_N / TVDP_BENCH_SEEDS):
// same ordering, same winner family. Results are averaged over several
// corpus seeds to suppress split noise.

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "ml/classifier.h"
#include "ml/cross_validation.h"

namespace tvdp {
namespace {

int Run() {
  const int n = bench::EnvInt("TVDP_BENCH_N", 1250);
  const int seeds = bench::EnvInt("TVDP_BENCH_SEEDS", 3);
  std::printf("== Fig. 6 reproduction: classifier x feature macro-F1 ==\n");
  std::printf(
      "corpus: %d synthetic street images x %d seeds, 5 classes, 80/20 "
      "split\n\n",
      n, seeds);

  const char* feature_names[3] = {"color_hist", "sift_bow", "cnn"};
  std::vector<ml::ClassifierKind> kinds = ml::AllClassifierKinds();
  std::vector<std::vector<double>> f1(kinds.size(),
                                      std::vector<double>(3, 0.0));

  auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < seeds; ++s) {
    bench::Corpus corpus =
        bench::MakeCleanlinessCorpus(n, 2019 + static_cast<uint64_t>(s));
    bench::FeaturePipelines pipelines = bench::FitFeaturePipelines(corpus);
    if (!pipelines.ok) return 1;
    const vision::FeatureExtractor* extractors[3] = {
        &pipelines.color, &pipelines.sift_bow, &pipelines.cnn};
    for (int fi = 0; fi < 3; ++fi) {
      ml::Dataset train, test;
      if (!bench::ExtractDatasets(*extractors[fi], corpus, &train, &test)) {
        return 1;
      }
      auto moments = train.ComputeMoments();
      train.Standardize(moments);
      test.Standardize(moments);
      for (size_t ki = 0; ki < kinds.size(); ++ki) {
        auto model = ml::MakeClassifier(kinds[ki]);
        auto cm = ml::TrainAndEvaluate(*model, train, test);
        if (!cm.ok()) {
          std::fprintf(stderr, "train failed: %s\n",
                       cm.status().ToString().c_str());
          return 1;
        }
        f1[ki][static_cast<size_t>(fi)] += cm->MacroF1() / seeds;
      }
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  std::printf("evaluated %zu combinations in %.1fs\n\n", kinds.size() * 3,
              std::chrono::duration<double>(t1 - t0).count());

  std::printf("%-22s", "classifier \\ feature");
  for (const char* name : feature_names) std::printf("%12s", name);
  std::printf("\n");
  double best_f1[3] = {0, 0, 0};
  std::string best_clf[3];
  for (size_t ki = 0; ki < kinds.size(); ++ki) {
    std::printf("%-22s", ml::ClassifierKindName(kinds[ki]).c_str());
    for (int fi = 0; fi < 3; ++fi) {
      std::printf("%12.3f", f1[ki][static_cast<size_t>(fi)]);
      if (f1[ki][static_cast<size_t>(fi)] > best_f1[fi]) {
        best_f1[fi] = f1[ki][static_cast<size_t>(fi)];
        best_clf[fi] = ml::ClassifierKindName(kinds[ki]);
      }
    }
    std::printf("\n");
  }

  std::printf("\nbest combination per feature:\n");
  for (int fi = 0; fi < 3; ++fi) {
    std::printf("  %-12s -> %s (F1=%.3f)\n", feature_names[fi],
                best_clf[fi].c_str(), best_f1[fi]);
  }
  std::printf(
      "\npaper shape check: CNN(%.3f) > SIFT-BoW(%.3f) > color(%.3f): %s\n",
      best_f1[2], best_f1[1], best_f1[0],
      best_f1[2] > best_f1[1] && best_f1[1] > best_f1[0] ? "HOLDS"
                                                         : "VIOLATED");
  return 0;
}

}  // namespace
}  // namespace tvdp

int main() { return tvdp::Run(); }
